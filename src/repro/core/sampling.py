"""Randomized approximation of OCQA (Section 5, Theorem 9).

The ``Sample`` algorithm walks the repairing Markov chain from ``ε`` by
drawing each step from the transition distribution until an absorbing
state is reached, then reports whether the candidate tuple is in the
query answer on the produced repair (Proposition 10: the walk terminates
in polynomially many steps and returns 1 with probability exactly
``CP(t)`` when the generator is non-failing).

Averaging ``n = ln(2/delta) / (2 * eps^2)`` walks gives, by Hoeffding's
inequality, an *additive* ``(eps, delta)`` guarantee:
``Pr(|estimate - CP(t)| <= eps) >= 1 - delta``.

No FPRAS exists for this problem unless RP = NP (Theorem 6), so the
additive guarantee is the best efficiently attainable kind.
"""

from __future__ import annotations

import pickle
import random
from dataclasses import dataclass
from fractions import Fraction
from functools import lru_cache
from math import lcm
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.chain import ChainGenerator, RepairingChain
from repro.core.errors import FailingSequenceError, InvalidGeneratorError
from repro.core.oca import AnyQuery
from repro.core.operations import Operation
from repro.core.state import RepairState
from repro.db.facts import Database
from repro.db.terms import Term


@dataclass
class Walk:
    """The outcome of one ``Sample`` walk."""

    state: RepairState
    successful: bool

    @property
    def result(self) -> Database:
        """The database produced by the walk (a repair if successful)."""
        return self.state.db

    @property
    def length(self) -> int:
        """Number of operations applied."""
        return self.state.depth


@lru_cache(maxsize=1 << 14)
def _prepared_draw(
    transitions: Tuple[Tuple[Operation, Fraction], ...]
) -> Tuple[int, Tuple[int, ...]]:
    """``(denominator, cumulative integer weights)`` for a distribution.

    Memoized on the transitions tuple: the chain hands out the same
    cached tuple for a revisited state, so hot prefix states prepare
    their integer weights once across all walks.
    """
    denominator = 1
    for _, probability in transitions:
        denominator = lcm(denominator, probability.denominator)
    cumulative: List[int] = []
    running = 0
    for _, probability in transitions:
        running += probability.numerator * (denominator // probability.denominator)
        cumulative.append(running)
    if running != denominator:
        raise InvalidGeneratorError(
            f"transition probabilities sum to {Fraction(running, denominator)}, "
            "not 1; the chain is not stochastic (Definition 5)"
        )
    return denominator, tuple(cumulative)


def choose_transition(
    transitions: Sequence[Tuple[Operation, Fraction]],
    rng: random.Random,
) -> Operation:
    """Draw one operation from an exact transition distribution.

    The chain's probabilities are exact :class:`fractions.Fraction`
    values, so the draw is performed over their common denominator with
    integer arithmetic — no float conversion, hence no rounding drift
    for tiny probabilities and no silent fallback when weights fail to
    sum to 1 (that case now raises :class:`InvalidGeneratorError`
    instead of quietly over-selecting the last operation).
    """
    transitions = tuple(transitions)
    first_probability = transitions[0][1]
    if all(probability is first_probability for _, probability in transitions):
        # The chain hands equal-weight states one shared ``1/n`` Fraction
        # object, so a plain uniform draw is exact — no common-denominator
        # preparation (and no hashing of the transitions tuple) needed.
        return transitions[rng.randrange(len(transitions))][0]
    denominator, cumulative = _prepared_draw(transitions)
    draw = rng.randrange(denominator)
    for (op, _), bound in zip(transitions, cumulative):
        if draw < bound:
            return op
    raise AssertionError("unreachable: the weights sum to the denominator")


def sample_walk(
    chain: RepairingChain,
    rng: Optional[random.Random] = None,
) -> Walk:
    """Run one random walk of the chain to an absorbing state.

    This is the while-loop of the ``Sample`` algorithm; transition
    probabilities come from the chain (hence the generator), and the walk
    ends exactly at a complete sequence.
    """
    rng = rng or random.Random()
    state = chain.initial_state()
    while True:
        transitions = chain.transitions(state)
        if not transitions:
            return Walk(state=state, successful=state.is_consistent)
        state = chain.step(state, choose_transition(transitions, rng))


def sample_many(
    chain: RepairingChain,
    walks: int,
    rng: Optional[random.Random] = None,
    processes: Optional[int] = None,
) -> List[Walk]:
    """Run *walks* independent ``Sample`` walks over one shared chain.

    This is the batched driver behind :func:`approximate_cp`,
    :func:`approximate_oca` and :func:`estimate_sequence_lengths`.
    Sharing one chain (hence one engine) amortizes the expensive parts
    across walks: transition distributions are memoized per state, and
    violation deltas per ``(database, op)``, so the states near the root
    that every walk traverses are computed once.

    With *processes* > 1 the batch is fanned across worker processes
    (fork start method); each worker runs its share of walks with an
    independent RNG seeded from *rng*, so results are still i.i.d. draws
    from the same walk distribution (though not bit-identical to the
    serial order).  Falls back to the serial path when the platform has
    no fork support or the chain cannot be shipped to workers.
    """
    return list(_walk_stream(chain, walks, rng, processes))


def _walk_stream(
    chain: RepairingChain,
    walks: int,
    rng: Optional[random.Random],
    processes: Optional[int],
) -> Iterator[Walk]:
    """Lazy serial walks / eager parallel batch behind :func:`sample_many`.

    The serial path yields walk-by-walk so consumers that abort on the
    first failing walk (:func:`approximate_cp` with the default
    ``allow_failing=False``) fail fast instead of paying for the whole
    batch; the parallel path is inherently batched.
    """
    rng = rng or random.Random()
    if processes and processes > 1 and walks > 1:
        parallel = _sample_many_parallel(chain, walks, rng, processes)
        if parallel is not None:
            yield from parallel
            return
    for _ in range(walks):
        yield sample_walk(chain, rng)


def _sample_walks_job(args: Tuple[RepairingChain, int, int]) -> List[Walk]:
    chain, seed, count = args
    rng = random.Random(seed)
    return [sample_walk(chain, rng) for _ in range(count)]


def _sample_many_parallel(
    chain: RepairingChain, walks: int, rng: random.Random, processes: int
) -> Optional[List[Walk]]:
    try:
        import multiprocessing

        context = multiprocessing.get_context("fork")
    except (ImportError, ValueError):
        return None
    # Probe shippability up front (FunctionGenerator closures etc. are
    # not picklable); chain caches pickle as empty, so this is cheap.
    # Keeping the probe separate from the map means errors raised *by
    # the walks themselves* propagate instead of being silently retried
    # on the serial path.
    try:
        pickle.dumps(chain)
    except Exception:
        return None
    processes = min(processes, walks)
    base, extra = divmod(walks, processes)
    jobs = [
        (chain, rng.getrandbits(64), base + (1 if i < extra else 0))
        for i in range(processes)
    ]
    jobs = [job for job in jobs if job[2] > 0]
    try:
        pool = context.Pool(len(jobs))
    except OSError:
        # Sandboxes without working fork fall back to the serial path.
        return None
    with pool:
        parts = pool.map(_sample_walks_job, jobs)
    return [walk for part in parts for walk in part]


def sample_once(
    chain: RepairingChain,
    query: AnyQuery,
    candidate: Tuple[Term, ...],
    rng: Optional[random.Random] = None,
    allow_failing: bool = False,
) -> Optional[int]:
    """One Bernoulli sample of the event ``t in Q(repair)``.

    Returns 1 or 0 for a successful walk.  A failing walk raises
    :class:`FailingSequenceError` unless *allow_failing* is set, in which
    case ``None`` is returned (callers implementing the conditional
    estimate discard these samples).
    """
    walk = sample_walk(chain, rng)
    if not _accept_walk(walk, allow_failing):
        return None
    return 1 if query.holds(walk.result, tuple(candidate)) else 0


def _accept_walk(walk: Walk, allow_failing: bool) -> bool:
    """Shared failing-walk policy for the estimators.

    ``True`` for a successful walk, ``False`` for a failing walk being
    discarded under *allow_failing*; otherwise raises
    :class:`FailingSequenceError`.
    """
    if walk.successful:
        return True
    if allow_failing:
        return False
    raise FailingSequenceError(
        f"the walk {walk.state.label()!r} is failing; Theorem 9 requires "
        "a non-failing generator (Definition 8) — use allow_failing=True "
        "for the heuristic conditional estimate"
    )


@dataclass
class ApproximationResult:
    """An additive-error estimate with its parameters and sample counts."""

    estimate: float
    epsilon: float
    delta: float
    samples: int
    successes: int
    failing_walks: int = 0

    def __float__(self) -> float:
        return self.estimate


def _estimation_campaign(
    campaign,
    adaptive: Optional[bool],
    processes: Optional[int],
    rng: Optional[random.Random] = None,
):
    """The campaign an estimator runs through (building one if needed).

    A private (per-call) campaign seeds from the caller's *rng*, so a
    seeded estimator call is deterministic end to end — the property the
    draw-indexed substreams (hence distributed byte-identity) build on.

    Local import: :mod:`repro.campaign` provides the unified estimation
    loop (warm chains, checkpointing, adaptive stopping) on top of this
    module's walk primitives.
    """
    from repro.campaign import SamplingCampaign

    if campaign is None:
        return (
            SamplingCampaign(rng=rng, adaptive=bool(adaptive), processes=processes),
            True,
        )
    return campaign, False


def _estimator_coordinator(
    processes: Optional[int],
    workers: Optional[int],
    worker_addresses: Sequence[str],
    coordinator,
):
    """The (coordinator, owned) pair for an estimator call.

    An explicit *coordinator* is reused as-is (and not closed here);
    otherwise :meth:`repro.distributed.Coordinator.from_options` decides
    — ``None`` means the serial path.
    """
    if coordinator is not None:
        return coordinator, False
    from repro.distributed import Coordinator

    built = Coordinator.from_options(processes, workers, worker_addresses)
    return built, built is not None


def _chain_key(
    generator: ChainGenerator, database: Database, private: bool
) -> str:
    """The warm-chain cache key for an estimator call.

    For a *private* (per-call) campaign the cache holds exactly one
    chain, so a constant key avoids stringifying the whole instance.  A
    shared campaign keys on the generator's semantic signature (class
    plus configuration — see
    :func:`repro.campaign.generator_signature`) and the exact instance,
    so it reuses a chain only for the same repair distribution instead
    of silently walking a stale chain.
    """
    if private:
        return "root"
    from repro.campaign import campaign_fingerprint, generator_signature

    return campaign_fingerprint(
        generator_signature(generator),
        tuple(str(fact) for fact in database.sorted_facts),
    )


def _chain_shard_context(
    database: Database,
    generator: ChainGenerator,
    query: AnyQuery,
    candidate: Optional[Tuple[Term, ...]],
    allow_failing: bool,
    seed,
    stream_key: str,
):
    """A distributed shard context for the core chain estimators."""
    from repro.distributed import ShardContext

    return ShardContext.create(
        "chain",
        {
            "facts": tuple(database),
            "generator": generator,
            "query": query,
            "candidate": candidate,
            "allow_failing": allow_failing,
            "seed": seed,
            "stream_key": stream_key,
        },
    )


def _substream_draw(
    campaign,
    chain: RepairingChain,
    stream_key: str,
    allow_failing: bool,
    per_walk,
):
    """The serial draw function over draw-indexed substreams.

    Walk ``i`` uses the campaign's ``(seed, stream_key, i)`` substream —
    exactly what a remote worker computes for the same index, which is
    why serial and distributed runs are byte-identical.
    """

    def draw(batch: int):
        start = campaign.claim_draws(batch)
        outcomes = []
        for index in range(start, start + batch):
            walk = sample_walk(chain, campaign.rng_at(stream_key, index))
            if not _accept_walk(walk, allow_failing):
                outcomes.append(None)
            else:
                outcomes.append(per_walk(walk))
        return outcomes

    return draw


def approximate_cp(
    database: Database,
    generator: ChainGenerator,
    query: AnyQuery,
    candidate: Tuple[Term, ...],
    epsilon: float = 0.1,
    delta: float = 0.1,
    rng: Optional[random.Random] = None,
    allow_failing: bool = False,
    processes: Optional[int] = None,
    adaptive: Optional[bool] = None,
    campaign=None,
    workers: Optional[int] = None,
    worker_addresses: Sequence[str] = (),
    coordinator=None,
    deadline=None,
) -> ApproximationResult:
    """Additive ``(epsilon, delta)`` approximation of ``CP(t)`` (Theorem 9).

    Runs ``n = ln(2/delta) / (2 epsilon^2)`` independent ``Sample`` walks
    and returns the fraction that answered 1.  With a non-failing
    generator the estimate satisfies
    ``Pr(|estimate - CP(t)| <= epsilon) >= 1 - delta``.

    With *allow_failing*, failing walks are discarded and the estimate is
    the conditional frequency among successful walks — a consistent (but
    no longer Hoeffding-guaranteed) estimator of the conditional
    probability; the paper leaves guarantees for the insertion+deletion
    case open (Section 6).

    The estimation loop runs through a
    :class:`repro.campaign.SamplingCampaign` (pass *campaign* to share
    its warm chain and tallies across calls).  With *adaptive*, draws
    arrive in geometric batches and stop early once the
    empirical-Bernstein rule (:mod:`repro.analysis.bernstein`) certifies
    the same ``(epsilon, delta)`` guarantee — never using more than the
    Hoeffding count; ``samples`` then reports the draws actually taken.
    Adaptive stopping is *per-tuple* here: being a targeted ``CP(t)``
    query, the rule tests only the candidate's own stream.

    Every walk draws from the campaign's draw-indexed RNG substreams, so
    a seeded call is deterministic and shardable: pass ``workers=N`` for
    a persistent local worker pool (``processes`` is the legacy alias),
    ``worker_addresses`` for remote ``ocqa worker`` processes, or an
    explicit *coordinator* — the estimate is byte-identical in every
    configuration, including after mid-shard worker deaths.
    """
    rng = rng or random.Random()
    campaign, private = _estimation_campaign(campaign, adaptive, processes, rng)
    stream_key = _chain_key(generator, database, private)
    chain = campaign.chain(stream_key, lambda: generator.chain(database))
    target = tuple(candidate)
    coordinator, owns_coordinator = _estimator_coordinator(
        processes, workers, worker_addresses, coordinator
    )
    try:
        if coordinator is not None:
            context = _chain_shard_context(
                database, generator, query, target, allow_failing,
                campaign.seed, stream_key,
            )

            def draw(batch: int):
                return coordinator.run_range(
                    context, campaign.claim_draws(batch), batch,
                    deadline=deadline,
                )

        else:
            draw = _substream_draw(
                campaign,
                chain,
                stream_key,
                allow_failing,
                lambda walk: ((),) if query.holds(walk.result, target) else (),
            )
        result = campaign.estimate(
            draw, epsilon=epsilon, delta=delta, adaptive=adaptive,
            stop_target=(), deadline=deadline,
        )
    finally:
        if owns_coordinator:
            coordinator.close()
    return ApproximationResult(
        estimate=result.frequencies.get((), 0.0),
        epsilon=epsilon,
        delta=delta,
        samples=result.draws,
        successes=result.counts.get((), 0),
        failing_walks=result.discarded,
    )


def approximate_oca(
    database: Database,
    generator: ChainGenerator,
    query: AnyQuery,
    epsilon: float = 0.1,
    delta: float = 0.1,
    rng: Optional[random.Random] = None,
    allow_failing: bool = False,
    processes: Optional[int] = None,
    adaptive: Optional[bool] = None,
    campaign=None,
    workers: Optional[int] = None,
    worker_addresses: Sequence[str] = (),
    coordinator=None,
    deadline=None,
) -> Dict[Tuple[Term, ...], float]:
    """Estimate ``CP`` for every tuple observed in any sampled repair.

    One batch of walks serves all tuples simultaneously: for each walk,
    every answer of ``Q`` on the produced repair is tallied.  Each
    individual tuple's estimate carries the additive ``(epsilon, delta)``
    guarantee; tuples never observed have true ``CP <= epsilon`` with
    probability ``1 - delta``.

    Like :func:`approximate_cp`, runs through a
    :class:`repro.campaign.SamplingCampaign`; *adaptive* enables
    empirical-Bernstein early stopping over every tracked tuple's
    stream (including the implicit all-zeros stream, preserving the
    unseen-tuple reading above).  Walks draw from the campaign's
    draw-indexed substreams, so ``workers`` / ``worker_addresses`` /
    *coordinator* shard them with byte-identical results (see
    :mod:`repro.distributed`).
    """
    rng = rng or random.Random()
    campaign, private = _estimation_campaign(campaign, adaptive, processes, rng)
    stream_key = _chain_key(generator, database, private)
    chain = campaign.chain(stream_key, lambda: generator.chain(database))
    coordinator, owns_coordinator = _estimator_coordinator(
        processes, workers, worker_addresses, coordinator
    )
    try:
        if coordinator is not None:
            context = _chain_shard_context(
                database, generator, query, None, allow_failing,
                campaign.seed, stream_key,
            )

            def draw(batch: int):
                return coordinator.run_range(
                    context, campaign.claim_draws(batch), batch,
                    deadline=deadline,
                )

        else:
            draw = _substream_draw(
                campaign,
                chain,
                stream_key,
                allow_failing,
                lambda walk: query.answers(walk.result),
            )
        result = campaign.estimate(
            draw, epsilon=epsilon, delta=delta, adaptive=adaptive,
            deadline=deadline,
        )
    finally:
        if owns_coordinator:
            coordinator.close()
    if not result.valid:
        return {}
    return dict(result.frequencies)


def estimate_sequence_lengths(
    database: Database,
    generator: ChainGenerator,
    walks: int = 50,
    rng: Optional[random.Random] = None,
    processes: Optional[int] = None,
) -> List[int]:
    """Lengths of sampled repairing sequences (Proposition 2 experiments)."""
    chain = generator.chain(database)
    return [walk.length for walk in sample_many(chain, walks, rng, processes)]
