"""Randomized approximation of OCQA (Section 5, Theorem 9).

The ``Sample`` algorithm walks the repairing Markov chain from ``ε`` by
drawing each step from the transition distribution until an absorbing
state is reached, then reports whether the candidate tuple is in the
query answer on the produced repair (Proposition 10: the walk terminates
in polynomially many steps and returns 1 with probability exactly
``CP(t)`` when the generator is non-failing).

Averaging ``n = ln(2/delta) / (2 * eps^2)`` walks gives, by Hoeffding's
inequality, an *additive* ``(eps, delta)`` guarantee:
``Pr(|estimate - CP(t)| <= eps) >= 1 - delta``.

No FPRAS exists for this problem unless RP = NP (Theorem 6), so the
additive guarantee is the best efficiently attainable kind.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.analysis.hoeffding import sample_size
from repro.core.chain import ChainGenerator, RepairingChain
from repro.core.errors import FailingSequenceError
from repro.core.oca import AnyQuery
from repro.core.state import RepairState
from repro.db.facts import Database
from repro.db.terms import Term


@dataclass
class Walk:
    """The outcome of one ``Sample`` walk."""

    state: RepairState
    successful: bool

    @property
    def result(self) -> Database:
        """The database produced by the walk (a repair if successful)."""
        return self.state.db

    @property
    def length(self) -> int:
        """Number of operations applied."""
        return self.state.depth


def sample_walk(
    chain: RepairingChain,
    rng: Optional[random.Random] = None,
) -> Walk:
    """Run one random walk of the chain to an absorbing state.

    This is the while-loop of the ``Sample`` algorithm; transition
    probabilities come from the chain (hence the generator), and the walk
    ends exactly at a complete sequence.
    """
    rng = rng or random.Random()
    state = chain.initial_state()
    while True:
        transitions = chain.transitions(state)
        if not transitions:
            return Walk(state=state, successful=state.is_consistent)
        threshold = rng.random()
        cumulative = 0.0
        chosen = transitions[-1][0]
        for op, probability in transitions:
            cumulative += float(probability)
            if threshold < cumulative:
                chosen = op
                break
        state = chain.step(state, chosen)


def sample_once(
    chain: RepairingChain,
    query: AnyQuery,
    candidate: Tuple[Term, ...],
    rng: Optional[random.Random] = None,
    allow_failing: bool = False,
) -> Optional[int]:
    """One Bernoulli sample of the event ``t in Q(repair)``.

    Returns 1 or 0 for a successful walk.  A failing walk raises
    :class:`FailingSequenceError` unless *allow_failing* is set, in which
    case ``None`` is returned (callers implementing the conditional
    estimate discard these samples).
    """
    walk = sample_walk(chain, rng)
    if not walk.successful:
        if allow_failing:
            return None
        raise FailingSequenceError(
            f"the walk {walk.state.label()!r} is failing; Theorem 9 requires "
            "a non-failing generator (Definition 8) — use allow_failing=True "
            "for the heuristic conditional estimate"
        )
    return 1 if query.holds(walk.result, tuple(candidate)) else 0


@dataclass
class ApproximationResult:
    """An additive-error estimate with its parameters and sample counts."""

    estimate: float
    epsilon: float
    delta: float
    samples: int
    successes: int
    failing_walks: int = 0

    def __float__(self) -> float:
        return self.estimate


def approximate_cp(
    database: Database,
    generator: ChainGenerator,
    query: AnyQuery,
    candidate: Tuple[Term, ...],
    epsilon: float = 0.1,
    delta: float = 0.1,
    rng: Optional[random.Random] = None,
    allow_failing: bool = False,
) -> ApproximationResult:
    """Additive ``(epsilon, delta)`` approximation of ``CP(t)`` (Theorem 9).

    Runs ``n = ln(2/delta) / (2 epsilon^2)`` independent ``Sample`` walks
    and returns the fraction that answered 1.  With a non-failing
    generator the estimate satisfies
    ``Pr(|estimate - CP(t)| <= epsilon) >= 1 - delta``.

    With *allow_failing*, failing walks are discarded and the estimate is
    the conditional frequency among successful walks — a consistent (but
    no longer Hoeffding-guaranteed) estimator of the conditional
    probability; the paper leaves guarantees for the insertion+deletion
    case open (Section 6).
    """
    rng = rng or random.Random()
    n = sample_size(epsilon, delta)
    chain = generator.chain(database)
    successes = 0
    valid = 0
    failing = 0
    for _ in range(n):
        outcome = sample_once(chain, query, candidate, rng, allow_failing)
        if outcome is None:
            failing += 1
            continue
        valid += 1
        successes += outcome
    estimate = successes / valid if valid else 0.0
    return ApproximationResult(
        estimate=estimate,
        epsilon=epsilon,
        delta=delta,
        samples=n,
        successes=successes,
        failing_walks=failing,
    )


def approximate_oca(
    database: Database,
    generator: ChainGenerator,
    query: AnyQuery,
    epsilon: float = 0.1,
    delta: float = 0.1,
    rng: Optional[random.Random] = None,
    allow_failing: bool = False,
) -> Dict[Tuple[Term, ...], float]:
    """Estimate ``CP`` for every tuple observed in any sampled repair.

    One batch of walks serves all tuples simultaneously: for each walk,
    every answer of ``Q`` on the produced repair is tallied.  Each
    individual tuple's estimate carries the additive ``(epsilon, delta)``
    guarantee; tuples never observed have true ``CP <= epsilon`` with
    probability ``1 - delta``.
    """
    rng = rng or random.Random()
    n = sample_size(epsilon, delta)
    chain = generator.chain(database)
    counts: Dict[Tuple[Term, ...], int] = {}
    valid = 0
    for _ in range(n):
        walk = sample_walk(chain, rng)
        if not walk.successful:
            if allow_failing:
                continue
            raise FailingSequenceError(
                f"the walk {walk.state.label()!r} is failing; Theorem 9 "
                "requires a non-failing generator (Definition 8)"
            )
        valid += 1
        for answer in query.answers(walk.result):
            counts[answer] = counts.get(answer, 0) + 1
    if not valid:
        return {}
    return {t: c / valid for t, c in counts.items()}


def estimate_sequence_lengths(
    database: Database,
    generator: ChainGenerator,
    walks: int = 50,
    rng: Optional[random.Random] = None,
) -> List[int]:
    """Lengths of sampled repairing sequences (Proposition 2 experiments)."""
    rng = rng or random.Random()
    chain = generator.chain(database)
    return [sample_walk(chain, rng).length for _ in range(walks)]
