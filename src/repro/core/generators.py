"""Concrete repairing Markov chain generators.

Implements every generator discussed in the paper:

- :class:`UniformGenerator` — the uniform generator ``M^u_Sigma`` used in
  Proposition 4 (every valid extension equally likely);
- :class:`DeletionOnlyUniformGenerator` — uniform over deletions only; by
  Proposition 8 it is non-failing for TGDs, EGDs and DCs;
- :class:`PreferenceGenerator` — Example 4's support-based generator for
  the non-symmetric preference DC (reproduces the Section 3 figure);
- :class:`TrustGenerator` — Example 5's trust-based generator for key
  violations in data-integration scenarios;
- :class:`FunctionGenerator` — wrap an arbitrary weight function.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple, Union

from repro.constraints.base import Constraint, ConstraintSet
from repro.core.chain import ChainGenerator, Weight, _as_fraction
from repro.core.operations import Operation
from repro.core.state import RepairState
from repro.core.violations import violating_facts
from repro.db.facts import Database, Fact


class UniformGenerator(ChainGenerator):
    """The paper's ``M^u_Sigma``: all valid extensions equally likely.

    Proposition 4: every ABC repair is an operational repair w.r.t. this
    generator.
    """

    def weights(
        self, state: RepairState, extensions: Tuple[Operation, ...]
    ) -> Mapping[Operation, Weight]:
        return {op: 1 for op in extensions}

    @property
    def state_free_weights(self) -> bool:
        return True


class DeletionOnlyUniformGenerator(ChainGenerator):
    """Uniform over *deletions*; insertions get probability 0.

    This realises the "arbitrary deletion updates" setting of Theorem 9's
    practical scope: it supports only deletions, hence is non-failing
    (Proposition 8), so the additive-error approximation applies to every
    first-order query.

    Note: on constraint sets where some state's only justified operations
    are insertions (e.g. a TGD violation whose body atoms were inserted
    by... impossible here, but a TGD violation in the *input*), zeroing
    insertions can make the generator invalid.  For TGD-free constraints
    it always works; with TGDs, deleting a body atom is always available,
    so it works there too.
    """

    def weights(
        self, state: RepairState, extensions: Tuple[Operation, ...]
    ) -> Mapping[Operation, Weight]:
        return {op: 1 for op in extensions if op.is_delete}

    @property
    def supports_only_deletions(self) -> bool:
        return True

    @property
    def state_free_weights(self) -> bool:
        return True


class SingleFactDeletionGenerator(ChainGenerator):
    """Uniform over single-fact deletions only.

    Mirrors the classical "tuple deletion" repair model of Chomicki &
    Marcinkowski that the paper cites: each step removes exactly one
    offending fact.
    """

    def weights(
        self, state: RepairState, extensions: Tuple[Operation, ...]
    ) -> Mapping[Operation, Weight]:
        return {op: 1 for op in extensions if op.is_delete and len(op.facts) == 1}

    @property
    def supports_only_deletions(self) -> bool:
        return True

    @property
    def state_free_weights(self) -> bool:
        return True


class PreferenceGenerator(ChainGenerator):
    """Example 4: support-weighted deletions for the preference scenario.

    For the DC ``Pref(x, y), Pref(y, x) -> false``, the weight of the
    atom ``alpha = Pref(a, b)`` in a database ``D`` is ``w(alpha, D)`` =
    the number of facts ``Pref(a, _)`` (how often ``a`` is preferred).
    The probability of *removing* ``alpha`` is the importance
    ``I(alpha-bar, s(D))`` of its symmetric atom — so well-supported
    products keep their preferences with higher probability.
    """

    def __init__(
        self,
        constraints: Union[ConstraintSet, Sequence[Constraint]],
        relation: str = "Pref",
    ) -> None:
        super().__init__(constraints)
        self.relation = relation

    def _support(self, fact: Fact, database: Database) -> int:
        """``w(alpha, D)``: number of facts whose first attribute matches."""
        subject = fact.values[0]
        return sum(
            1
            for other in database.by_relation.get(self.relation, ())
            if other.values[0] == subject
        )

    def weights(
        self, state: RepairState, extensions: Tuple[Operation, ...]
    ) -> Mapping[Operation, Weight]:
        out: Dict[Operation, Weight] = {}
        for op in extensions:
            if not (op.is_delete and len(op.facts) == 1):
                continue
            (fact,) = op.facts
            if fact.relation != self.relation or len(fact.values) != 2:
                continue
            mirrored = Fact(self.relation, (fact.values[1], fact.values[0]))
            out[op] = self._support(mirrored, state.db)
        return out

    @property
    def supports_only_deletions(self) -> bool:
        return True

    @property
    def state_free_weights(self) -> bool:
        # Weights read ``state.db`` only (the support counts).
        return True


class TrustGenerator(ChainGenerator):
    """Example 5: trust-based repair of key violations.

    Each fact carries a level of trust ``tr(alpha) in [0, 1]``.  For a
    violating pair ``{alpha, beta}`` the three fixing deletions are
    weighted

    - ``w(-alpha) = tr(beta|alpha) * (1 - tr(alpha|beta) * tr(beta|alpha))``
    - ``w(-beta)  = tr(alpha|beta) * (1 - tr(alpha|beta) * tr(beta|alpha))``
    - ``w(-{alpha, beta}) = (1 - tr(alpha|beta)) * (1 - tr(beta|alpha))``

    where ``tr(alpha|beta) = tr(alpha) / (tr(alpha) + tr(beta))`` is the
    relative trust.  An operation's weight sums its weight over all the
    violating pairs it fixes, normalized per Example 5.
    """

    def __init__(
        self,
        constraints: Union[ConstraintSet, Sequence[Constraint]],
        trust: Mapping[Fact, Union[Fraction, float, int, str]],
        default_trust: Union[Fraction, float, int, str] = Fraction(1, 2),
    ) -> None:
        super().__init__(constraints)
        self.trust: Dict[Fact, Fraction] = {
            fact: _as_fraction(value) for fact, value in trust.items()
        }
        self.default_trust = _as_fraction(default_trust)
        for fact, value in self.trust.items():
            if not 0 <= value <= 1:
                raise ValueError(f"trust of {fact} must be within [0, 1], got {value}")

    def trust_of(self, fact: Fact) -> Fraction:
        """``tr(alpha)``, falling back to the default for unseen facts."""
        return self.trust.get(fact, self.default_trust)

    def _relative(self, alpha: Fact, beta: Fact) -> Fraction:
        """``tr(alpha|beta) = tr(alpha) / (tr(alpha) + tr(beta))``."""
        ta, tb = self.trust_of(alpha), self.trust_of(beta)
        if ta + tb == 0:
            return Fraction(1, 2)
        return ta / (ta + tb)

    def pair_weights(self, alpha: Fact, beta: Fact) -> Dict[Operation, Fraction]:
        """The three operation weights for a violating pair."""
        t_ab = self._relative(alpha, beta)
        t_ba = self._relative(beta, alpha)
        both = t_ab * t_ba
        return {
            Operation.delete(alpha): t_ba * (1 - both),
            Operation.delete(beta): t_ab * (1 - both),
            Operation.delete(frozenset({alpha, beta})): (1 - t_ab) * (1 - t_ba),
        }

    def weights(
        self, state: RepairState, extensions: Tuple[Operation, ...]
    ) -> Mapping[Operation, Weight]:
        pairs = {
            violation.facts
            for violation in state.current_violations
            if len(violation.facts) == 2
        }
        accumulated: Dict[Operation, Fraction] = {}
        for pair in pairs:
            alpha, beta = sorted(pair, key=str)
            for op, weight in self.pair_weights(alpha, beta).items():
                accumulated[op] = accumulated.get(op, Fraction(0)) + weight
        return {op: accumulated[op] for op in extensions if op in accumulated}

    @property
    def supports_only_deletions(self) -> bool:
        return True

    @property
    def state_free_weights(self) -> bool:
        # Weights read ``state.current_violations`` — a function of the
        # state's database.
        return True


class FunctionGenerator(ChainGenerator):
    """Adapter turning a plain function into a generator.

    The function receives ``(state, extensions)`` and returns a mapping
    from operations to non-negative weights.
    """

    def __init__(
        self,
        constraints: Union[ConstraintSet, Sequence[Constraint]],
        fn: Callable[[RepairState, Tuple[Operation, ...]], Mapping[Operation, Weight]],
        only_deletions: bool = False,
    ) -> None:
        super().__init__(constraints)
        self._fn = fn
        self._only_deletions = only_deletions

    def weights(
        self, state: RepairState, extensions: Tuple[Operation, ...]
    ) -> Mapping[Operation, Weight]:
        return self._fn(state, extensions)

    @property
    def supports_only_deletions(self) -> bool:
        return self._only_deletions
