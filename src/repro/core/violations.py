"""Constraint violations ``V(D, Sigma)`` (Definition 2).

A violation is a pair ``(kappa, h)`` of a constraint and a body
homomorphism under which the constraint fails.  Violations are hashable,
so the sets req2 reasons about ("eliminated violations must not
reappear") are plain Python sets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Tuple

from repro.constraints.base import Constraint, ConstraintSet
from repro.db.facts import Database, Fact
from repro.db.homomorphism import Assignment, freeze_assignment, thaw_assignment
from repro.db.terms import Term, Var


@dataclass(frozen=True)
class Violation:
    """``(kappa, h)``: constraint *constraint* is violated via *assignment*.

    The assignment is stored in a canonical frozen form so violations are
    hashable and comparable; :attr:`h` recovers the mapping.
    """

    constraint: Constraint
    frozen_assignment: Tuple[Tuple[Var, Term], ...]

    @staticmethod
    def of(constraint: Constraint, assignment: Assignment) -> "Violation":
        """Build a violation from a constraint and a live assignment."""
        return Violation(constraint, freeze_assignment(assignment))

    @property
    def h(self) -> Assignment:
        """The homomorphism as a dict."""
        return thaw_assignment(self.frozen_assignment)

    @property
    def facts(self) -> FrozenSet[Fact]:
        """The body image ``h(phi)`` — the facts jointly causing the violation.

        Cached per instance: the incremental engine consults the body
        image of every surviving violation on every walk step, and
        re-substituting the assignment each time dominated that path.
        """
        cached = getattr(self, "_facts_cache", None)
        if cached is None:
            cached = self.constraint.body_image(self.h)
            object.__setattr__(self, "_facts_cache", cached)
        return cached

    def __hash__(self) -> int:
        cached = getattr(self, "_hash_cache", None)
        if cached is None:
            cached = hash((self.constraint, self.frozen_assignment))
            object.__setattr__(self, "_hash_cache", cached)
        return cached

    def __getstate__(self):
        # Never pickle the cached hash: it is per-process (randomized
        # str hashing) and a stale value breaks set/dict lookups after
        # cross-process unpickling (see Fact.__getstate__).
        state = dict(self.__dict__)
        state.pop("_hash_cache", None)
        return state

    def holds_in(self, database: Database) -> bool:
        """Whether this violation is present in *database*.

        True iff the body image is contained in the database and the
        constraint's head still fails there.  Used by req2 to test whether
        an eliminated violation has been reintroduced.
        """
        if not all(fact in database for fact in self.facts):
            return False
        return not self.constraint.head_holds(self.h, database)

    def __str__(self) -> str:
        mapping = ", ".join(
            f"{var.name} -> {value}" for var, value in self.frozen_assignment
        )
        return f"({self.constraint}, {{{mapping}}})"

    def __repr__(self) -> str:
        return f"Violation({self})"


def violations_of(constraint: Constraint, database: Database) -> Iterator[Violation]:
    """Yield ``V(D, kappa)`` for a single constraint."""
    for assignment in constraint.violating_assignments(database):
        yield Violation.of(constraint, assignment)


def violations(database: Database, constraints: ConstraintSet) -> FrozenSet[Violation]:
    """``V(D, Sigma)``: every violation of every constraint."""
    out = set()
    for constraint in constraints:
        out.update(violations_of(constraint, database))
    return frozenset(out)


def violating_facts(
    database: Database, constraints: ConstraintSet
) -> FrozenSet[Fact]:
    """All facts involved in at least one violation.

    This is the paper's ``V_Sigma(D)`` from Example 4 (atoms involved in a
    violation); it also drives the repair-localization optimization.
    """
    out: set = set()
    for violation in violations(database, constraints):
        out.update(violation.facts)
    return frozenset(out)


def conflict_pairs(
    database: Database, constraints: ConstraintSet
) -> FrozenSet[FrozenSet[Fact]]:
    """The binary-conflict view ``V_Sigma(D)`` of Example 5.

    Returns the set of fact sets (of any size) that jointly violate some
    constraint; for key constraints these are exactly the conflicting
    pairs ``{alpha, beta}``.
    """
    return frozenset(v.facts for v in violations(database, constraints))


def is_consistent(database: Database, constraints: ConstraintSet) -> bool:
    """``D |= Sigma`` — delegates to the constraint set."""
    return constraints.is_satisfied(database)
