"""Operational repairs and the semantics ``[[D]]^{M_Sigma}`` (Definition 6).

An operational repair is ``s(D)`` for a successful reachable absorbing
sequence ``s``; its probability sums the hitting probabilities of all
such sequences producing the same instance.  The pair set
``{(D', P(D')) : P(D') > 0}`` is the paper's semantics of an inconsistent
database.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterator, List, Mapping, Optional, Tuple

from repro.constraints.base import ConstraintSet
from repro.core.chain import ChainGenerator, RepairingChain
from repro.core.exact import ChainExploration, explore_chain
from repro.db.facts import Database


class RepairDistribution:
    """The probability distribution over operational repairs.

    ``failure_probability`` is the mass of failing sequences; repair
    probabilities plus the failure probability always sum to 1.
    """

    def __init__(
        self,
        repairs: Mapping[Database, Fraction],
        failure_probability: Fraction = Fraction(0),
    ) -> None:
        self._repairs: Dict[Database, Fraction] = {
            db: Fraction(p) for db, p in repairs.items() if p > 0
        }
        self.failure_probability = Fraction(failure_probability)

    # ------------------------------------------------------------------
    # Queries on the distribution
    # ------------------------------------------------------------------
    def probability(self, database: Database) -> Fraction:
        """``P_{D, M_Sigma}(D')`` — zero for non-repairs."""
        return self._repairs.get(database, Fraction(0))

    @property
    def support(self) -> FrozenSet[Database]:
        """All operational repairs (positive-probability instances)."""
        return frozenset(self._repairs)

    @property
    def success_probability(self) -> Fraction:
        """Total mass of successful sequences (the denominator of CP)."""
        return sum(self._repairs.values(), Fraction(0))

    def items(self) -> List[Tuple[Database, Fraction]]:
        """Repair/probability pairs, most likely first (ties by rendering)."""
        return sorted(
            self._repairs.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        )

    def __iter__(self) -> Iterator[Tuple[Database, Fraction]]:
        return iter(self.items())

    def __len__(self) -> int:
        return len(self._repairs)

    def most_likely(self) -> Optional[Tuple[Database, Fraction]]:
        """The highest-probability repair, or ``None`` if there is none."""
        items = self.items()
        return items[0] if items else None

    def entropy(self) -> float:
        """Shannon entropy (bits) of the repair distribution.

        A natural *inconsistency measure* induced by the operational
        semantics: 0 when one repair is certain, growing with both the
        number of repairs and how evenly the chain spreads over them.
        Computed over the distribution conditioned on success.
        """
        import math

        total = self.success_probability
        if total == 0:
            return 0.0
        entropy = 0.0
        for _, probability in self._repairs.items():
            p = float(probability / total)
            entropy -= p * math.log2(p)
        return entropy

    def __repr__(self) -> str:
        parts = ", ".join(f"{db!r}: {p}" for db, p in self.items())
        return (
            f"RepairDistribution({{{parts}}}, "
            f"failure={self.failure_probability})"
        )


def distribution_from_exploration(exploration: ChainExploration) -> RepairDistribution:
    """Group an explored chain's successful leaves by their result."""
    repairs: Dict[Database, Fraction] = {}
    for leaf in exploration.successful_leaves:
        repairs[leaf.result] = repairs.get(leaf.result, Fraction(0)) + leaf.probability
    return RepairDistribution(repairs, exploration.failure_probability)


def repair_distribution(
    database: Database,
    generator: ChainGenerator,
    max_states: Optional[int] = 200_000,
) -> RepairDistribution:
    """Exact ``[[D]]^{M_Sigma}`` by full chain exploration.

    Convenience wrapper: builds the chain, explores it, and groups the
    leaves.  Exponential in the worst case (Theorem 5); see *max_states*.
    """
    chain = generator.chain(database)
    exploration = explore_chain(chain, max_states=max_states)
    return distribution_from_exploration(exploration)


def operational_repairs(
    database: Database,
    generator: ChainGenerator,
    max_states: Optional[int] = 200_000,
) -> FrozenSet[Database]:
    """Just the set of operational repairs of ``D`` w.r.t. ``M_Sigma``."""
    return repair_distribution(database, generator, max_states).support
