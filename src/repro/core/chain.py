"""Repairing Markov chains and their generators (Definition 5).

A :class:`ChainGenerator` is the paper's ``M_Sigma``: a recipe that, for
any database ``D``, yields the tree-shaped Markov chain whose states are
the ``(D, Sigma)``-repairing sequences.  Concrete generators
(:mod:`repro.core.generators`) only supply *weights* for the valid
extensions of a state; the chain normalizes them into transition
probabilities, guaranteeing the stochasticity condition of Definition 5.

Probabilities are exact :class:`fractions.Fraction` values — this is the
paper's "well-behaved" requirement (all probabilities share a polynomial-
size common denominator) realised literally.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.constraints.base import Constraint, ConstraintSet
from repro.core.caching import LRUCache, env_cache_limit
from repro.core.engine import RepairEngine
from repro.core.errors import InvalidGeneratorError
from repro.core.operations import Operation
from repro.core.state import RepairState
from repro.db.facts import Database

#: Weight values accepted from generators.
Weight = Union[Fraction, int]


def _as_fraction(value: Union[Fraction, int, float, str]) -> Fraction:
    """Convert a user-supplied number to an exact fraction.

    Floats go through their decimal rendering so that ``0.1`` means the
    decimal one-tenth rather than its binary approximation.
    """
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    if isinstance(value, float):
        return Fraction(str(value))
    return Fraction(value)


class ChainGenerator(ABC):
    """A repairing Markov chain generator ``M_Sigma`` (Definition 5).

    Subclasses implement :meth:`weights`, mapping each valid extension of
    a state to a non-negative weight.  Weights need not be normalized;
    operations may receive weight 0 (they are then pruned from the chain,
    like the pair-deletions the preference generator of Example 4 never
    uses), but at least one extension of a non-complete state must be
    positive.
    """

    def __init__(self, constraints: Union[ConstraintSet, Sequence[Constraint]]) -> None:
        if not isinstance(constraints, ConstraintSet):
            constraints = ConstraintSet(constraints)
        self.constraints = constraints

    @abstractmethod
    def weights(
        self, state: RepairState, extensions: Tuple[Operation, ...]
    ) -> Mapping[Operation, Weight]:
        """Non-negative weights over *extensions* at *state*.

        Missing operations default to weight 0.
        """

    def make_engine(self, database: Database) -> RepairEngine:
        """The repairing-sequence engine used by this generator's chains.

        Subclasses may substitute an engine with different operation
        candidates (e.g. the null-witness engine of
        :mod:`repro.extensions.nulls`).
        """
        return RepairEngine(database, self.constraints)

    def chain(self, database: Database) -> "RepairingChain":
        """The ``(D, Sigma)``-repairing Markov chain ``M_Sigma(D)``."""
        return RepairingChain(self.make_engine(database), self)

    @property
    def supports_only_deletions(self) -> bool:
        """Whether the generator never assigns positive weight to ``+F``.

        Subclasses for which this is true by construction override this;
        by Proposition 8 such generators are non-failing.
        """
        return False

    @property
    def state_free_weights(self) -> bool:
        """Whether :meth:`weights` depends only on the state's *database*
        (and the extensions), never on the sequence history.

        All the paper's generators qualify — they inspect ``state.db``
        or ``state.current_violations`` (itself a function of the
        database).  When this holds *and* the engine is deletion-only
        (so the valid extensions are database-determined too), the chain
        memoizes transitions per database instead of per state,
        collapsing every arrival order at the same database into one
        entry.  ``False`` (the conservative default) keeps per-state
        memoization.
        """
        return False

    @property
    def is_non_failing(self) -> bool:
        """Best-effort syntactic check of Definition 8.

        ``True`` when failing sequences are impossible: either the
        generator only uses deletions (Proposition 8) or the constraint
        set has no TGDs, in which case no justified insertion exists at
        all.  ``False`` means "unknown", not "failing".
        """
        return self.supports_only_deletions or self.constraints.deletion_only()


class RepairingChain:
    """The chain ``M_Sigma(D)`` for one concrete database.

    States are :class:`repro.core.state.RepairState` objects; transitions
    pair each positive-weight valid extension with its normalized
    probability.  Complete sequences have no transitions and are the
    chain's absorbing states.
    """

    #: Bound on the per-chain ``state -> transitions`` memo.
    TRANSITION_CACHE_LIMIT = 100_000

    def __init__(self, engine: RepairEngine, generator: ChainGenerator) -> None:
        self.engine = engine
        self.generator = generator
        # With history-free weights over a deletion-only engine, both
        # the valid extensions and their weights are functions of the
        # state's database alone, so transitions memoize per *database*:
        # every deletion order arriving at the same database shares one
        # entry (and one cheap cached-frozenset hash).
        self._db_keyed = bool(
            generator.state_free_weights and engine.deletion_only
        )
        self._transition_cache: LRUCache[
            object, Tuple[Tuple[Operation, Fraction], ...]
        ] = LRUCache(env_cache_limit("REPRO_TRANSITION_CACHE_LIMIT", self.TRANSITION_CACHE_LIMIT))

    def cache_stats(self) -> Dict[str, Dict[str, int]]:
        """Hit/miss counters of the chain-level memos (diagnostics)."""
        return {"transitions": self._transition_cache.stats()}

    @property
    def database(self) -> Database:
        """The input (possibly inconsistent) database ``D``."""
        return self.engine.database

    @property
    def constraints(self) -> ConstraintSet:
        """The constraint set ``Sigma``."""
        return self.engine.constraints

    def initial_state(self) -> RepairState:
        """The root state ``ε``."""
        return self.engine.initial_state()

    def transitions(self, state: RepairState) -> Tuple[Tuple[Operation, Fraction], ...]:
        """Positive-probability transitions out of *state*.

        Returns an empty tuple exactly when the state is absorbing.
        Raises :class:`InvalidGeneratorError` when the generator breaks
        Definition 5 (negative weights, or all-zero weights at a state
        that still has valid extensions).

        Transition tuples are memoized per state (bounded LRU): batched
        sampling (:func:`repro.core.sampling.sample_many`) runs many
        walks over one chain, and walks sharing a prefix then share the
        extension enumeration and weight normalization.  Generators are
        expected to be deterministic functions of the state, as
        Definition 5 requires.
        """
        key = state.db if self._db_keyed else state
        cached = self._transition_cache.get(key)
        if cached is not None:
            return cached
        computed = self._compute_transitions(state)
        self._transition_cache.put(key, computed)
        return computed

    def _compute_transitions(
        self, state: RepairState
    ) -> Tuple[Tuple[Operation, Fraction], ...]:
        extensions = self.engine.extensions(state)
        if not extensions:
            return ()
        raw = self.generator.weights(state, extensions)
        if len(raw) > len(extensions) or any(op not in raw for op in extensions):
            unknown = set(raw) - set(extensions)
            if unknown:
                sample = next(iter(unknown))
                raise InvalidGeneratorError(
                    f"generator assigned weight to an invalid extension: {sample}"
                )
        weight_vector = tuple(raw.get(op, 0) for op in extensions)
        return self._normalize(state, extensions, weight_vector)

    def _normalize(
        self,
        state: RepairState,
        extensions: Tuple[Operation, ...],
        weight_vector: Tuple[Weight, ...],
    ) -> Tuple[Tuple[Operation, Fraction], ...]:
        positive: List[Tuple[Operation, Weight]] = []
        for op, weight in zip(extensions, weight_vector):
            # Integer weights (by far the common case) are validated
            # without a Fraction conversion per operation.
            if not isinstance(weight, (int, Fraction)):
                weight = _as_fraction(weight)
            if weight < 0:
                raise InvalidGeneratorError(
                    f"negative weight {weight} for operation {op}"
                )
            if weight:
                positive.append((op, weight))
        if not positive:
            raise InvalidGeneratorError(
                f"state {state.label()!r} has {len(extensions)} valid extensions "
                "but the generator gave them zero total weight; it would become "
                "absorbing without being complete (Definition 5, condition 1)"
            )
        first = positive[0][1]
        if all(weight == first for _, weight in positive):
            # Equal positive weights normalize to one shared 1/n — the
            # common case (uniform generators), without n divisions.
            probability = Fraction(1, len(positive))
            return tuple((op, probability) for op, _ in positive)
        weights = {op: _as_fraction(weight) for op, weight in positive}
        total = sum(weights.values(), Fraction(0))
        return tuple((op, weight / total) for op, weight in weights.items())

    def step(self, state: RepairState, op: Operation) -> RepairState:
        """Apply one operation (must be a positive-probability transition)."""
        return self.engine.apply(state, op)

    def is_absorbing(self, state: RepairState) -> bool:
        """Whether *state* is absorbing (equivalently: complete)."""
        return not self.engine.extensions(state)
