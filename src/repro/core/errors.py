"""Exceptions raised by the operational-repair core."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidGeneratorError(ReproError):
    """A Markov chain generator breaks Definition 5.

    Raised when a state has valid extensions (so it is *not* complete)
    but the generator assigns them zero total probability (which would
    make the state absorbing), or produces a negative weight.
    """


class ExplorationBudgetError(ReproError):
    """Exact chain exploration exceeded its state budget.

    Exact OCQA is FP^#P-complete (Theorem 5); the budget turns runaway
    enumerations into a clean failure instead of an out-of-memory crash.
    """


class FailingSequenceError(ReproError):
    """A sampling walk hit a failing repairing sequence.

    The additive-error scheme of Theorem 9 requires a *non-failing*
    generator (Definition 8); hitting a failing sequence means the
    precondition does not hold for this chain.
    """


class FactSetTooLargeError(ReproError):
    """A justification check would enumerate too many fact subsets.

    Definition 3's minimality conditions quantify over proper subsets of
    an operation's fact set — ``2^|F|`` candidates.  Constraint bodies
    and head images are tiny in practice, so a fact set past the guard
    (``REPRO_MAX_SUBSET_FACTS``, default 20) almost certainly indicates
    a malformed operation; failing with this error beats enumerating a
    million subsets.
    """
