"""Exceptions raised by the operational-repair core."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library-specific errors."""


class InvalidGeneratorError(ReproError):
    """A Markov chain generator breaks Definition 5.

    Raised when a state has valid extensions (so it is *not* complete)
    but the generator assigns them zero total probability (which would
    make the state absorbing), or produces a negative weight.
    """


class ExplorationBudgetError(ReproError):
    """Exact chain exploration exceeded its state budget.

    Exact OCQA is FP^#P-complete (Theorem 5); the budget turns runaway
    enumerations into a clean failure instead of an out-of-memory crash.
    """


class FailingSequenceError(ReproError):
    """A sampling walk hit a failing repairing sequence.

    The additive-error scheme of Theorem 9 requires a *non-failing*
    generator (Definition 8); hitting a failing sequence means the
    precondition does not hold for this chain.
    """
