"""Well-behaved Markov chains (the Section 4 technical condition).

Theorem 5's complexity analysis assumes *well-behaved* chains: the
transition function is polynomial-time computable and all probabilities
share a common denominator of polynomially many bits.  Every generator
in this library satisfies the first condition by construction (weights
are simple arithmetic over the state); this module makes the second
condition checkable: it computes the least common denominator of all
transition probabilities of a chain and reports its bit size.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Optional

from repro.core.chain import RepairingChain
from repro.core.errors import ExplorationBudgetError


@dataclass(frozen=True)
class WellBehavedReport:
    """Common-denominator statistics of a repairing Markov chain."""

    denominator: int
    bits: int
    states_checked: int
    transitions_checked: int

    @property
    def is_plausibly_polynomial(self) -> bool:
        """A generous syntactic check: the denominator fits in a number of
        bits polynomial (here: quadratic) in the number of states.

        This cannot *prove* the asymptotic condition from one instance,
        but a violation on small inputs is a strong red flag for a
        hand-written generator.
        """
        budget = max(64, self.states_checked**2)
        return self.bits <= budget


def common_denominator(
    chain: RepairingChain, max_states: Optional[int] = 50_000
) -> WellBehavedReport:
    """LCM of all transition-probability denominators of *chain*.

    Explores the chain breadth-first (bounded by *max_states*) and folds
    every transition probability's denominator into a running LCM.
    Raises :class:`ExplorationBudgetError` when the chain is too large,
    mirroring :func:`repro.core.exact.explore_chain`.
    """
    denominator = 1
    states = 0
    transitions = 0
    frontier = [chain.initial_state()]
    while frontier:
        state = frontier.pop()
        states += 1
        if max_states is not None and states > max_states:
            raise ExplorationBudgetError(
                f"well-behavedness check exceeded {max_states} states"
            )
        for op, probability in chain.transitions(state):
            transitions += 1
            denominator = math.lcm(denominator, Fraction(probability).denominator)
            frontier.append(chain.step(state, op))
    return WellBehavedReport(
        denominator=denominator,
        bits=denominator.bit_length(),
        states_checked=states,
        transitions_checked=transitions,
    )
