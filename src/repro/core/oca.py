"""Operational consistent query answering (Section 4).

``CP(t)`` is the conditional probability that ``t`` belongs to the query
answer over an operational repair, given that a repair is produced at all
— failing sequences carry hitting probability but are excluded by the
normalization.  :func:`exact_oca` computes the full answer set
``OCA_{M_Sigma}(D, Q)`` restricted to its positive-probability tuples
(every tuple outside the result has ``CP = 0`` by Definition 7).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple, Union

from repro.core.chain import ChainGenerator
from repro.core.repairs import RepairDistribution, repair_distribution
from repro.db.facts import Database
from repro.db.terms import Term
from repro.queries.cq import ConjunctiveQuery
from repro.queries.query import Query

#: Queries accepted by the OCQA entry points.
AnyQuery = Union[Query, ConjunctiveQuery]


class OCAResult:
    """The operational consistent answers with their probabilities.

    Only tuples with ``CP > 0`` are stored; :meth:`cp` returns an exact
    zero for everything else, matching Definition 7 (which formally
    assigns a probability to every tuple over the base domain).
    """

    def __init__(
        self,
        query: AnyQuery,
        probabilities: Mapping[Tuple[Term, ...], Fraction],
        success_probability: Fraction,
        failure_probability: Fraction = Fraction(0),
    ) -> None:
        self.query = query
        self._probabilities: Dict[Tuple[Term, ...], Fraction] = {
            t: Fraction(p) for t, p in probabilities.items() if p > 0
        }
        self.success_probability = Fraction(success_probability)
        self.failure_probability = Fraction(failure_probability)

    def cp(self, candidate: Tuple[Term, ...]) -> Fraction:
        """``CP(t)`` for an arbitrary tuple."""
        return self._probabilities.get(tuple(candidate), Fraction(0))

    def items(self) -> List[Tuple[Tuple[Term, ...], Fraction]]:
        """Answer tuples, most probable first."""
        return sorted(
            self._probabilities.items(), key=lambda kv: (-kv[1], repr(kv[0]))
        )

    def __iter__(self):
        return iter(self.items())

    def __len__(self) -> int:
        return len(self._probabilities)

    def __contains__(self, candidate: object) -> bool:
        return candidate in self._probabilities

    def certain(self) -> FrozenSet[Tuple[Term, ...]]:
        """Tuples with ``CP = 1`` — true in every operational repair."""
        return frozenset(t for t, p in self._probabilities.items() if p == 1)

    def above(self, threshold: Union[Fraction, float]) -> FrozenSet[Tuple[Term, ...]]:
        """Tuples whose probability is at least *threshold*."""
        return frozenset(
            t for t, p in self._probabilities.items() if p >= threshold
        )

    def as_dict(self) -> Dict[Tuple[Term, ...], Fraction]:
        """A plain dict copy of the positive probabilities."""
        return dict(self._probabilities)

    def __repr__(self) -> str:
        inner = ", ".join(f"{t}: {p}" for t, p in self.items())
        return f"OCAResult({{{inner}}})"


def cp_from_distribution(
    distribution: RepairDistribution,
    query: AnyQuery,
    candidate: Tuple[Term, ...],
) -> Fraction:
    """``CP(t)`` given an already-computed repair distribution."""
    denominator = distribution.success_probability
    if denominator == 0:
        return Fraction(0)
    numerator = Fraction(0)
    for repair, probability in distribution.items():
        if query.holds(repair, tuple(candidate)):
            numerator += probability
    return numerator / denominator


def oca_from_distribution(
    distribution: RepairDistribution,
    query: AnyQuery,
    candidates: Optional[Iterable[Tuple[Term, ...]]] = None,
) -> OCAResult:
    """All positive-probability answers given a repair distribution.

    Without *candidates*, the answer sets of the query on each repair are
    unioned — that set provably contains every tuple with ``CP > 0``.
    """
    denominator = distribution.success_probability
    accumulated: Dict[Tuple[Term, ...], Fraction] = {}
    if denominator > 0:
        if candidates is None:
            for repair, probability in distribution.items():
                for answer in query.answers(repair):
                    accumulated[answer] = accumulated.get(answer, Fraction(0)) + probability
        else:
            for candidate in candidates:
                candidate = tuple(candidate)
                for repair, probability in distribution.items():
                    if query.holds(repair, candidate):
                        accumulated[candidate] = (
                            accumulated.get(candidate, Fraction(0)) + probability
                        )
        accumulated = {t: p / denominator for t, p in accumulated.items()}
    return OCAResult(
        query,
        accumulated,
        success_probability=denominator,
        failure_probability=distribution.failure_probability,
    )


def exact_cp(
    database: Database,
    generator: ChainGenerator,
    query: AnyQuery,
    candidate: Tuple[Term, ...],
    max_states: Optional[int] = 200_000,
) -> Fraction:
    """Exact ``CP_{D, M_Sigma, Q}(t)`` by full chain exploration (OCQA)."""
    distribution = repair_distribution(database, generator, max_states)
    return cp_from_distribution(distribution, query, candidate)


def exact_oca(
    database: Database,
    generator: ChainGenerator,
    query: AnyQuery,
    candidates: Optional[Iterable[Tuple[Term, ...]]] = None,
    max_states: Optional[int] = 200_000,
) -> OCAResult:
    """Exact operational consistent answers ``OCA_{M_Sigma}(D, Q)``."""
    distribution = repair_distribution(database, generator, max_states)
    return oca_from_distribution(distribution, query, candidates)
