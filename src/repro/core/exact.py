"""Exact exploration of repairing Markov chains.

Enumerates the whole (finite, Proposition 2) tree of repairing sequences
with exact :class:`fractions.Fraction` probabilities.  The leaves are the
chain's reachable absorbing states; their probabilities form the hitting
distribution (which always exists for tree-shaped chains, Proposition 3).

Exact OCQA is FP^#P-complete (Theorem 5), so the tree can be exponential
in the database size; a state budget turns blow-ups into a clean
:class:`repro.core.errors.ExplorationBudgetError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import List, Optional, Tuple

from repro.core.chain import RepairingChain
from repro.core.errors import ExplorationBudgetError
from repro.core.operations import Operation
from repro.core.state import RepairState
from repro.db.facts import Database


@dataclass(frozen=True)
class Leaf:
    """A reachable absorbing state with its hitting probability."""

    state: RepairState
    probability: Fraction

    @property
    def successful(self) -> bool:
        """Whether the sequence repaired the database (``s(D) |= Sigma``)."""
        return state_is_successful(self.state)

    @property
    def result(self) -> Database:
        """``s(D)`` — the database this sequence produced."""
        return self.state.db


def state_is_successful(state: RepairState) -> bool:
    """A complete state succeeds iff its database is consistent."""
    return state.is_consistent


@dataclass(frozen=True)
class Edge:
    """One transition of the explored tree (for rendering/inspection)."""

    parent: str
    op: Operation
    child: str
    probability: Fraction


@dataclass
class ChainExploration:
    """The fully explored chain: leaves, statistics, optional edge list."""

    leaves: List[Leaf]
    num_states: int
    max_depth: int
    edges: Optional[List[Edge]] = None

    @property
    def successful_leaves(self) -> List[Leaf]:
        """Leaves whose sequences produced repairs."""
        return [leaf for leaf in self.leaves if leaf.successful]

    @property
    def failing_leaves(self) -> List[Leaf]:
        """Leaves whose sequences got stuck (failing sequences)."""
        return [leaf for leaf in self.leaves if not leaf.successful]

    @property
    def total_probability(self) -> Fraction:
        """Sum of leaf probabilities; equals 1 for every valid chain."""
        return sum((leaf.probability for leaf in self.leaves), Fraction(0))

    @property
    def success_probability(self) -> Fraction:
        """Probability mass of successful sequences."""
        return sum(
            (leaf.probability for leaf in self.successful_leaves), Fraction(0)
        )

    @property
    def failure_probability(self) -> Fraction:
        """Probability mass of failing sequences."""
        return sum((leaf.probability for leaf in self.failing_leaves), Fraction(0))


def explore_chain(
    chain: RepairingChain,
    max_states: Optional[int] = 200_000,
    collect_edges: bool = False,
) -> ChainExploration:
    """Depth-first enumeration of every repairing sequence of *chain*.

    *max_states* bounds the number of visited states (``None`` disables
    the budget).  With *collect_edges* the full tree structure is kept,
    which :mod:`repro.viz` uses to render the paper's Section 3 figure.
    """
    root = chain.initial_state()
    leaves: List[Leaf] = []
    edges: Optional[List[Edge]] = [] if collect_edges else None
    stack: List[Tuple[RepairState, Fraction]] = [(root, Fraction(1))]
    visited = 0
    max_depth = 0
    while stack:
        state, probability = stack.pop()
        visited += 1
        if max_states is not None and visited > max_states:
            raise ExplorationBudgetError(
                f"chain exploration exceeded {max_states} states; exact OCQA "
                "is FP^#P-complete — use the sampling approximation instead"
            )
        max_depth = max(max_depth, state.depth)
        transitions = chain.transitions(state)
        if not transitions:
            leaves.append(Leaf(state, probability))
            continue
        for op, p in transitions:
            child = chain.step(state, op)
            if edges is not None:
                edges.append(Edge(state.label(), op, child.label(), p))
            stack.append((child, probability * p))
    return ChainExploration(
        leaves=leaves, num_states=visited, max_depth=max_depth, edges=edges
    )
