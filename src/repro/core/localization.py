"""Repair localization (the Section 6 optimization, implemented).

The paper suggests "concentrating only on the part of the database where
violations occur".  For deletion-only settings, violations partition into
*conflict components*: connected components of the hypergraph whose nodes
are violating facts and whose hyperedges are violation body images.
Repairing operations never touch facts outside components, and an
operation's justification only involves facts of its own component.

For generators whose weights are *local* — the weight of an operation
depends only on the state of the component it touches, which holds for
the uniform generator (constant weights) and the trust generator
(weights from the violating pair itself) — the global chain's repair
distribution factorises into the product of the per-component chains'
distributions.  Proof sketch: summing the probability of all
interleavings of fixed per-component operation sequences telescopes into
the product of the per-component path probabilities (exchangeability of
proportional selection).  ``localized_repair_distribution`` exploits
this: it explores one small chain per component instead of one
exponentially larger product chain, and combines results exactly.

The preference generator of Example 4 is *not* local (atom weights count
support across the whole relation), so localization is rejected for it
unless explicitly forced.
"""

from __future__ import annotations

from fractions import Fraction
from itertools import product
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.constraints.base import ConstraintSet
from repro.core.chain import ChainGenerator
from repro.core.exact import explore_chain
from repro.core.generators import (
    DeletionOnlyUniformGenerator,
    SingleFactDeletionGenerator,
    TrustGenerator,
    UniformGenerator,
)
from repro.core.repairs import RepairDistribution, distribution_from_exploration
from repro.core.violations import violations
from repro.db.facts import Database, Fact

#: Generator classes known to have component-local weights.
LOCAL_GENERATOR_TYPES = (
    UniformGenerator,
    DeletionOnlyUniformGenerator,
    SingleFactDeletionGenerator,
    TrustGenerator,
)


class LocalizationError(ValueError):
    """Raised when localization would be unsound for the given input."""


def conflict_components(
    database: Database, constraints: ConstraintSet
) -> Tuple[FrozenSet[Fact], ...]:
    """Connected components of the violation hypergraph.

    Each component is a set of facts; two facts share a component when
    some violation involves both (transitively closed).  Only defined
    for TGD-free constraint sets, where deletions cannot create new
    violations and components stay independent.
    """
    if not constraints.deletion_only():
        raise LocalizationError(
            "conflict components require TGD-free constraints: insertions "
            "can couple otherwise-disjoint parts of the database"
        )
    parent: Dict[Fact, Fact] = {}

    def find(fact: Fact) -> Fact:
        while parent[fact] is not fact:
            parent[fact] = parent[parent[fact]]
            fact = parent[fact]
        return fact

    def union(a: Fact, b: Fact) -> None:
        ra, rb = find(a), find(b)
        if ra is not rb:
            parent[ra] = rb

    for violation in violations(database, constraints):
        facts = sorted(violation.facts, key=str)
        for fact in facts:
            parent.setdefault(fact, fact)
        for other in facts[1:]:
            union(facts[0], other)

    groups: Dict[Fact, Set[Fact]] = {}
    for fact in parent:
        groups.setdefault(find(fact), set()).add(fact)
    return tuple(
        sorted((frozenset(g) for g in groups.values()), key=lambda g: sorted(map(str, g)))
    )


def _is_local_generator(generator: ChainGenerator) -> bool:
    return isinstance(generator, LOCAL_GENERATOR_TYPES)


def localized_repair_distribution(
    database: Database,
    generator: ChainGenerator,
    max_states: Optional[int] = 200_000,
    force: bool = False,
) -> RepairDistribution:
    """Exact ``[[D]]^{M_Sigma}`` via per-component chain exploration.

    Equivalent to :func:`repro.core.repairs.repair_distribution` for
    component-local generators, but exponential only in the size of the
    *largest conflict component* rather than the whole database.

    Raises :class:`LocalizationError` for generators not known to be
    local (pass ``force=True`` to override, at your own semantic risk).
    """
    constraints = generator.constraints
    if not force and not _is_local_generator(generator):
        raise LocalizationError(
            f"{type(generator).__name__} is not known to be component-local; "
            "its weights may depend on facts outside a component "
            "(e.g. the preference generator counts global support). "
            "Use repair_distribution(), or pass force=True."
        )
    components = conflict_components(database, constraints)
    untouched = database - frozenset().union(*components) if components else database

    # Explore one chain per component.
    per_component: List[List[Tuple[Database, Fraction]]] = []
    for component in components:
        sub_db = Database(component)
        exploration = explore_chain(generator.chain(sub_db), max_states=max_states)
        dist = distribution_from_exploration(exploration)
        if dist.failure_probability:
            raise LocalizationError(
                "component chain has failing sequences; localization only "
                "supports non-failing (deletion-only) settings"
            )
        per_component.append(list(dist.items()))

    # Product-combine the independent component distributions.
    combined: Dict[Database, Fraction] = {}
    for choice in product(*per_component) if per_component else [()]:
        repaired = untouched
        probability = Fraction(1)
        for sub_repair, p in choice:
            repaired = repaired | sub_repair
            probability *= p
        combined[repaired] = combined.get(repaired, Fraction(0)) + probability
    return RepairDistribution(combined)


def localization_speedup_estimate(
    database: Database, constraints: ConstraintSet
) -> Tuple[int, int]:
    """(#violating facts, size of largest component) — the ablation's axes.

    The global chain is exponential in the first number, the localized
    pipeline in the second; their gap is the speedup the Section 6
    optimization buys.
    """
    components = conflict_components(database, constraints)
    total = sum(len(c) for c in components)
    largest = max((len(c) for c in components), default=0)
    return total, largest
