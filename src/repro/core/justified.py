"""Justified operations (Definition 3, Proposition 1).

An operation is justified at a state ``D'`` when it fixes at least one
violation *minimally*:

- a justified insertion ``+F`` adds exactly the missing part
  ``h'(psi) - D'`` of one head instantiation of a violated TGD, and no
  proper subset of ``F`` already fixes that violation;
- a justified deletion ``-F`` removes a non-empty subset of one
  violation's body image ``h(phi)`` (so every fact of ``F`` contributes
  to the violation, and any proper subset would also fix it).

The enumeration below constructs candidates directly in those shapes, so
deletions are justified by construction; insertions additionally get the
proper-subset check (a subset of a multi-atom head image can coincidentally
complete a different witness).
"""

from __future__ import annotations

from functools import lru_cache
from itertools import chain, combinations
from typing import FrozenSet, Iterable, Iterator, Set, Tuple

from repro.constraints.base import ConstraintSet
from repro.constraints.tgd import TGD
from repro.core.caching import env_cache_limit
from repro.core.errors import FactSetTooLargeError
from repro.core.operations import Operation
from repro.core.violations import Violation, violations
from repro.db.facts import Database, Fact
from repro.db.terms import Term

#: Largest fact set whose subsets the minimality checks will enumerate.
MAX_SUBSET_FACTS = env_cache_limit("REPRO_MAX_SUBSET_FACTS", 20)


def _guard_subset_enumeration(facts: FrozenSet[Fact]) -> None:
    if len(facts) > MAX_SUBSET_FACTS:
        raise FactSetTooLargeError(
            f"refusing to enumerate the 2^{len(facts)} subsets of a "
            f"{len(facts)}-fact set (guard: {MAX_SUBSET_FACTS}; raise "
            "REPRO_MAX_SUBSET_FACTS if this is intentional)"
        )


def _nonempty_subsets(facts: FrozenSet[Fact]) -> Iterator[FrozenSet[Fact]]:
    _guard_subset_enumeration(facts)
    ordered = sorted(facts, key=str)
    for size in range(1, len(ordered) + 1):
        for combo in combinations(ordered, size):
            yield frozenset(combo)


def _proper_nonempty_subsets(facts: FrozenSet[Fact]) -> Iterator[FrozenSet[Fact]]:
    _guard_subset_enumeration(facts)
    ordered = sorted(facts, key=str)
    for size in range(1, len(ordered)):
        for combo in combinations(ordered, size):
            yield frozenset(combo)


@lru_cache(maxsize=env_cache_limit("REPRO_DELETION_OPS_CACHE_LIMIT", 1 << 15))
def _deletion_ops(violation: Violation) -> Tuple[Operation, ...]:
    """Memoized justified deletions for one violation.

    The same violation is met at every state along every walk that has
    not yet fixed it; caching returns the *same* operation objects, so
    downstream hashing and sort-key caches hit too.
    """
    return tuple(
        Operation.delete(subset) for subset in _nonempty_subsets(violation.facts)
    )


def justified_deletions_for(violation: Violation) -> Iterator[Operation]:
    """All justified deletions fixing *violation*: ``-F`` for non-empty
    ``F`` included in the body image ``h(phi)``."""
    yield from _deletion_ops(violation)


def justified_insertions_for(
    violation: Violation,
    database: Database,
    base_constants: FrozenSet[Term],
) -> Iterator[Operation]:
    """All justified insertions fixing *violation* (TGD violations only).

    Candidates are ``F = h'(psi) - D'`` for every extension ``h'`` of the
    violation's homomorphism over the base constants (Proposition 1),
    filtered by Definition 3's proper-subset condition.
    """
    constraint = violation.constraint
    if not isinstance(constraint, TGD):
        return
    seen: Set[FrozenSet[Fact]] = set()
    for _, head_facts in constraint.head_images(violation.h, base_constants):
        missing = frozenset(head_facts - database.facts)
        if not missing or missing in seen:
            continue
        seen.add(missing)
        if _insertion_is_minimal(violation, database, missing):
            yield Operation.insert(missing)


def _insertion_is_minimal(
    violation: Violation, database: Database, facts: FrozenSet[Fact]
) -> bool:
    """Definition 3 condition 1: no proper subset of *facts* fixes the
    violation already."""
    if len(facts) == 1:
        return True  # no proper non-empty subsets exist
    for subset in _proper_nonempty_subsets(facts):
        if not violation.holds_in(database.with_added(subset)):
            return False
    return True


def enumerate_justified_operations(
    database: Database,
    constraints: ConstraintSet,
    base_constants: FrozenSet[Term],
    current_violations: Iterable[Violation] | None = None,
) -> FrozenSet[Operation]:
    """Every operation that is ``(D', Sigma)``-justified.

    *current_violations* may pass a precomputed ``V(D', Sigma)`` to avoid
    recomputation; otherwise it is derived here.
    """
    if current_violations is None:
        current_violations = violations(database, constraints)
    ops: Set[Operation] = set()
    for violation in current_violations:
        ops.update(justified_deletions_for(violation))
        ops.update(justified_insertions_for(violation, database, base_constants))
    return frozenset(ops)


def is_justified(
    op: Operation,
    database: Database,
    constraints: ConstraintSet,
    current_violations: Iterable[Violation] | None = None,
) -> bool:
    """Direct check of Definition 3 for an arbitrary operation.

    Used by tests and by the *global justification of additions*
    condition, which re-checks earlier insertions against shrunken
    databases.
    """
    if current_violations is None:
        current_violations = violations(database, constraints)
    after = op.apply(database)
    for violation in current_violations:
        if violation.holds_in(after):
            continue  # not fixed by op
        if op.is_delete:
            # Condition 2: every proper subset removal also fixes it,
            # which holds iff F is a subset of the body image inside D'.
            if not op.facts <= violation.facts:
                continue
            # A singleton deletion inside the body image is minimal by
            # definition (it has no proper non-empty subsets), so skip
            # the subset machinery entirely on this hot path.
            if len(op.facts) == 1:
                return True
            if all(
                not violation.holds_in(database.with_removed(subset))
                for subset in _proper_nonempty_subsets(op.facts)
            ):
                return True
        else:
            # Condition 1: no proper subset addition fixes it, and the
            # added facts must all be new (otherwise a smaller operation
            # would behave identically).
            if op.facts & database.facts:
                continue
            if not isinstance(violation.constraint, TGD):
                continue
            if _insertion_matches_head(violation, database, op.facts):
                if _insertion_is_minimal(violation, database, op.facts):
                    return True
    return False


def _insertion_matches_head(
    violation: Violation, database: Database, facts: FrozenSet[Fact]
) -> bool:
    """Whether ``facts`` equals ``h'(psi) - D'`` for some extension ``h'``."""
    constraint = violation.constraint
    assert isinstance(constraint, TGD)
    extension_constants: Set[Term] = set()
    for fact in facts:
        extension_constants.update(fact.values)
    for value in violation.h.values():
        extension_constants.add(value)
    for _, head_facts in constraint.head_images(
        violation.h, frozenset(extension_constants)
    ):
        if frozenset(head_facts - database.facts) == facts:
            return True
    return False
