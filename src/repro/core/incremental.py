"""Incremental violation maintenance under single-operation updates.

Every step of chain exploration and of every ``Sample`` walk replaces a
database ``D`` by ``D + F`` or ``D - F`` and needs the new violation set
``V(D ± F, Sigma)`` (Definition 2).  Recomputing it from scratch re-runs
a full backtracking join per constraint; this module instead derives it
from ``V(D, Sigma)`` with work proportional to the *delta*:

- constraints mentioning none of ``F``'s relations (body or head) keep
  their violations verbatim;
- a **deletion** ``-F`` kills exactly the violations whose body image
  intersects ``F``; for TGDs whose head mentions a deleted relation, the
  deletion may also *destroy a witness* and surface new violations —
  found by a joint body+head search seeded with one head atom pinned to
  a deleted fact (:func:`repro.db.homomorphism.find_homomorphisms_pinned`);
- an **insertion** ``+F`` can only create body homomorphisms that use
  some fact of ``F``, so a pinned search per (body atom, fact) pair
  enumerates exactly the new candidates; for TGDs whose head mentions an
  inserted relation, surviving violations are re-checked because the new
  facts may have completed a head witness.

The correctness argument mirrors first-order incremental view
maintenance over the conflict-hypergraph view of subset repairs
(Chomicki & Marcinkowski): violations of monotone (denial-style)
constraints behave exactly like hyperedges under deltas, and the TGD
head cases are the only non-monotone interactions.

The same delta discipline extends from violations to the *justified
operation* set ``JustOp(D', Sigma)`` (Definition 3):
:class:`DeltaOperationIndex` keys every violation's justified operations
on the violation itself and re-derives an entry only when the update
could actually change it — deletions of a violation are functions of its
body image alone, and insertions fixing a TGD violation depend on the
database only through the TGD's *head* relations.  A step that leaves a
violation alive and its constraint's head relations untouched therefore
reuses the cached entry verbatim.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.constraints.base import Constraint, ConstraintSet
from repro.constraints.tgd import TGD
from repro.core import columnar
from repro.core.justified import justified_deletions_for, justified_insertions_for
from repro.core.operations import Operation
from repro.core.violations import Violation, violations
from repro.db.facts import Database, Fact
from repro.db.homomorphism import (
    Assignment,
    find_homomorphisms_pinned,
    freeze_assignment,
)
from repro.db.terms import Term


class DeltaViolationIndex:
    """Maintains ``V(D, Sigma)`` across single-operation updates.

    Stateless with respect to any particular database — the caller keeps
    ``(D, V(D, Sigma))`` pairs (they live on
    :class:`repro.core.state.RepairState`) and asks for the successor
    set.  One index is shared by an entire
    :class:`repro.core.engine.RepairEngine`.
    """

    #: Violation sets below this size stay on the plain Python loop —
    #: building code arrays costs more than it saves.
    MONOTONE_INDEX_THRESHOLD = 32
    #: Bound on cached per-violation-set membership indexes.
    MONOTONE_INDEX_CACHE = 64

    def __init__(self, constraints: ConstraintSet) -> None:
        self.constraints = constraints
        self._no_tgds = constraints.deletion_only()
        # id(violation frozenset) -> (pinned frozenset, membership index).
        # Warm chains revisit the same cached violation frozensets across
        # thousands of walk steps, so the sorted-code arrays amortize;
        # pinning the frozenset keeps its id from being recycled.
        self._monotone_indexes: "OrderedDict[int, Tuple[FrozenSet[Violation], columnar.EdgeMembershipIndex]]" = (
            OrderedDict()
        )
        self._monotone_lock = threading.Lock()

    def _monotone_survivors(
        self, old_violations: FrozenSet[Violation], changed: FrozenSet[Fact]
    ) -> FrozenSet[Violation]:
        """Deletion survivors via the columnar membership index."""
        key = id(old_violations)
        with self._monotone_lock:
            entry = self._monotone_indexes.get(key)
            if entry is not None:
                self._monotone_indexes.move_to_end(key)
        if entry is None:
            index = columnar.EdgeMembershipIndex(
                old_violations, members=lambda violation: violation.facts
            )
            with self._monotone_lock:
                self._monotone_indexes[key] = (old_violations, index)
                while len(self._monotone_indexes) > self.MONOTONE_INDEX_CACHE:
                    self._monotone_indexes.popitem(last=False)
        else:
            index = entry[1]
        return frozenset(index.payloads_disjoint_from(changed))

    # ------------------------------------------------------------------
    # Entry point
    # ------------------------------------------------------------------
    def violations_after(
        self,
        old_db: Database,
        old_violations: FrozenSet[Violation],
        op: Operation,
        new_db: Database,
    ) -> FrozenSet[Violation]:
        """``V(op(D), Sigma)`` given ``V(D, Sigma)``.

        *new_db* must equal ``op.apply(old_db)`` (passed in so callers
        that already materialized it don't pay twice).
        """
        if new_db is old_db:
            return old_violations
        if op.is_insert:
            changed = frozenset(op.facts - old_db.facts)
        else:
            changed = frozenset(op.facts & old_db.facts)
        if not changed:
            return old_violations
        if not op.is_insert and self._no_tgds:
            # Monotone fast path: without TGD heads a deletion can only
            # kill violations, and it kills exactly those whose body
            # image meets the removed facts — no per-constraint analysis
            # needed (violations of untouched constraints are trivially
            # disjoint from the removed facts).
            if (
                len(old_violations) >= self.MONOTONE_INDEX_THRESHOLD
                and columnar.available()
            ):
                return self._monotone_survivors(old_violations, changed)
            return frozenset(
                v for v in old_violations if v.facts.isdisjoint(changed)
            )
        changed_relations = frozenset(f.relation for f in changed)

        grouped: Dict[Constraint, List[Violation]] = {}
        for violation in old_violations:
            grouped.setdefault(violation.constraint, []).append(violation)

        out: Set[Violation] = set()
        for constraint in self.constraints:
            old_of_c = grouped.get(constraint, [])
            body_hit = bool(changed_relations & constraint.body_relations)
            head_hit = bool(changed_relations & constraint.head_relations)
            if not body_hit and not head_hit:
                out.update(old_of_c)
            elif op.is_insert:
                out.update(
                    self._after_insert(
                        constraint, old_of_c, changed, new_db, body_hit, head_hit
                    )
                )
            else:
                out.update(
                    self._after_delete(
                        constraint,
                        old_of_c,
                        changed,
                        old_db,
                        new_db,
                        body_hit,
                        head_hit,
                    )
                )
        return frozenset(out)

    # ------------------------------------------------------------------
    # Insertion: bodies can only gain matches, TGD heads can only gain
    # witnesses.
    # ------------------------------------------------------------------
    def _after_insert(
        self,
        constraint: Constraint,
        old_of_c: Sequence[Violation],
        added: FrozenSet[Fact],
        new_db: Database,
        body_hit: bool,
        head_hit: bool,
    ) -> Iterable[Violation]:
        if head_hit:
            # The inserted facts may complete a head witness for an
            # existing violation; re-check the (cheap, seeded) head.
            survivors = [
                v
                for v in old_of_c
                if not constraint.head_holds(v.h, new_db)
            ]
        else:
            survivors = list(old_of_c)
        if not body_hit:
            return survivors
        fresh: Set[Violation] = set()
        for assignment in self._pinned_body_matches(constraint, added, new_db):
            if not constraint.head_holds(assignment, new_db):
                fresh.add(Violation.of(constraint, assignment))
        return survivors + list(fresh)

    def _pinned_body_matches(
        self, constraint: Constraint, facts: FrozenSet[Fact], database: Database
    ) -> Iterable[Assignment]:
        """Body homomorphisms into *database* using some fact of *facts*.

        Each returned assignment binds exactly the body variables (the
        same shape the full search produces, so the resulting
        :class:`Violation` values are identical).  Assignments found via
        several pins are deduplicated.
        """
        seen: Set[Tuple] = set()
        for fact in facts:
            for index, atom in enumerate(constraint.body):
                if atom.relation != fact.relation or atom.arity != fact.arity:
                    continue
                for assignment in find_homomorphisms_pinned(
                    constraint.body, database, index, fact
                ):
                    frozen = freeze_assignment(assignment)
                    if frozen not in seen:
                        seen.add(frozen)
                        yield assignment

    # ------------------------------------------------------------------
    # Deletion: bodies can only lose matches, TGD heads can only lose
    # witnesses.
    # ------------------------------------------------------------------
    def _after_delete(
        self,
        constraint: Constraint,
        old_of_c: Sequence[Violation],
        removed: FrozenSet[Fact],
        old_db: Database,
        new_db: Database,
        body_hit: bool,
        head_hit: bool,
    ) -> Iterable[Violation]:
        if body_hit:
            survivors = [v for v in old_of_c if v.facts.isdisjoint(removed)]
        else:
            # Body images are intact, and deletions can never make a
            # failing head hold (TGD witnesses only disappear; EGD/DC
            # heads ignore the database), so every violation survives.
            survivors = list(old_of_c)
        if not head_hit or not isinstance(constraint, TGD):
            return survivors
        # A deleted fact may have been the last witness of a satisfied
        # body homomorphism: search (body + head) jointly over the *old*
        # database with one head atom pinned to a deleted fact, then keep
        # the body projections that are intact in, and violated by, the
        # new database.
        body_variables = constraint.body_variables
        joint_atoms = list(constraint.body) + list(constraint.head)
        body_count = len(constraint.body)
        fresh: Dict[Tuple, Violation] = {}
        for fact in removed:
            for offset, atom in enumerate(constraint.head):
                if atom.relation != fact.relation or atom.arity != fact.arity:
                    continue
                for joint in find_homomorphisms_pinned(
                    joint_atoms, old_db, body_count + offset, fact
                ):
                    assignment = {
                        var: value
                        for var, value in joint.items()
                        if var in body_variables
                    }
                    frozen = freeze_assignment(assignment)
                    if frozen in fresh:
                        continue
                    image = constraint.body_image(assignment)
                    if not all(f in new_db for f in image):
                        continue
                    if constraint.head_holds(assignment, new_db):
                        continue
                    fresh[frozen] = Violation(constraint, frozen)
        return survivors + list(fresh.values())


#: Per-violation justified operations: the decomposition of
#: ``JustOp(D', Sigma)`` Definition 3 induces (each operation is
#: justified *by* some violation).
OperationMap = Dict[Violation, Tuple[Operation, ...]]


class OperationMapState:
    """``JustOp(D', Sigma)`` for one database, in delta-friendly form.

    - ``by_violation`` — each current violation's justified operations;
    - ``counts`` — how many current violations justify each operation
      (an operation leaves the candidate set only when its count hits 0);
    - ``ordered`` — the candidate operations in the engine's
      deterministic sort order, so successor states whose candidate set
      only *shrinks* (every deletion step) derive their ordering by an
      O(n) filter instead of a fresh sort.
    """

    __slots__ = ("by_violation", "counts", "ordered")

    def __init__(
        self,
        by_violation: OperationMap,
        counts: Dict[Operation, int],
        ordered: Tuple[Operation, ...],
    ) -> None:
        self.by_violation = by_violation
        self.counts = counts
        self.ordered = ordered

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """The justified operations, deterministically ordered."""
        return self.ordered


class DeltaOperationIndex:
    """Maintains ``JustOp(D, Sigma)`` across single-operation updates.

    The analogue of :class:`DeltaViolationIndex` one level up: instead of
    re-running :func:`repro.core.justified.enumerate_justified_operations`
    at every state, the justified-operation set is derived from the
    predecessor's by touching only the violations the step changed.

    Reuse argument (why an entry survives a step): for a violation ``v``
    alive in both ``D'`` and ``op(D')``,

    - its justified *deletions* are the non-empty subsets of the body
      image ``h(phi)`` — a function of ``v`` alone;
    - its justified *insertions* (TGD violations only) are the missing
      head images ``h'(psi) - D'`` filtered by minimality, and both the
      missing part and the minimality re-check inspect only facts of the
      TGD's head relations (the body image is contained in either
      database because ``v`` is a current violation of both).

    So an entry is re-derived exactly when the violation is new or the
    update touched the constraint's head relations.
    """

    def __init__(
        self, constraints: ConstraintSet, base_constants: FrozenSet[Term]
    ) -> None:
        self.constraints = constraints
        self.base_constants = base_constants
        #: Union of TGD head relations: an update not touching them can
        #: never invalidate a surviving violation's entry.
        self._tgd_head_relations: FrozenSet[str] = frozenset(
            relation
            for constraint in constraints
            if isinstance(constraint, TGD)
            for relation in constraint.head_relations
        )
        #: Entries re-derived against a concrete database.
        self.derivations = 0
        #: Entries carried over verbatim from the predecessor state.
        self.reuses = 0

    # ------------------------------------------------------------------
    # Per-violation derivation
    # ------------------------------------------------------------------
    def ops_for(self, violation: Violation, database: Database) -> Tuple[Operation, ...]:
        """The operations justified by *violation* at *database*."""
        self.derivations += 1
        ops = tuple(justified_deletions_for(violation))
        if isinstance(violation.constraint, TGD):
            ops += tuple(
                justified_insertions_for(violation, database, self.base_constants)
            )
        return ops

    # ------------------------------------------------------------------
    # Full build (initial states, cache cold starts)
    # ------------------------------------------------------------------
    def full_state(
        self,
        database: Database,
        current_violations: Iterable[Violation],
        sort_key,
    ) -> OperationMapState:
        """Build the map from scratch (the non-incremental reference)."""
        by_violation: OperationMap = {}
        counts: Dict[Operation, int] = {}
        for violation in current_violations:
            entry = self.ops_for(violation, database)
            by_violation[violation] = entry
            for op in entry:
                counts[op] = counts.get(op, 0) + 1
        ordered = tuple(sorted(counts, key=sort_key))
        return OperationMapState(by_violation, counts, ordered)

    # ------------------------------------------------------------------
    # Delta derivation
    # ------------------------------------------------------------------
    def state_after(
        self,
        old: OperationMapState,
        op: Operation,
        new_db: Database,
        new_violations: FrozenSet[Violation],
        sort_key,
    ) -> OperationMapState:
        """``JustOp(op(D'), Sigma)`` given the predecessor's map.

        *new_violations* must be ``V(op(D'), Sigma)`` (the engine already
        maintains it via :class:`DeltaViolationIndex`).
        """
        old_map = old.by_violation
        if not self._tgd_head_relations:
            changed_relations: FrozenSet[str] = frozenset()
            heads_hit = False
        else:
            changed_relations = frozenset(f.relation for f in op.facts)
            heads_hit = bool(changed_relations & self._tgd_head_relations)
        by_violation: OperationMap = {}
        counts = dict(old.counts)
        changed = False
        grew = False
        for violation in new_violations:
            entry = old_map.get(violation)
            if entry is not None and (
                not heads_hit
                or not isinstance(violation.constraint, TGD)
                or not (changed_relations & violation.constraint.head_relations)
            ):
                self.reuses += 1
                by_violation[violation] = entry
                continue
            changed = True
            if entry is not None:
                # A TGD-head-touched violation: retract the stale entry
                # before re-deriving against the new database.
                for stale in entry:
                    counts[stale] -= 1
            fresh = self.ops_for(violation, new_db)
            by_violation[violation] = fresh
            for new_op in fresh:
                previous = counts.get(new_op, 0)
                if previous == 0:
                    grew = True
                counts[new_op] = previous + 1
        for violation, entry in old_map.items():
            if violation not in by_violation:
                changed = True
                for dead in entry:
                    counts[dead] -= 1
        if not changed:
            return OperationMapState(by_violation, counts, old.ordered)
        for dead in [candidate for candidate, count in counts.items() if count <= 0]:
            del counts[dead]
        if grew:
            ordered = tuple(sorted(counts, key=sort_key))
        else:
            # The candidate set only shrank: the predecessor's order is
            # still correct, restricted to the survivors.
            ordered = tuple(c for c in old.ordered if c in counts)
        return OperationMapState(by_violation, counts, ordered)


def incremental_violations(
    old_db: Database,
    old_violations: FrozenSet[Violation],
    op: Operation,
    constraints: ConstraintSet,
    new_db: Database | None = None,
) -> FrozenSet[Violation]:
    """Functional convenience wrapper around :class:`DeltaViolationIndex`."""
    if new_db is None:
        new_db = op.apply(old_db)
    return DeltaViolationIndex(constraints).violations_after(
        old_db, old_violations, op, new_db
    )


#: The non-incremental reference computation (re-exported so equivalence
#: tests and cold starts name the same definition the engine falls back to).
full_violations = violations
