"""Bounded caches and cache-size configuration.

Every memo the engine keeps — violation sets, successor pairs, justified
operation maps, transition distributions — is a bounded LRU mapping.
They all live on this class so their sizes can be tuned uniformly: each
limit resolves, in order, from an explicit constructor argument, an
environment variable (``REPRO_*_CACHE_LIMIT``), and the built-in
default.  The caches also count hits and misses, which
:func:`repro.diagnostics.cache_report` aggregates into a human-readable
report.
"""

from __future__ import annotations

import os
from collections import OrderedDict
from typing import Dict, Generic, Optional, TypeVar

K = TypeVar("K")
V = TypeVar("V")


def env_cache_limit(variable: str, default: int) -> int:
    """Resolve a cache size from the environment.

    ``variable`` must hold a positive integer when set; anything else is
    a configuration error worth failing loudly on (a silently ignored
    typo would leave the operator convinced they resized the cache).
    """
    raw = os.environ.get(variable)
    if raw is None:
        return default
    try:
        value = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"{variable} must be an integer cache size, got {raw!r}"
        ) from exc
    if value <= 0:
        raise ValueError(f"{variable} must be positive, got {value}")
    return value


def resolve_cache_limit(
    explicit: Optional[int], variable: str, default: int
) -> int:
    """Constructor argument > environment variable > default."""
    if explicit is not None:
        if explicit <= 0:
            raise ValueError(f"cache limit must be positive, got {explicit}")
        return explicit
    return env_cache_limit(variable, default)


class LRUCache(Generic[K, V]):
    """A small bounded mapping with least-recently-used eviction.

    Replaces the old "drop everything at the size bound" policy, which
    discarded the hot prefix states every ``Sample`` walk revisits.
    Lookups count hits and misses so :mod:`repro.diagnostics` can report
    how well each memo is doing.
    """

    __slots__ = ("limit", "_data", "hits", "misses")

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ValueError("LRU cache limit must be positive")
        self.limit = limit
        self._data: "OrderedDict[K, V]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: K) -> Optional[V]:
        data = self._data
        value = data.get(key)
        if value is not None:
            self.hits += 1
            data.move_to_end(key)
        else:
            self.misses += 1
        return value

    def put(self, key: K, value: V) -> None:
        data = self._data
        data[key] = value
        data.move_to_end(key)
        if len(data) > self.limit:
            data.popitem(last=False)

    def __len__(self) -> int:
        return len(self._data)

    def clear(self) -> None:
        self._data.clear()

    def stats(self) -> Dict[str, int]:
        """Hit/miss/occupancy counters for diagnostics."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "size": len(self._data),
            "limit": self.limit,
        }

    def __reduce__(self):
        # Pickle as an *empty* cache: contents are pure memoization and
        # can be arbitrarily large; shipping a chain to worker processes
        # must not serialize hundreds of thousands of cached entries.
        return (type(self), (self.limit,))
