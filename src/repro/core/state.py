"""Repairing-sequence state (Definition 4).

A :class:`RepairState` is one node of the repairing Markov chain: the
sequence of operations applied so far, the current database, and the
bookkeeping needed to enforce the sequence conditions incrementally:

- ``current_violations`` — ``V(D', Sigma)`` for the state's database;
  this is the delta state of the incremental engine: every successor's
  violation set is derived from it by
  :class:`repro.core.incremental.DeltaViolationIndex` rather than
  recomputed, so carrying it here is what makes each walk step cost
  only the delta;
- ``banned`` — violations eliminated by some earlier step; req2 forbids
  them from ever holding again;
- ``added`` / ``deleted`` — fact sets for the *no cancellation* condition;
- ``addition_records`` — for each earlier insertion, the database it was
  applied to and the deletions performed since, so *global justification
  of additions* can be re-checked when a new deletion arrives.

States are immutable; :meth:`RepairState.child` produces the extended
state.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, Tuple

from repro.core.operations import Operation
from repro.core.violations import Violation
from repro.db.facts import Database, Fact


@dataclass(frozen=True, slots=True)
class AdditionRecord:
    """Bookkeeping for one earlier insertion ``+F``.

    ``db_before`` is the database the insertion was applied to
    (``D^s_{i-1}``), and ``deletions_after`` accumulates the union ``H``
    of all facts deleted by later operations.  Definition 4(3) requires
    the insertion to remain justified on ``db_before - H``.
    """

    op: Operation
    db_before: Database
    deletions_after: FrozenSet[Fact] = frozenset()

    def with_deletion(self, facts: FrozenSet[Fact]) -> "AdditionRecord":
        """Record that *facts* were deleted after this insertion."""
        return AdditionRecord(self.op, self.db_before, self.deletions_after | facts)


@dataclass(frozen=True, slots=True)
class RepairState:
    """A repairing sequence together with its derived data."""

    db: Database
    sequence: Tuple[Operation, ...] = ()
    banned: FrozenSet[Violation] = frozenset()
    current_violations: FrozenSet[Violation] = frozenset()
    added: FrozenSet[Fact] = frozenset()
    deleted: FrozenSet[Fact] = frozenset()
    addition_records: Tuple[AdditionRecord, ...] = ()

    @property
    def depth(self) -> int:
        """Length of the repairing sequence so far."""
        return len(self.sequence)

    @property
    def is_consistent(self) -> bool:
        """Whether the current database satisfies the constraints."""
        return not self.current_violations

    def child(
        self,
        op: Operation,
        new_db: Database,
        new_violations: FrozenSet[Violation],
    ) -> "RepairState":
        """The state reached by appending *op* (no validity checks here;
        the engine validates before calling)."""
        eliminated = self.current_violations - new_violations
        if op.is_insert:
            records = self.addition_records + (
                AdditionRecord(op, self.db),
            )
            added = self.added | op.facts
            deleted = self.deleted
        else:
            records = tuple(
                record.with_deletion(op.facts) for record in self.addition_records
            )
            added = self.added
            deleted = self.deleted | op.facts
        return RepairState(
            db=new_db,
            sequence=self.sequence + (op,),
            banned=self.banned | eliminated,
            current_violations=new_violations,
            added=added,
            deleted=deleted,
            addition_records=records,
        )

    def label(self) -> str:
        """A compact human-readable label (used by the chain renderer)."""
        if not self.sequence:
            return "ε"
        return ", ".join(str(op) for op in self.sequence)

    def __str__(self) -> str:
        return self.label()
