"""The paper's contribution: the operational approach to CQA (Sections 3-5).

Workflow:

1. build a :class:`~repro.db.Database` and a
   :class:`~repro.constraints.ConstraintSet`;
2. pick a :class:`~repro.core.ChainGenerator` (``M_Sigma``) — e.g.
   :class:`~repro.core.UniformGenerator` or the paper's preference/trust
   generators;
3. compute exact semantics with :func:`repair_distribution` /
   :func:`exact_oca`, or approximate with :func:`approximate_cp` /
   :func:`approximate_oca` (Theorem 9's additive-error scheme).
"""

from repro.core.operations import Operation, OpKind
from repro.core.violations import (
    Violation,
    violations,
    violations_of,
    violating_facts,
    conflict_pairs,
    is_consistent,
)
from repro.core.justified import (
    enumerate_justified_operations,
    is_justified,
    justified_deletions_for,
    justified_insertions_for,
)
from repro.core.state import RepairState, AdditionRecord
from repro.core.engine import LRUCache, RepairEngine
from repro.core.incremental import (
    DeltaOperationIndex,
    DeltaViolationIndex,
    incremental_violations,
    full_violations,
)
from repro.core.chain import ChainGenerator, RepairingChain
from repro.core.generators import (
    UniformGenerator,
    DeletionOnlyUniformGenerator,
    SingleFactDeletionGenerator,
    PreferenceGenerator,
    TrustGenerator,
    FunctionGenerator,
)
from repro.core.exact import (
    Leaf,
    Edge,
    ChainExploration,
    explore_chain,
)
from repro.core.repairs import (
    RepairDistribution,
    repair_distribution,
    distribution_from_exploration,
    operational_repairs,
)
from repro.core.oca import (
    OCAResult,
    exact_cp,
    exact_oca,
    cp_from_distribution,
    oca_from_distribution,
)
from repro.core.sampling import (
    Walk,
    ApproximationResult,
    choose_transition,
    sample_walk,
    sample_many,
    sample_once,
    approximate_cp,
    approximate_oca,
    estimate_sequence_lengths,
)
from repro.core.errors import (
    ReproError,
    InvalidGeneratorError,
    ExplorationBudgetError,
    FailingSequenceError,
)

__all__ = [
    "Operation",
    "OpKind",
    "Violation",
    "violations",
    "violations_of",
    "violating_facts",
    "conflict_pairs",
    "is_consistent",
    "enumerate_justified_operations",
    "is_justified",
    "justified_deletions_for",
    "justified_insertions_for",
    "RepairState",
    "AdditionRecord",
    "RepairEngine",
    "LRUCache",
    "DeltaOperationIndex",
    "DeltaViolationIndex",
    "incremental_violations",
    "full_violations",
    "ChainGenerator",
    "RepairingChain",
    "UniformGenerator",
    "DeletionOnlyUniformGenerator",
    "SingleFactDeletionGenerator",
    "PreferenceGenerator",
    "TrustGenerator",
    "FunctionGenerator",
    "Leaf",
    "Edge",
    "ChainExploration",
    "explore_chain",
    "RepairDistribution",
    "repair_distribution",
    "distribution_from_exploration",
    "operational_repairs",
    "OCAResult",
    "exact_cp",
    "exact_oca",
    "cp_from_distribution",
    "oca_from_distribution",
    "Walk",
    "ApproximationResult",
    "choose_transition",
    "sample_walk",
    "sample_many",
    "sample_once",
    "approximate_cp",
    "approximate_oca",
    "estimate_sequence_lengths",
    "ReproError",
    "InvalidGeneratorError",
    "ExplorationBudgetError",
    "FailingSequenceError",
]
