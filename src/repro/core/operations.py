"""Operations ``+F`` / ``-F`` (Definition 1).

An operation adds or removes a set of facts; it acts uniformly on any
database over the base ``B(D, Sigma)``.  Operations are value objects —
two ``+F`` with the same fact set are the same operation — which is what
makes repairing sequences comparable and the Markov chain well defined.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import FrozenSet, Iterable

from repro.db.facts import Database, Fact


class OpKind(str, Enum):
    """Whether the operation inserts or deletes facts."""

    INSERT = "+"
    DELETE = "-"


@dataclass(frozen=True)
class Operation:
    """``+F`` (insert the fact set ``F``) or ``-F`` (delete it)."""

    kind: OpKind
    facts: FrozenSet[Fact]

    def __post_init__(self) -> None:
        if not isinstance(self.facts, frozenset):
            object.__setattr__(self, "facts", frozenset(self.facts))
        if not self.facts:
            raise ValueError("operations must involve a non-empty set of facts")

    def __hash__(self) -> int:
        # Cached: operations are dict/cache keys on every engine hot
        # path, and the dataclass-generated hash re-tuples per call.
        cached = getattr(self, "_hash_cache", None)
        if cached is None:
            cached = hash((self.kind, self.facts))
            object.__setattr__(self, "_hash_cache", cached)
        return cached

    def __getstate__(self):
        # Never pickle the cached hash: it is per-process (randomized
        # str hashing) and a stale value breaks set/dict lookups after
        # cross-process unpickling (see Fact.__getstate__).
        state = dict(self.__dict__)
        state.pop("_hash_cache", None)
        return state

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @staticmethod
    def insert(facts: Iterable[Fact] | Fact) -> "Operation":
        """Build ``+F``; accepts a single fact or an iterable of facts."""
        if isinstance(facts, Fact):
            facts = (facts,)
        return Operation(OpKind.INSERT, frozenset(facts))

    @staticmethod
    def delete(facts: Iterable[Fact] | Fact) -> "Operation":
        """Build ``-F``; accepts a single fact or an iterable of facts."""
        if isinstance(facts, Fact):
            facts = (facts,)
        return Operation(OpKind.DELETE, frozenset(facts))

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    @property
    def is_insert(self) -> bool:
        """Whether this is a ``+F`` operation."""
        return self.kind is OpKind.INSERT

    @property
    def is_delete(self) -> bool:
        """Whether this is a ``-F`` operation."""
        return self.kind is OpKind.DELETE

    def apply(self, database: Database) -> Database:
        """``op(D') = D' + F`` or ``D' - F``.

        Uses the structural-sharing constructors so the derived database
        inherits the parent's fact indexes instead of rebuilding them.
        """
        if self.is_insert:
            return database.with_added(self.facts)
        return database.with_removed(self.facts)

    def __call__(self, database: Database) -> Database:
        return self.apply(database)

    def __str__(self) -> str:
        inner = ", ".join(str(f) for f in sorted(self.facts, key=str))
        if len(self.facts) == 1:
            return f"{self.kind.value}{inner}"
        return f"{self.kind.value}{{{inner}}}"

    def __repr__(self) -> str:
        return f"Operation({self})"
