"""Serialization: JSON and CSV round-trips for databases and constraints.

JSON layout::

    {"R": [["a", "b"], ["a", "c"]], "S": [["b"]]}

CSV layout: one ``<relation>.csv`` file per relation inside a directory,
no header, one fact per row.  Constraint files use the textual syntax of
:mod:`repro.constraints.parser`, one constraint per line.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Dict, List, Union

from repro.constraints.base import ConstraintSet
from repro.constraints.parser import parse_constraints
from repro.db.facts import Database, Fact

PathLike = Union[str, Path]


def database_to_json(database: Database) -> str:
    """Serialize a database to a JSON string."""
    grouped: Dict[str, List[List]] = {}
    for fact in database.sorted_facts:
        grouped.setdefault(fact.relation, []).append(list(fact.values))
    return json.dumps(grouped, indent=2, sort_keys=True, default=str)


def database_from_json(text: str) -> Database:
    """Parse a database from its JSON representation."""
    data = json.loads(text)
    if not isinstance(data, dict):
        raise ValueError("database JSON must be an object of relation -> rows")
    facts = []
    for relation, rows in data.items():
        for row in rows:
            facts.append(Fact(relation, tuple(row)))
    return Database(facts)


def save_database(database: Database, path: PathLike) -> None:
    """Write a database to a ``.json`` file."""
    Path(path).write_text(database_to_json(database), encoding="utf-8")


def load_database(path: PathLike) -> Database:
    """Read a database from a ``.json`` file."""
    return database_from_json(Path(path).read_text(encoding="utf-8"))


def save_database_csv(database: Database, directory: PathLike) -> None:
    """Write one headerless ``<relation>.csv`` per relation."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for relation, facts in database.by_relation.items():
        with open(directory / f"{relation}.csv", "w", newline="", encoding="utf-8") as fh:
            writer = csv.writer(fh)
            for fact in facts:
                writer.writerow(fact.values)


def load_database_csv(directory: PathLike) -> Database:
    """Read every ``*.csv`` in *directory* as a relation."""
    directory = Path(directory)
    facts = []
    for csv_path in sorted(directory.glob("*.csv")):
        relation = csv_path.stem
        with open(csv_path, newline="", encoding="utf-8") as fh:
            for row in csv.reader(fh):
                if row:
                    facts.append(Fact(relation, tuple(row)))
    return Database(facts)


def load_constraints(path: PathLike) -> ConstraintSet:
    """Read a constraint file (textual syntax, ``#`` comments allowed)."""
    return ConstraintSet(parse_constraints(Path(path).read_text(encoding="utf-8")))


def save_constraints(constraints: ConstraintSet, path: PathLike) -> None:
    """Write constraints in their textual syntax, one per line."""
    lines = [str(constraint) for constraint in constraints]
    Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")
