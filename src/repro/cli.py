"""Command-line front end.

Installed as ``ocqa``; see ``ocqa --help``.  All subcommands read the
database from a JSON file (see :mod:`repro.io`) and constraints from a
text file in the parser syntax.

Examples::

    ocqa violations --db d.json --constraints sigma.txt
    ocqa repairs    --db d.json --constraints sigma.txt --generator uniform
    ocqa oca        --db d.json --constraints sigma.txt --query "Q(x) :- R(x, y)"
    ocqa sample     --db d.json --constraints sigma.txt --query "Q(x) :- R(x, y)" \
                    --epsilon 0.05 --delta 0.05 --seed 7
    ocqa chain      --db d.json --constraints sigma.txt --format ascii
    ocqa abc        --db d.json --constraints sigma.txt --query "Q(x) :- R(x, y)"
    ocqa worker     --listen 0.0.0.0:7461 --max-inflight 4
    ocqa sql-sample --db d.json --constraints sigma.txt --query "..." \
                    --worker host1:7461 --worker host2:7461 --seed 7
    ocqa serve      --listen 0.0.0.0:8080 --supervise 2 \
                    --tenant acme:4:50000:100000
    ocqa status     --service 127.0.0.1:8080
    ocqa top        --service 127.0.0.1:8080 --interval 2
"""

from __future__ import annotations

import argparse
import json
import random
import sys
from fractions import Fraction
from typing import Optional, Sequence

from repro.abc_repairs import abc_repairs, certain_answers
from repro.core import (
    DeletionOnlyUniformGenerator,
    PreferenceGenerator,
    TrustGenerator,
    UniformGenerator,
    approximate_oca,
    exact_oca,
    repair_distribution,
    violations,
)
from repro.db.facts import Fact
from repro.io import load_constraints, load_database
from repro.queries.parser import parse_query
from repro.viz import chain_to_ascii, chain_to_dot, distribution_table


def _build_generator(args: argparse.Namespace, constraints):
    name = args.generator
    if name == "uniform":
        return UniformGenerator(constraints)
    if name == "deletion":
        return DeletionOnlyUniformGenerator(constraints)
    if name == "preference":
        return PreferenceGenerator(constraints, relation=args.preference_relation)
    if name == "trust":
        if not args.trust:
            raise SystemExit("--trust FILE is required for the trust generator")
        with open(args.trust, encoding="utf-8") as fh:
            raw = json.load(fh)
        trust = {}
        for entry in raw:
            trust[Fact(entry["relation"], tuple(entry["values"]))] = Fraction(
                str(entry["trust"])
            )
        return TrustGenerator(constraints, trust)
    raise SystemExit(f"unknown generator {name!r}")


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--db", required=True, help="database JSON file")
    parser.add_argument("--constraints", required=True, help="constraint text file")
    parser.add_argument(
        "--generator",
        default="uniform",
        choices=["uniform", "deletion", "preference", "trust"],
        help="repairing Markov chain generator",
    )
    parser.add_argument(
        "--preference-relation",
        default="Pref",
        help="relation name for the preference generator",
    )
    parser.add_argument("--trust", help="trust JSON file for the trust generator")
    parser.add_argument(
        "--max-states",
        type=int,
        default=200_000,
        help="state budget for exact chain exploration",
    )


def _cmd_violations(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    constraints = load_constraints(args.constraints)
    found = sorted(violations(database, constraints), key=str)
    for violation in found:
        print(violation)
    print(f"{len(found)} violation(s)")
    return 0


def _cmd_diagnose(args: argparse.Namespace) -> int:
    from repro.diagnostics import diagnose

    database = load_database(args.db)
    constraints = load_constraints(args.constraints)
    print(diagnose(database, constraints).format())
    return 0


def _cmd_repairs(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    constraints = load_constraints(args.constraints)
    generator = _build_generator(args, constraints)
    distribution = repair_distribution(database, generator, max_states=args.max_states)
    print(distribution_table(distribution.items()))
    if distribution.failure_probability:
        print(f"failing-sequence probability: {distribution.failure_probability}")
    return 0


def _cmd_oca(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    constraints = load_constraints(args.constraints)
    generator = _build_generator(args, constraints)
    query = parse_query(args.query)
    result = exact_oca(database, generator, query, max_states=args.max_states)
    print(distribution_table(result.items(), header=("tuple", "CP")))
    return 0


def _cmd_sample(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    constraints = load_constraints(args.constraints)
    generator = _build_generator(args, constraints)
    query = parse_query(args.query)
    rng = random.Random(args.seed)
    coordinator = _build_coordinator(args)
    try:
        estimates = approximate_oca(
            database,
            generator,
            query,
            epsilon=args.epsilon,
            delta=args.delta,
            rng=rng,
            allow_failing=args.allow_failing,
            adaptive=args.adaptive,
            coordinator=coordinator,
            deadline=_deadline_from(args),
        )
    finally:
        if coordinator is not None:
            coordinator.close()
    for candidate, estimate in sorted(estimates.items(), key=lambda kv: -kv[1]):
        print(f"{candidate}  ~CP = {estimate:.4f}")
    rule = "empirical-Bernstein adaptive" if args.adaptive else "Hoeffding"
    print(
        f"(epsilon={args.epsilon}, delta={args.delta}; additive-error guarantee "
        f"per Theorem 9, {rule} stopping)"
    )
    return 0


def _cmd_chain(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    constraints = load_constraints(args.constraints)
    generator = _build_generator(args, constraints)
    chain = generator.chain(database)
    if args.format == "dot":
        print(chain_to_dot(chain, max_states=args.max_states))
    else:
        print(chain_to_ascii(chain, max_states=args.max_states))
    return 0


def _cmd_abc(args: argparse.Namespace) -> int:
    database = load_database(args.db)
    constraints = load_constraints(args.constraints)
    repairs = abc_repairs(database, constraints)
    for repair in sorted(repairs, key=repr):
        print(repr(repair))
    print(f"{len(repairs)} ABC repair(s)")
    if args.query:
        query = parse_query(args.query)
        answers = certain_answers(database, constraints, query)
        print(f"certain answers: {sorted(answers)}")
    return 0


def _cmd_sql_sample(args: argparse.Namespace) -> int:
    from repro.db.schema import Schema
    from repro.sql import ConstraintRepairSampler, create_backend

    database = load_database(args.db)
    constraints = load_constraints(args.constraints)
    query = parse_query(args.query)
    coordinator = _build_coordinator(args)
    schema = Schema.infer(database).extend(constraints.schema())
    with create_backend(args.backend) as backend:
        backend.load(database, schema)
        sampler = ConstraintRepairSampler(
            backend,
            schema,
            constraints,
            rng=random.Random(args.seed),
            checkpoint_path=args.checkpoint,
            adaptive=args.adaptive,
            coordinator=coordinator,
        )
        try:
            report = sampler.run(
                query,
                runs=args.runs,
                epsilon=args.epsilon,
                delta=args.delta,
                deadline=_deadline_from(args),
            )
        finally:
            sampler.close_coordinator()
            if coordinator is not None:
                coordinator.close()
    for candidate, estimate in report.items():
        print(f"{candidate}  ~CP = {estimate:.4f}")
    suffix = " (empirical-Bernstein early stop)" if report.stopped_early else ""
    print(
        f"({report.runs} sampling runs over {len(sampler.components)} "
        f"conflict components{suffix})"
    )
    if report.deadline_expired:
        achieved = (
            f"{report.achieved_epsilon:.4f}"
            if report.achieved_epsilon is not None
            else "unknown"
        )
        print(
            f"(deadline expired: best-effort estimate from the completed "
            f"draws; achieved epsilon ~{achieved} at delta={args.delta})"
        )
    return 0


def _parse_listen(listen: str) -> tuple:
    host, _, port = listen.rpartition(":")
    if not host or not port.isdigit():
        raise SystemExit(
            f"--listen must be host:port (port 0 picks a free one), "
            f"got {listen!r}"
        )
    return host, int(port)


def _cmd_worker(args: argparse.Namespace) -> int:
    from repro.distributed import serve

    host, port = _parse_listen(args.listen)
    if args.max_inflight < 0:
        raise SystemExit(
            f"--max-inflight must be >= 0 (0 disables backpressure), "
            f"got {args.max_inflight}"
        )
    if args.drain_timeout <= 0:
        raise SystemExit(
            f"--drain-timeout must be positive seconds, got {args.drain_timeout}"
        )
    if args.metrics_port is not None and args.metrics_port < 0:
        raise SystemExit(
            f"--metrics-port must be >= 0 (0 picks a free port), "
            f"got {args.metrics_port}"
        )
    serve(
        host,
        port,
        name=args.name,
        context_limit=args.context_limit,
        max_inflight=args.max_inflight,
        drain_timeout=args.drain_timeout,
        metrics_port=args.metrics_port,
    )
    return 0


def _parse_tenant_quota(spec: str):
    """Parse ``NAME:CONCURRENCY[:DRAWS_PER_SEC[:BURST]]`` quota specs."""
    from repro.service import TenantQuota

    parts = spec.split(":")
    if len(parts) < 2 or len(parts) > 4 or not parts[0]:
        raise SystemExit(
            f"--tenant must be NAME:CONCURRENCY[:DRAWS_PER_SEC[:BURST]], "
            f"got {spec!r}"
        )
    try:
        concurrent = int(parts[1])
        per_second = float(parts[2]) if len(parts) > 2 else None
        burst = float(parts[3]) if len(parts) > 3 else None
    except ValueError as exc:
        raise SystemExit(f"bad --tenant quota {spec!r}: {exc}") from None
    if concurrent <= 0:
        raise SystemExit(f"--tenant concurrency must be positive, got {spec!r}")
    return parts[0], TenantQuota(
        max_concurrent=concurrent, draws_per_second=per_second, burst=burst
    )


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.service import AdmissionController
    from repro.service.server import QueryService, serve_service

    host, port = _parse_listen(args.listen)
    for flag in ("default_deadline", "max_deadline", "drain_timeout", "max_wait"):
        value = getattr(args, flag)
        if value is not None and value <= 0:
            raise SystemExit(
                f"--{flag.replace('_', '-')} must be positive seconds, got {value}"
            )
    if args.max_concurrent <= 0 or args.max_queue_depth < 0:
        raise SystemExit(
            "--max-concurrent must be positive and --max-queue-depth >= 0"
        )
    if args.cache_size < 0:
        raise SystemExit(f"--cache-size must be >= 0, got {args.cache_size}")
    if args.cache_ttl is not None and args.cache_ttl <= 0:
        raise SystemExit(
            f"--cache-ttl must be positive seconds, got {args.cache_ttl}"
        )
    quotas = dict(_parse_tenant_quota(spec) for spec in args.tenant or ())
    admission = AdmissionController(
        max_concurrent=args.max_concurrent,
        max_queue_depth=args.max_queue_depth,
        max_wait=args.max_wait,
        quotas=quotas,
    )
    supervisor = None
    if args.supervise:
        from repro.service.supervisor import Supervisor

        supervisor = Supervisor(
            workers=args.supervise,
            max_inflight=args.max_inflight,
            drain_timeout=args.drain_timeout,
        )
        supervisor.start()
    try:
        worker_addresses = list(args.worker or ())
        if supervisor is not None:
            worker_addresses.extend(supervisor.addresses)
        service = QueryService(
            host,
            port,
            admission=admission,
            worker_addresses=tuple(worker_addresses),
            workers=args.workers,
            lease_timeout=args.lease_timeout,
            compress=False if args.no_compress else None,
            default_deadline=args.default_deadline,
            max_deadline=args.max_deadline,
            drain_timeout=args.drain_timeout,
            name=args.name,
            cache_size=args.cache_size,
            cache_ttl=args.cache_ttl,
        )
        return serve_service(service)
    finally:
        if supervisor is not None:
            supervisor.close()


def _cmd_status(args: argparse.Namespace) -> int:
    if args.service:
        import urllib.error
        import urllib.request

        host, port = _parse_listen(args.service)
        url = f"http://{host}:{port}/status"
        with urllib.request.urlopen(url, timeout=args.timeout) as response:
            status = json.loads(response.read().decode("utf-8"))
        # Fold the server's /metrics snapshot in (best-effort: older
        # servers without the endpoint still answer /status fine).
        try:
            metrics_url = f"http://{host}:{port}/metrics"
            with urllib.request.urlopen(
                metrics_url, timeout=args.timeout
            ) as response:
                exposition = response.read().decode("utf-8")
        except (urllib.error.URLError, OSError, ValueError):
            exposition = None
        if exposition:
            from repro.obs.metrics import parse_prometheus_text

            try:
                parsed = parse_prometheus_text(exposition)
            except ValueError:
                parsed = {}
            status["metrics"] = {
                name: [
                    [dict(labels), value] for labels, value in sorted(
                        samples, key=lambda item: sorted(item[0].items())
                    )
                ]
                for name, samples in sorted(parsed.items())
            }
        print(json.dumps(status, indent=2, sort_keys=True))
        return 0
    from repro.diagnostics import cache_report

    print(cache_report(None).format())
    return 0


def _cmd_top(args: argparse.Namespace) -> int:
    from repro.obs.top import http_fetcher, run_top

    host, port = _parse_listen(args.service)
    metrics = None
    if args.metrics:
        mhost, mport = _parse_listen(args.metrics)
        metrics = f"{mhost}:{mport}"
    if args.interval <= 0:
        raise SystemExit(f"--interval must be positive, got {args.interval}")
    iterations = 1 if args.once else args.iterations
    if iterations is not None and iterations <= 0:
        raise SystemExit(f"--iterations must be positive, got {iterations}")
    fetch = http_fetcher(f"{host}:{port}", metrics=metrics, timeout=args.timeout)
    try:
        return run_top(
            fetch,
            interval=args.interval,
            iterations=iterations,
            clear=not args.no_clear and not args.once,
        )
    except KeyboardInterrupt:
        return 0


def _add_distribution(parser: argparse.ArgumentParser) -> None:
    """Campaign-sharding options shared by the sampling subcommands.

    Determinism note: with a fixed ``--seed``, every configuration of
    these flags — serial, local pool, remote workers, and any mid-run
    worker deaths — produces byte-identical estimates (draws are
    indexed substreams of the campaign seed; see
    :mod:`repro.distributed`).
    """
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="shard draws across N persistent local worker processes",
    )
    parser.add_argument(
        "--worker",
        action="append",
        metavar="HOST:PORT",
        help="add a remote worker (started with 'ocqa worker --listen'); "
        "repeatable",
    )
    parser.add_argument(
        "--no-compress",
        action="store_true",
        help="do not negotiate outcome-stream compression/interning with "
        "remote workers (the frames then stay byte-compatible with "
        "pre-compression workers; REPRO_COMPRESS=0 sets the same default)",
    )
    parser.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds a worker may hold a shard lease before it is "
        "re-leased elsewhere; also bounds per-frame socket waits "
        "(default: 60)",
    )
    parser.add_argument(
        "--context-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="seconds to wait for a worker to load a shipped campaign "
        "context (cold caches on slow links may need more; default: "
        "scales with the lease timeout)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget for the whole estimation; on expiry the "
        "campaign returns a best-effort estimate with widened "
        "(epsilon, delta) accounting instead of running on",
    )


def _validate_distribution(args: argparse.Namespace) -> None:
    """Reject nonsensical timing flags before they become a hang.

    A non-positive timeout or deadline would disable the very waits it
    is supposed to bound, and a deadline shorter than an *explicit*
    lease timeout means a lost worker could not be detected before the
    budget is gone.  When only ``--deadline`` is given, the lease
    timeout is clamped down to it instead (socket waits then respect
    the budget automatically).
    """
    for flag in ("lease_timeout", "context_timeout", "deadline"):
        value = getattr(args, flag, None)
        if value is not None and value <= 0:
            raise SystemExit(
                f"--{flag.replace('_', '-')} must be positive seconds, "
                f"got {value}"
            )
    deadline = getattr(args, "deadline", None)
    lease = getattr(args, "lease_timeout", None)
    if deadline is not None:
        if lease is not None and deadline < lease:
            raise SystemExit(
                f"--deadline ({deadline}s) is shorter than --lease-timeout "
                f"({lease}s): a worker holding a lease could never be "
                "re-leased before the budget expires; lower --lease-timeout "
                "to at most the deadline"
            )
        if lease is None:
            args.lease_timeout = deadline


def _deadline_from(args: argparse.Namespace):
    """The :class:`repro.service.deadline.Deadline` implied by --deadline."""
    if getattr(args, "deadline", None) is None:
        return None
    from repro.service.deadline import Deadline

    return Deadline.after(args.deadline)


def _build_coordinator(args: argparse.Namespace):
    """The coordinator implied by the CLI's distribution flags.

    Built here (not inside the samplers) so ``--no-compress`` threads
    through :meth:`Coordinator.from_options`'s ``compress`` parameter
    instead of mutating process-global state.  Returns ``None`` for the
    serial path; the caller owns (and must close) a returned
    coordinator.
    """
    from repro.distributed import Coordinator

    _validate_distribution(args)
    kwargs = {}
    if args.lease_timeout is not None:
        kwargs["lease_timeout"] = args.lease_timeout
    return Coordinator.from_options(
        processes=getattr(args, "processes", None),
        workers=args.workers,
        worker_addresses=args.worker or (),
        compress=False if args.no_compress else None,
        context_timeout=args.context_timeout,
        **kwargs,
    )


def build_parser() -> argparse.ArgumentParser:
    """The ``ocqa`` argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="ocqa",
        description="Operational consistent query answering (PODS 2018 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("violations", help="list constraint violations")
    _add_common(p)
    p.set_defaults(fn=_cmd_violations)

    p = sub.add_parser("diagnose", help="summarise the inconsistency of a database")
    _add_common(p)
    p.set_defaults(fn=_cmd_diagnose)

    p = sub.add_parser("repairs", help="exact operational repair distribution")
    _add_common(p)
    p.set_defaults(fn=_cmd_repairs)

    p = sub.add_parser("oca", help="exact operational consistent answers")
    _add_common(p)
    p.add_argument("--query", required=True, help='e.g. "Q(x) :- R(x, y)"')
    p.set_defaults(fn=_cmd_oca)

    p = sub.add_parser("sample", help="additive-error approximate answers")
    _add_common(p)
    p.add_argument("--query", required=True)
    p.add_argument("--epsilon", type=float, default=0.1)
    p.add_argument("--delta", type=float, default=0.1)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--allow-failing",
        action="store_true",
        help="discard failing walks instead of erroring (heuristic mode)",
    )
    p.add_argument(
        "--adaptive",
        action="store_true",
        help="empirical-Bernstein adaptive stopping (never more draws "
        "than the Hoeffding count)",
    )
    _add_distribution(p)
    p.set_defaults(fn=_cmd_sample)

    p = sub.add_parser("chain", help="render the repairing Markov chain")
    _add_common(p)
    p.add_argument("--format", choices=["ascii", "dot"], default="ascii")
    p.set_defaults(fn=_cmd_chain)

    p = sub.add_parser("abc", help="classical ABC repairs and certain answers")
    _add_common(p)
    p.add_argument("--query", help="optionally compute certain answers")
    p.set_defaults(fn=_cmd_abc)

    p = sub.add_parser(
        "sql-sample",
        help="Section 5 scheme: sample repairs inside a SQL backend "
        "(TGD-free constraints)",
    )
    _add_common(p)
    p.add_argument("--query", required=True)
    p.add_argument("--epsilon", type=float, default=0.1)
    p.add_argument("--delta", type=float, default=0.1)
    p.add_argument("--runs", type=int, default=None, help="override the Hoeffding count")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--backend",
        choices=["sqlite", "postgres", "memory"],
        default=None,
        help="SQL backend (default: $REPRO_SQL_BACKEND, else sqlite)",
    )
    p.add_argument(
        "--adaptive",
        action="store_true",
        help="empirical-Bernstein adaptive stopping",
    )
    p.add_argument(
        "--checkpoint",
        default=None,
        help="campaign checkpoint file (resume warm chains across runs)",
    )
    p.add_argument(
        "--processes",
        type=int,
        default=None,
        help="legacy alias for --workers (a persistent local pool)",
    )
    _add_distribution(p)
    p.set_defaults(fn=_cmd_sql_sample)

    p = sub.add_parser(
        "worker",
        help="run a sampling worker serving shard requests over TCP; one "
        "worker process serves many coordinators/campaigns concurrently "
        "(see the README's distributed deployment how-to)",
    )
    p.add_argument(
        "--listen",
        required=True,
        metavar="HOST:PORT",
        help="bind address (port 0 picks a free port, printed on start)",
    )
    p.add_argument("--name", default=None, help="worker name for logs/leases")
    p.add_argument(
        "--context-limit",
        type=int,
        default=8,
        metavar="N",
        help="warm campaign contexts kept resident (LRU-evicted beyond N)",
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=0,
        metavar="N",
        help="shards a single connection may have executing at once before "
        "the worker answers with a retriable busy error (0: unbounded)",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT, seconds to wait for in-flight shards to "
        "finish before exiting anyway",
    )
    p.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help="also serve Prometheus metrics on this sidecar port "
        "(0 picks a free port, printed on start)",
    )
    p.set_defaults(fn=_cmd_worker)

    p = sub.add_parser(
        "serve",
        help="run the persistent multi-tenant query service (HTTP/JSON "
        "front over the sharded sampling fleet; see the README's "
        "'Running as a service' section)",
    )
    p.add_argument(
        "--listen",
        default="127.0.0.1:8080",
        metavar="HOST:PORT",
        help="HTTP bind address (port 0 picks a free port, printed on start)",
    )
    p.add_argument("--name", default=None, help="service name for logs")
    p.add_argument(
        "--worker",
        action="append",
        metavar="HOST:PORT",
        help="add an existing remote worker; repeatable",
    )
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        help="also shard across N in-process pool workers",
    )
    p.add_argument(
        "--supervise",
        type=int,
        default=0,
        metavar="N",
        help="spawn and supervise N local worker subprocesses (health "
        "probes, bounded restarts, graceful drain on shutdown)",
    )
    p.add_argument(
        "--max-concurrent",
        type=int,
        default=8,
        help="queries executing at once before new arrivals queue",
    )
    p.add_argument(
        "--max-queue-depth",
        type=int,
        default=16,
        help="queued queries before arrivals are shed with a 429",
    )
    p.add_argument(
        "--max-wait",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="longest a query may queue before it is shed",
    )
    p.add_argument(
        "--tenant",
        action="append",
        metavar="NAME:CONC[:DRAWS_PER_SEC[:BURST]]",
        help="per-tenant quota: max concurrent queries and an optional "
        "draw-rate token bucket; repeatable",
    )
    p.add_argument(
        "--default-deadline",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="per-query deadline when the request does not set one",
    )
    p.add_argument(
        "--max-deadline",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="cap on client-requested deadlines",
    )
    p.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT, seconds to wait for in-flight queries "
        "(and supervised workers) to finish before exiting anyway",
    )
    p.add_argument(
        "--max-inflight",
        type=int,
        default=0,
        metavar="N",
        help="per-connection in-flight shard bound for supervised workers "
        "(0: unbounded)",
    )
    p.add_argument(
        "--lease-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="shard lease timeout for the service's coordinators",
    )
    p.add_argument(
        "--no-compress",
        action="store_true",
        help="do not negotiate outcome-stream compression with workers",
    )
    p.add_argument(
        "--cache-size",
        type=int,
        default=256,
        metavar="N",
        help="result-cache capacity in entries (LRU; 0 disables the cache)",
    )
    p.add_argument(
        "--cache-ttl",
        type=float,
        default=None,
        metavar="SECONDS",
        help="expire cached results after this many seconds (default: never)",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "status",
        help="overload/cache status: of a running service (--service) or "
        "of this process's diagnostics registry",
    )
    p.add_argument(
        "--service",
        default=None,
        metavar="HOST:PORT",
        help="query a running 'ocqa serve' instance's /status endpoint",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=5.0,
        metavar="SECONDS",
        help="HTTP timeout for --service",
    )
    p.set_defaults(fn=_cmd_status)

    p = sub.add_parser(
        "top",
        help="refreshing terminal view over a running service's /metrics "
        "and /status: queue depth, per-tenant draw throughput, lease "
        "ages, cache hit rates, query latency quantiles",
    )
    p.add_argument(
        "--service",
        required=True,
        metavar="HOST:PORT",
        help="a running 'ocqa serve' instance",
    )
    p.add_argument(
        "--metrics",
        default=None,
        metavar="HOST:PORT",
        help="scrape /metrics from a different endpoint (e.g. a worker's "
        "--metrics-port sidecar); defaults to --service",
    )
    p.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="refresh interval",
    )
    p.add_argument(
        "--iterations",
        type=int,
        default=None,
        metavar="N",
        help="exit after N refreshes (default: run until interrupted)",
    )
    p.add_argument(
        "--once",
        action="store_true",
        help="render a single snapshot and exit (implies --no-clear)",
    )
    p.add_argument(
        "--no-clear",
        action="store_true",
        help="append refreshes instead of clearing the screen",
    )
    p.add_argument(
        "--timeout",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="HTTP timeout per scrape",
    )
    p.set_defaults(fn=_cmd_top)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``ocqa`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
