"""Equally likely repairs (Section 6, "Equally Likely Repairs").

The paper points at Greco & Molinaro's idea of measuring certainty by
the *proportion of repairs* containing a tuple — every repair (not every
repairing sequence) counts once.  This module flattens an operational
repair distribution to the uniform distribution over its support and
answers queries under it, so the two semantics can be compared on any
workload.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable, Optional, Tuple

from repro.core.chain import ChainGenerator
from repro.core.oca import AnyQuery, OCAResult, oca_from_distribution
from repro.core.repairs import RepairDistribution, repair_distribution
from repro.db.facts import Database
from repro.db.terms import Term


def flatten_to_uniform(distribution: RepairDistribution) -> RepairDistribution:
    """The uniform distribution over a distribution's support.

    The failure mass is discarded: this semantics only looks at which
    repairs exist, not how likely the chain is to reach them.
    """
    support = sorted(distribution.support, key=repr)
    if not support:
        return RepairDistribution({})
    share = Fraction(1, len(support))
    return RepairDistribution({repair: share for repair in support})


def equal_repair_distribution(
    database: Database,
    generator: ChainGenerator,
    max_states: Optional[int] = 200_000,
) -> RepairDistribution:
    """Each operational repair of ``D`` w.r.t. ``M_Sigma``, equally likely."""
    return flatten_to_uniform(repair_distribution(database, generator, max_states))


def equal_repair_oca(
    database: Database,
    generator: ChainGenerator,
    query: AnyQuery,
    candidates: Optional[Iterable[Tuple[Term, ...]]] = None,
    max_states: Optional[int] = 200_000,
) -> OCAResult:
    """OCA under the equally-likely-repairs semantics.

    ``CP(t)`` becomes the fraction of operational repairs in which ``t``
    is an answer — the measure of certainty of [Greco & Molinaro 2012]
    applied to the operational repair space.
    """
    flat = equal_repair_distribution(database, generator, max_states)
    return oca_from_distribution(flat, query, candidates)
