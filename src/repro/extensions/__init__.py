"""Extensions beyond the paper's core: the Section 6 research agenda.

Implemented items:

- :mod:`repro.extensions.aggregates` — scalar aggregates (COUNT/SUM/
  MIN/MAX/AVG) with the classical range semantics of Arenas et al. as
  the baseline and full operational value distributions on top
  ("More Expressive Languages" in Section 6);
- :mod:`repro.extensions.nulls` — marked nulls as TGD witnesses
  ("Null Values" in Section 6): one chase-style insertion per violation
  instead of enumerating all base-constant witnesses;
- :mod:`repro.extensions.equal_repairs` — the Greco-Molinaro style
  semantics where every *repair* (not every repairing sequence) is
  equally likely ("Equally Likely Repairs" in Section 6);
- :mod:`repro.extensions.preferences` — preference-driven generators
  that restrict each step to the most-preferred justified operations
  ("Preferences" in Section 6).

Repair localization ("Optimizations") lives in
:mod:`repro.core.localization` since it accelerates the core semantics
rather than changing it.
"""

from repro.extensions.aggregates import (
    AggregateDistribution,
    AggregateOp,
    AggregateQuery,
    aggregate_distribution,
    aggregate_range,
    approximate_aggregate,
)
from repro.extensions.nulls import Null, NullWitnessEngine, NullWitnessGenerator
from repro.extensions.equal_repairs import equal_repair_distribution, equal_repair_oca
from repro.extensions.preferences import (
    OperationPreference,
    PreferredOperationsGenerator,
    prefer_deletions_over_insertions,
    prefer_fewer_changes,
)

__all__ = [
    "AggregateDistribution",
    "AggregateOp",
    "AggregateQuery",
    "aggregate_distribution",
    "aggregate_range",
    "approximate_aggregate",
    "Null",
    "NullWitnessEngine",
    "NullWitnessGenerator",
    "equal_repair_distribution",
    "equal_repair_oca",
    "OperationPreference",
    "PreferredOperationsGenerator",
    "prefer_deletions_over_insertions",
    "prefer_fewer_changes",
]
