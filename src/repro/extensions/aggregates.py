"""Aggregate queries over inconsistent databases (Section 6,
"More Expressive Languages").

The paper's future-work list asks for languages "with aggregates [2]".
Reference [2] (Arenas et al., *Scalar aggregation in inconsistent
databases*) answers an aggregate query with a *range*: the greatest
lower and least upper bound of its value across all repairs.  The
operational framework refines that all-or-nothing range into a full
probability distribution over aggregate values — this module implements
both, so they can be compared:

- :func:`aggregate_range` — the classical range semantics over ABC
  repairs (the baseline);
- :func:`aggregate_distribution` — the exact distribution of the
  aggregate value over operational repairs, with expectations;
- :func:`approximate_aggregate` — the Theorem 9-style sampled estimate
  of the expected aggregate value (the estimator averages a bounded
  aggregate over sampled repairs, inheriting Hoeffding's additive
  guarantee scaled by the value range).

Aggregates are evaluated over the *set* of answer tuples of a
conjunctive query (set semantics, consistent with the rest of the
library), optionally grouped by a prefix of the head.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from enum import Enum
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.abc_repairs import abc_repairs
from repro.analysis.hoeffding import sample_size
from repro.constraints.base import ConstraintSet
from repro.core.chain import ChainGenerator
from repro.core.repairs import RepairDistribution, repair_distribution
from repro.core.sampling import sample_walk
from repro.db.facts import Database
from repro.db.terms import Term
from repro.queries.cq import ConjunctiveQuery

#: Group keys are tuples of head-prefix values; the global group is ().
GroupKey = Tuple[Term, ...]
Number = Union[int, float, Fraction]


class AggregateOp(str, Enum):
    """The scalar aggregate functions of [2]."""

    COUNT = "count"
    SUM = "sum"
    MIN = "min"
    MAX = "max"
    AVG = "avg"


@dataclass(frozen=True)
class AggregateQuery:
    """``op(value position) over cq grouped by a head prefix``.

    ``group_width`` leading head positions form the group key; the
    ``value_position`` (a head index) supplies the aggregated number for
    SUM/MIN/MAX/AVG.  COUNT counts distinct answer tuples per group and
    needs no value position.
    """

    op: AggregateOp
    cq: ConjunctiveQuery
    group_width: int = 0
    value_position: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0 <= self.group_width <= self.cq.arity:
            raise ValueError(
                f"group width {self.group_width} out of range for head arity "
                f"{self.cq.arity}"
            )
        if self.op is not AggregateOp.COUNT:
            if self.value_position is None:
                raise ValueError(f"{self.op.value} needs a value_position")
            if not 0 <= self.value_position < self.cq.arity:
                raise ValueError("value_position out of range")

    def evaluate(self, database: Database) -> Dict[GroupKey, Number]:
        """Per-group aggregate values on one (consistent) database.

        Groups with no answer rows are absent from the result; COUNT of
        an absent group is 0 only at the global level (``group_width ==
        0`` always yields an entry).
        """
        rows = self.cq.answers(database)
        groups: Dict[GroupKey, List[Tuple[Term, ...]]] = {}
        for row in rows:
            groups.setdefault(tuple(row[: self.group_width]), []).append(row)
        out: Dict[GroupKey, Number] = {}
        for key, members in groups.items():
            out[key] = self._fold(members)
        if self.group_width == 0 and not out and self.op is AggregateOp.COUNT:
            out[()] = 0
        return out

    def _fold(self, rows: List[Tuple[Term, ...]]) -> Number:
        if self.op is AggregateOp.COUNT:
            return len(rows)
        assert self.value_position is not None
        values = [_as_number(row[self.value_position]) for row in rows]
        if self.op is AggregateOp.SUM:
            return sum(values)
        if self.op is AggregateOp.MIN:
            return min(values)
        if self.op is AggregateOp.MAX:
            return max(values)
        total = sum(values)
        return Fraction(total, len(values)) if isinstance(total, int) else total / len(values)


def _as_number(value: Term) -> Number:
    if isinstance(value, bool) or not isinstance(value, (int, float, Fraction)):
        try:
            return int(value)  # type: ignore[arg-type]
        except (TypeError, ValueError):
            raise ValueError(
                f"aggregated value {value!r} is not numeric; store numbers "
                "or numeric strings in the aggregated position"
            ) from None
    return value


# ----------------------------------------------------------------------
# Classical baseline: range semantics over ABC repairs
# ----------------------------------------------------------------------
def aggregate_range(
    database: Database,
    constraints: ConstraintSet,
    query: AggregateQuery,
    max_base: int = 16,
    repairs: str = "abc",
) -> Dict[GroupKey, Tuple[Number, Number]]:
    """[glb, lub] of the aggregate across all classical repairs (per group).

    *repairs* selects the repair notion: ``"abc"`` (symmetric-difference
    minimal, exponential in the base when TGDs are present) or
    ``"subset"`` (deletion-only maximal consistent subsets — the notion
    of Chomicki & Marcinkowski, feasible for any constraint class).
    Groups missing from some repair contribute nothing to that repair;
    a group absent from *every* repair does not appear at all.
    """
    from repro.abc_repairs import subset_repairs

    if repairs == "abc":
        repair_set = abc_repairs(database, constraints, max_base=max_base)
    elif repairs == "subset":
        repair_set = subset_repairs(database, constraints)
    else:
        raise ValueError(f"unknown repair notion {repairs!r}")
    ranges: Dict[GroupKey, Tuple[Number, Number]] = {}
    for repair in repair_set:
        for key, value in query.evaluate(repair).items():
            if key in ranges:
                low, high = ranges[key]
                ranges[key] = (min(low, value), max(high, value))
            else:
                ranges[key] = (value, value)
    return ranges


# ----------------------------------------------------------------------
# Operational semantics: a full distribution per group
# ----------------------------------------------------------------------
@dataclass
class AggregateDistribution:
    """Per-group distribution of aggregate values over operational repairs.

    ``support[key][value]`` is the probability (conditioned on a repair
    being produced) that the group exists and the aggregate equals
    ``value``; ``missing[key]`` is the probability that the group has no
    rows at all.
    """

    query: AggregateQuery
    support: Dict[GroupKey, Dict[Number, Fraction]]
    missing: Dict[GroupKey, Fraction]

    def groups(self) -> Tuple[GroupKey, ...]:
        """All group keys with positive existence probability."""
        return tuple(sorted(self.support, key=repr))

    def probability(self, key: GroupKey, value: Number) -> Fraction:
        """P(aggregate of *key* equals *value*)."""
        return self.support.get(tuple(key), {}).get(value, Fraction(0))

    def expectation(self, key: GroupKey = ()) -> Optional[Fraction]:
        """Expected aggregate value of *key*, conditioned on existence.

        ``None`` when the group never exists.
        """
        distribution = self.support.get(tuple(key))
        if not distribution:
            return None
        mass = sum(distribution.values(), Fraction(0))
        weighted = sum(
            (Fraction(value) * p for value, p in distribution.items()), Fraction(0)
        )
        return weighted / mass

    def bounds(self, key: GroupKey = ()) -> Optional[Tuple[Number, Number]]:
        """The operational counterpart of the classical [glb, lub] range."""
        distribution = self.support.get(tuple(key))
        if not distribution:
            return None
        return min(distribution), max(distribution)


def aggregate_distribution(
    database: Database,
    generator: ChainGenerator,
    query: AggregateQuery,
    max_states: Optional[int] = 200_000,
) -> AggregateDistribution:
    """Exact per-group aggregate-value distribution over ``[[D]]^{M}``."""
    repairs = repair_distribution(database, generator, max_states)
    denominator = repairs.success_probability
    support: Dict[GroupKey, Dict[Number, Fraction]] = {}
    present_mass: Dict[GroupKey, Fraction] = {}
    for repair, probability in repairs.items():
        for key, value in query.evaluate(repair).items():
            bucket = support.setdefault(key, {})
            bucket[value] = bucket.get(value, Fraction(0)) + probability
            present_mass[key] = present_mass.get(key, Fraction(0)) + probability
    if denominator > 0:
        for bucket in support.values():
            for value in bucket:
                bucket[value] /= denominator
    missing = {
        key: Fraction(1) - (mass / denominator if denominator else Fraction(0))
        for key, mass in present_mass.items()
    }
    return AggregateDistribution(query=query, support=support, missing=missing)


def approximate_aggregate(
    database: Database,
    generator: ChainGenerator,
    query: AggregateQuery,
    key: GroupKey = (),
    epsilon: float = 0.1,
    delta: float = 0.1,
    rng: Optional[random.Random] = None,
    value_bound: float = 1.0,
) -> Optional[float]:
    """Sampled estimate of the expected aggregate value of *key*.

    Walks ``n = ln(2/delta) / (2 eps^2)`` repairs (Theorem 9's recipe)
    and averages the group's aggregate over walks where it exists.
    Hoeffding's bound applies to values in ``[0, value_bound]``, giving
    ``|estimate - E| <= epsilon * value_bound`` with probability
    ``1 - delta``; pass the natural bound of your aggregate (e.g. the
    group's maximal possible COUNT).  Returns ``None`` if the group
    never appeared.
    """
    rng = rng or random.Random()
    chain = generator.chain(database)
    key = tuple(key)
    total = 0.0
    appearances = 0
    for _ in range(sample_size(epsilon, delta)):
        walk = sample_walk(chain, rng)
        if not walk.successful:
            continue
        values = query.evaluate(walk.result)
        if key in values:
            appearances += 1
            total += float(values[key])
    if not appearances:
        return None
    return total / appearances
