"""Preference-driven generators (Section 6, "Preferences").

A milder alternative to numeric probabilities: a *preference* partially
orders the justified operations, and each step draws uniformly from the
maximally preferred valid extensions — in the spirit of prioritized
repairing (Staworko, Chomicki & Marcinkowski).

A preference is any callable scoring ``(state, operation) -> key``;
lower keys are more preferred (like ``sorted``).  Two stock preferences
cover the common cases: prefer deletions over insertions, and prefer
operations touching fewer facts.
"""

from __future__ import annotations

from typing import Callable, Mapping, Sequence, Tuple, Union

from repro.constraints.base import Constraint, ConstraintSet
from repro.core.chain import ChainGenerator, Weight
from repro.core.operations import Operation
from repro.core.state import RepairState

#: Scores operations; smaller means more preferred.
OperationPreference = Callable[[RepairState, Operation], object]


def prefer_deletions_over_insertions(state: RepairState, op: Operation) -> object:
    """Trust removal over invention: all deletions beat all insertions."""
    return (0 if op.is_delete else 1,)


def prefer_fewer_changes(state: RepairState, op: Operation) -> object:
    """Minimal-change flavour: operations touching fewer facts win."""
    return (len(op.facts),)


class PreferredOperationsGenerator(ChainGenerator):
    """Uniform over the *most preferred* valid extensions of each state.

    Ties under the preference stay equally likely; strictly dominated
    operations get probability zero (they are pruned from the chain).
    Composes preferences lexicographically when given several.
    """

    def __init__(
        self,
        constraints: Union[ConstraintSet, Sequence[Constraint]],
        preferences: Sequence[OperationPreference],
    ) -> None:
        super().__init__(constraints)
        if not preferences:
            raise ValueError("need at least one preference")
        self.preferences = tuple(preferences)

    def _score(self, state: RepairState, op: Operation) -> Tuple:
        return tuple(pref(state, op) for pref in self.preferences)

    def weights(
        self, state: RepairState, extensions: Tuple[Operation, ...]
    ) -> Mapping[Operation, Weight]:
        scored = {op: self._score(state, op) for op in extensions}
        best = min(scored.values())
        return {op: 1 for op, score in scored.items() if score == best}

    @property
    def supports_only_deletions(self) -> bool:
        """True when deletion-preference is first and always applicable.

        Conservative: only claimed when the leading preference is the
        stock deletions-first one, in which case an insertion is chosen
        only if no deletion is available — which cannot happen for TGD,
        EGD, or DC violations (some body atom is always deletable).
        """
        return self.preferences[0] is prefer_deletions_over_insertions
