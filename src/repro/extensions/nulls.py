"""Marked nulls as TGD witnesses (Section 6, "Null Values").

The core engine instantiates a violated TGD's existential variables with
every base constant — faithful to Definition 1 but exponentially
branching.  The classical alternative (and the paper's suggested
extension) is the chase convention: instantiate existentials with *fresh
marked nulls*, giving exactly one canonical insertion per violation.

:class:`NullWitnessEngine` swaps the insertion candidates accordingly;
:class:`NullWitnessGenerator` wraps any generator so its chains use that
engine.  Nulls are ordinary constants to the rest of the stack (naive
evaluation), rendered as ``_:n0, _:n1, ...``.

Nulls are numbered deterministically per state (by the violation's
canonical order), so the chain remains a well-defined tree with value-
semantics states.  One consequence: repairs that differ only in null
*names* (isomorphic instances reached through different operation
orders) count as distinct databases in the repair distribution, exactly
as marked nulls behave in the chase literature.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Mapping, Set, Tuple

from repro.core.chain import ChainGenerator, Weight
from repro.core.engine import RepairEngine
from repro.core.justified import justified_deletions_for
from repro.core.operations import Operation
from repro.core.state import RepairState
from repro.constraints.tgd import TGD
from repro.db.facts import Database
from repro.db.terms import Term


@dataclass(frozen=True, order=True)
class Null:
    """A marked (labelled) null ``_:n<index>``.

    Value semantics: two nulls with the same index are the same null.
    Nulls compare/hash like any other constant, so the rest of the
    library (facts, homomorphisms, SQL loading via ``str``) treats them
    uniformly.
    """

    index: int

    def __str__(self) -> str:
        return f"_:n{self.index}"

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Null({self.index})"


def _next_null_index(database: Database) -> int:
    """Smallest null index not used anywhere in *database*."""
    highest = -1
    for value in database.dom:
        if isinstance(value, Null):
            highest = max(highest, value.index)
    return highest + 1


class NullWitnessEngine(RepairEngine):
    """A repairing engine whose TGD insertions use fresh nulls.

    Deletion candidates are unchanged (Definition 3); each TGD violation
    contributes exactly one insertion: the head image under the
    extension mapping existential variables to fresh, deterministically
    numbered nulls.
    """

    def _candidate_operations(self, state: RepairState) -> FrozenSet[Operation]:
        ops: Set[Operation] = set()
        next_index = _next_null_index(state.db)
        for violation in sorted(state.current_violations, key=str):
            ops.update(justified_deletions_for(violation))
            constraint = violation.constraint
            if not isinstance(constraint, TGD):
                continue
            existentials = sorted(
                constraint.existential_variables, key=lambda v: v.name
            )
            extension = {
                var: value
                for var, value in violation.h.items()
                if var in constraint.frontier_variables
            }
            for offset, var in enumerate(existentials):
                extension[var] = Null(next_index + offset)
            facts = frozenset(
                atom.substitute(extension).to_fact() for atom in constraint.head
            ) - state.db.facts
            if facts:
                ops.add(Operation.insert(facts))
            next_index += len(existentials)
        return frozenset(ops)


class NullWitnessGenerator(ChainGenerator):
    """Wrap a generator so its chains use :class:`NullWitnessEngine`.

    The wrapped generator's :meth:`weights` is consulted unchanged; only
    the candidate space differs.
    """

    def __init__(self, inner: ChainGenerator) -> None:
        super().__init__(inner.constraints)
        self.inner = inner

    def make_engine(self, database: Database) -> RepairEngine:
        return NullWitnessEngine(database, self.constraints)

    def weights(
        self, state: RepairState, extensions: Tuple[Operation, ...]
    ) -> Mapping[Operation, Weight]:
        return self.inner.weights(state, extensions)

    @property
    def supports_only_deletions(self) -> bool:
        return self.inner.supports_only_deletions
