"""Distributed sampling service: coordinator/worker campaign sharding.

Scale a :class:`repro.campaign.SamplingCampaign` beyond one process —
and one machine — without giving up determinism:

- :class:`Coordinator` cuts a campaign's draw budget into leased shards
  and dispatches them over :class:`WorkerTransport` implementations;
- :class:`~repro.distributed.pool.LocalPoolTransport` runs persistent
  local worker processes (the fork-fan-out replacement);
- :class:`~repro.distributed.transport.SocketTransport` reaches
  ``ocqa worker --listen host:port`` processes on other machines over a
  small length-prefixed JSON/pickle protocol with heartbeats and lease
  timeouts;
- every draw is a pure function of ``(campaign seed, group key, draw
  index)``, so any shard can be computed anywhere — or recomputed after
  a worker death — and the merged estimates are byte-identical to a
  single-process run.

See the README's "Distributed sampling service" section for deployment
and protocol reference.
"""

from repro.distributed.coordinator import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_SHARD_SIZE,
    Coordinator,
)
from repro.distributed.lease import (
    DistributedSamplingError,
    LeaseTable,
    ShardLease,
)
from repro.distributed.pool import LocalPoolTransport
from repro.distributed.protocol import (
    CAPABILITIES,
    ProtocolError,
    WorkerError,
    intern_outcomes,
    restore_outcomes,
)
from repro.distributed.transport import (
    InlineTransport,
    SocketTransport,
    WorkerTransport,
    WorkerUnavailable,
)
from repro.distributed.worker import (
    ShardContext,
    ShardExecutor,
    WorkerServer,
    serve,
)

__all__ = [
    "CAPABILITIES",
    "Coordinator",
    "DistributedSamplingError",
    "intern_outcomes",
    "restore_outcomes",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_SHARD_SIZE",
    "InlineTransport",
    "LeaseTable",
    "LocalPoolTransport",
    "ProtocolError",
    "ShardContext",
    "ShardExecutor",
    "ShardLease",
    "SocketTransport",
    "WorkerError",
    "WorkerServer",
    "WorkerTransport",
    "WorkerUnavailable",
    "serve",
]
