"""Distributed sampling service: coordinator/worker campaign sharding.

Scale a :class:`repro.campaign.SamplingCampaign` beyond one process —
and one machine — without giving up determinism:

- :class:`Coordinator` cuts a campaign's draw budget into leased shards
  and dispatches them over :class:`WorkerTransport` implementations;
- :class:`~repro.distributed.pool.LocalPoolTransport` runs persistent
  local worker processes (the fork-fan-out replacement);
- :class:`~repro.distributed.transport.SocketTransport` reaches
  ``ocqa worker --listen host:port`` processes on other machines over a
  small length-prefixed JSON/pickle protocol with heartbeats and lease
  timeouts;
- every draw is a pure function of ``(campaign seed, group key, draw
  index)``, so any shard can be computed anywhere — or recomputed after
  a worker death — and the merged estimates are byte-identical to a
  single-process run;
- :mod:`repro.distributed.chaos` injects deterministic faults (frame
  corruption, connection flaps, heartbeat stalls, failpoint crashes)
  from a seeded :class:`FaultPlan`, and the self-healing machinery it
  exercises — CRC frame integrity, reconnect with backoff
  (:class:`ReconnectPolicy`), checkpoint quarantine — keeps those
  estimates byte-identical under a hostile network;
- deadlines (:class:`repro.service.deadline.Deadline`) propagate from
  the caller through the coordinator into the wire protocol's
  ``deadline`` capability, so workers abandon shards whose budget has
  expired and campaigns return honest best-effort results instead of
  running past their time budget.

See the README's "Distributed sampling service", "Running as a
service", and "Failure semantics" sections for deployment and protocol
reference.
"""

from repro.distributed.chaos import (
    ChaosProxy,
    ChaosTransport,
    FailpointError,
    FaultPlan,
    clear_failpoints,
    failpoint,
    set_failpoint,
)
from repro.distributed.coordinator import (
    DEFAULT_LEASE_TIMEOUT,
    DEFAULT_SHARD_SIZE,
    Coordinator,
    ReconnectPolicy,
)
from repro.distributed.lease import (
    DistributedSamplingError,
    LeaseTable,
    ShardLease,
)
from repro.distributed.pool import LocalPoolTransport
from repro.distributed.protocol import (
    CAPABILITIES,
    FrameIntegrityError,
    ProtocolError,
    WorkerError,
    intern_outcomes,
    restore_outcomes,
)
from repro.distributed.transport import (
    InlineTransport,
    SocketTransport,
    WorkerTransport,
    WorkerUnavailable,
)
from repro.distributed.worker import (
    ShardContext,
    ShardExecutor,
    WorkerServer,
    serve,
)

__all__ = [
    "CAPABILITIES",
    "ChaosProxy",
    "ChaosTransport",
    "Coordinator",
    "DistributedSamplingError",
    "FailpointError",
    "FaultPlan",
    "FrameIntegrityError",
    "intern_outcomes",
    "restore_outcomes",
    "DEFAULT_LEASE_TIMEOUT",
    "DEFAULT_SHARD_SIZE",
    "InlineTransport",
    "LeaseTable",
    "LocalPoolTransport",
    "ProtocolError",
    "ReconnectPolicy",
    "ShardContext",
    "ShardExecutor",
    "ShardLease",
    "SocketTransport",
    "WorkerError",
    "WorkerServer",
    "WorkerTransport",
    "WorkerUnavailable",
    "clear_failpoints",
    "failpoint",
    "serve",
    "set_failpoint",
]
