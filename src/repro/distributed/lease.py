"""Shard leases: who is computing which draw range, and for how long.

The coordinator splits a batch of global draw indices into *shards*
(contiguous ``[start, start + count)`` ranges) and hands each one out
under a :class:`ShardLease`.  The :class:`LeaseTable` is the single
source of truth for shard state:

- **pending** — not yet assigned (or released back after a failure);
- **leased** — held by a named worker until its deadline;
- **done** — outcomes recorded.

Because every draw is a pure function of ``(campaign seed, group key,
draw index)`` (see :meth:`repro.campaign.SamplingCampaign.rng_at`),
re-leasing is always safe: a shard recomputed by a different worker — or
computed twice because a slow worker raced its replacement — yields the
exact same outcomes, so the table simply keeps the first completion and
drops duplicates.

That exactness also enables **speculative re-lease** (``speculate=True``):
when the pending queue is drained but leases are still outstanding, an
idle worker checks out a *duplicate* lease on the slowest outstanding
shard instead of waiting — a single straggler (slow machine, cold cache,
GC pause) no longer gates the whole batch.  Whichever copy finishes
first wins; the loser's completion is dropped, and a speculative
failure neither requeues the shard (the original holder still has it)
nor burns the shard's retry budget.  Byte-identical determinism is
preserved by construction: both copies compute the same draws.

The table is thread-safe: the coordinator drives one thread per worker,
all checking out of and completing into the same table.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class DistributedSamplingError(RuntimeError):
    """The distributed run could not complete (e.g. a shard exhausted its
    retry budget, or every worker died with fallback disabled)."""


@dataclass
class ShardLease:
    """One contiguous draw range and its assignment history."""

    shard_id: int
    start: int
    count: int
    attempts: int = 0
    worker: Optional[str] = None
    leased_at: Optional[float] = None
    #: A duplicate lease raced against a straggler's primary lease; its
    #: failures do not requeue the shard or count toward max_attempts.
    speculative: bool = False
    #: Human-readable failure trail (worker name + error per attempt),
    #: surfaced in :class:`DistributedSamplingError` messages.
    failures: List[str] = field(default_factory=list)


class LeaseTable:
    """Thread-safe shard state for one dispatched draw range."""

    def __init__(
        self,
        start: int,
        count: int,
        shard_size: int,
        max_attempts: int = 4,
        speculate: bool = False,
    ) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if shard_size < 1:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be positive, got {max_attempts}")
        self.start = start
        self.count = count
        self.max_attempts = max_attempts
        self.speculate = speculate
        #: Completed speculative duplicates that beat their primary lease.
        self.speculation_wins = 0
        self._shards: List[ShardLease] = []
        offset = start
        shard_id = 0
        while offset < start + count:
            size = min(shard_size, start + count - offset)
            self._shards.append(ShardLease(shard_id, offset, size))
            shard_id += 1
            offset += size
        self._pending: List[int] = list(range(len(self._shards)))
        self._outcomes: Dict[int, List[Any]] = {}
        self._failed: Optional[ShardLease] = None
        #: shard_id -> worker currently holding a speculative duplicate
        #: (at most one duplicate per shard at a time).
        self._speculating: Dict[int, str] = {}
        #: Shards whose speculative duplicate already failed once: not
        #: offered again, so a fast-failing speculator cannot hammer the
        #: same shard in a tight retry loop while the primary computes.
        self._spec_failed: set = set()
        self._lock = threading.Lock()
        self._progress = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    # Worker-side operations
    # ------------------------------------------------------------------
    def checkout(self, worker: str, wait: bool = True) -> Optional[ShardLease]:
        """Lease the next pending shard to *worker*.

        Returns ``None`` once every shard is done (or a shard failed
        terminally).  With *wait*, blocks while other workers still hold
        active leases — their shard may yet be released back (worker
        death), in which case this worker picks it up.  With
        ``speculate=True``, an otherwise-idle worker instead receives a
        *duplicate* lease on the slowest outstanding shard (see the
        module docs); duplicates are bounded to one per shard, and never
        handed to the shard's own primary holder.
        """
        with self._progress:
            while True:
                if self._failed is not None or self.complete_locked():
                    return None
                if self._pending:
                    lease = self._shards[self._pending.pop(0)]
                    lease.attempts += 1
                    lease.worker = worker
                    lease.leased_at = time.monotonic()
                    return lease
                if self.speculate:
                    duplicate = self._speculate_locked(worker)
                    if duplicate is not None:
                        return duplicate
                if not wait:
                    return None
                self._progress.wait(timeout=0.5)

    def _speculate_locked(self, worker: str) -> Optional[ShardLease]:
        """A duplicate lease on the slowest outstanding shard, if any."""
        candidates = [
            shard
            for shard in self._shards
            if shard.shard_id not in self._outcomes
            and shard.worker is not None
            and shard.worker != worker
            and shard.leased_at is not None
            and shard.shard_id not in self._speculating
            and shard.shard_id not in self._spec_failed
        ]
        if not candidates:
            return None
        slowest = min(candidates, key=lambda shard: shard.leased_at)
        self._speculating[slowest.shard_id] = worker
        return ShardLease(
            shard_id=slowest.shard_id,
            start=slowest.start,
            count=slowest.count,
            attempts=slowest.attempts,
            worker=worker,
            leased_at=time.monotonic(),
            speculative=True,
        )

    def complete(self, lease: ShardLease, outcomes: List[Any]) -> bool:
        """Record a finished shard; returns ``False`` for duplicates.

        Duplicate completions (a re-leased shard whose original worker
        finished after all) are dropped — both copies are byte-identical
        by construction, so first-wins is exact, not approximate.
        """
        if len(outcomes) != lease.count:
            raise DistributedSamplingError(
                f"shard {lease.shard_id} returned {len(outcomes)} outcome(s) "
                f"for a {lease.count}-draw range — a worker is not honouring "
                "the draw-index contract"
            )
        with self._progress:
            if lease.speculative and self._speculating.get(lease.shard_id) == lease.worker:
                del self._speculating[lease.shard_id]
            if lease.shard_id in self._outcomes:
                return False
            self._outcomes[lease.shard_id] = list(outcomes)
            if lease.speculative:
                self.speculation_wins += 1
            self._progress.notify_all()
            return True

    def release(self, lease: ShardLease, error: str) -> None:
        """Return a leased shard to the pending queue after a failure.

        A shard that has burnt :attr:`max_attempts` leases marks the
        whole table failed — every ``checkout`` then returns ``None``
        and :meth:`assemble` raises with the failure trail.  A failed
        *speculative* duplicate does neither: the primary holder still
        has the shard, so the failure is only logged (on the primary's
        trail, for :meth:`failure_log` visibility).
        """
        with self._progress:
            if lease.speculative:
                if self._speculating.get(lease.shard_id) == lease.worker:
                    del self._speculating[lease.shard_id]
                self._spec_failed.add(lease.shard_id)
                primary = self._shards[lease.shard_id]
                primary.failures.append(
                    f"{lease.worker or '?'} (speculative): {error}"
                )
                self._progress.notify_all()
                return
            lease.failures.append(f"{lease.worker or '?'}: {error}")
            lease.worker = None
            lease.leased_at = None
            if lease.shard_id in self._outcomes:
                # A racing duplicate already completed it; nothing to redo.
                self._progress.notify_all()
                return
            if lease.attempts >= self.max_attempts:
                self._failed = lease
            else:
                self._pending.append(lease.shard_id)
            self._progress.notify_all()

    # ------------------------------------------------------------------
    # Coordinator-side state
    # ------------------------------------------------------------------
    def complete_locked(self) -> bool:
        return len(self._outcomes) == len(self._shards)

    def wait_progress(self, timeout: float = 0.5) -> None:
        """Block until the table changes state (a completion, release, or
        failure), or *timeout* elapses.  The coordinator's dispatch loop
        waits here instead of joining worker threads, so a speculated
        straggler's thread no longer gates the batch."""
        with self._progress:
            if not self.complete_locked() and self._failed is None:
                self._progress.wait(timeout)

    @property
    def done(self) -> bool:
        """Whether every shard has recorded outcomes."""
        with self._lock:
            return self.complete_locked()

    @property
    def failed(self) -> bool:
        """Whether a shard failed terminally (burnt its retry budget).

        Deadline-aware drivers poll with ``checkout(wait=False)`` and
        need to distinguish "nothing to lease right now" from "the table
        is dead" without blocking."""
        with self._lock:
            return self._failed is not None

    def unfinished(self) -> List[ShardLease]:
        """Shards without outcomes (for inline fallback / diagnostics)."""
        with self._lock:
            return [
                shard
                for shard in self._shards
                if shard.shard_id not in self._outcomes
            ]

    def failure_log(self) -> List[str]:
        """Every recorded lease failure, in observation order."""
        with self._lock:
            return [line for shard in self._shards for line in shard.failures]

    def assemble(self) -> List[Any]:
        """All outcomes, in global draw-index order.

        The index-ordered concatenation is what makes the distributed
        estimation loop consume *exactly* the sequence a serial run
        would, so tallies, adaptive-stopping boundaries, and checkpoints
        all agree byte for byte.
        """
        with self._lock:
            if self._failed is not None:
                raise DistributedSamplingError(
                    f"shard {self._failed.shard_id} (draws "
                    f"[{self._failed.start}, "
                    f"{self._failed.start + self._failed.count})) failed "
                    f"{self._failed.attempts} time(s): "
                    + "; ".join(self._failed.failures)
                )
            if not self.complete_locked():
                missing = [
                    s.shard_id
                    for s in self._shards
                    if s.shard_id not in self._outcomes
                ]
                raise DistributedSamplingError(
                    f"shards {missing} never completed (all workers lost?)"
                )
            ordered: List[Any] = []
            for shard in self._shards:
                ordered.extend(self._outcomes[shard.shard_id])
            return ordered
