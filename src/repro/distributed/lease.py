"""Shard leases: who is computing which draw range, and for how long.

The coordinator splits a batch of global draw indices into *shards*
(contiguous ``[start, start + count)`` ranges) and hands each one out
under a :class:`ShardLease`.  The :class:`LeaseTable` is the single
source of truth for shard state:

- **pending** — not yet assigned (or released back after a failure);
- **leased** — held by a named worker until its deadline;
- **done** — outcomes recorded.

Because every draw is a pure function of ``(campaign seed, group key,
draw index)`` (see :meth:`repro.campaign.SamplingCampaign.rng_at`),
re-leasing is always safe: a shard recomputed by a different worker — or
computed twice because a slow worker raced its replacement — yields the
exact same outcomes, so the table simply keeps the first completion and
drops duplicates.

The table is thread-safe: the coordinator drives one thread per worker,
all checking out of and completing into the same table.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional


class DistributedSamplingError(RuntimeError):
    """The distributed run could not complete (e.g. a shard exhausted its
    retry budget, or every worker died with fallback disabled)."""


@dataclass
class ShardLease:
    """One contiguous draw range and its assignment history."""

    shard_id: int
    start: int
    count: int
    attempts: int = 0
    worker: Optional[str] = None
    leased_at: Optional[float] = None
    #: Human-readable failure trail (worker name + error per attempt),
    #: surfaced in :class:`DistributedSamplingError` messages.
    failures: List[str] = field(default_factory=list)


class LeaseTable:
    """Thread-safe shard state for one dispatched draw range."""

    def __init__(
        self, start: int, count: int, shard_size: int, max_attempts: int = 4
    ) -> None:
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        if shard_size < 1:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        if max_attempts < 1:
            raise ValueError(f"max_attempts must be positive, got {max_attempts}")
        self.start = start
        self.count = count
        self.max_attempts = max_attempts
        self._shards: List[ShardLease] = []
        offset = start
        shard_id = 0
        while offset < start + count:
            size = min(shard_size, start + count - offset)
            self._shards.append(ShardLease(shard_id, offset, size))
            shard_id += 1
            offset += size
        self._pending: List[int] = list(range(len(self._shards)))
        self._outcomes: Dict[int, List[Any]] = {}
        self._failed: Optional[ShardLease] = None
        self._lock = threading.Lock()
        self._progress = threading.Condition(self._lock)

    # ------------------------------------------------------------------
    # Worker-side operations
    # ------------------------------------------------------------------
    def checkout(self, worker: str, wait: bool = True) -> Optional[ShardLease]:
        """Lease the next pending shard to *worker*.

        Returns ``None`` once every shard is done (or a shard failed
        terminally).  With *wait*, blocks while other workers still hold
        active leases — their shard may yet be released back (worker
        death), in which case this worker picks it up.
        """
        with self._progress:
            while True:
                if self._failed is not None or self.complete_locked():
                    return None
                if self._pending:
                    lease = self._shards[self._pending.pop(0)]
                    lease.attempts += 1
                    lease.worker = worker
                    lease.leased_at = time.monotonic()
                    return lease
                if not wait:
                    return None
                self._progress.wait(timeout=0.5)

    def complete(self, lease: ShardLease, outcomes: List[Any]) -> bool:
        """Record a finished shard; returns ``False`` for duplicates.

        Duplicate completions (a re-leased shard whose original worker
        finished after all) are dropped — both copies are byte-identical
        by construction, so first-wins is exact, not approximate.
        """
        if len(outcomes) != lease.count:
            raise DistributedSamplingError(
                f"shard {lease.shard_id} returned {len(outcomes)} outcome(s) "
                f"for a {lease.count}-draw range — a worker is not honouring "
                "the draw-index contract"
            )
        with self._progress:
            if lease.shard_id in self._outcomes:
                return False
            self._outcomes[lease.shard_id] = list(outcomes)
            self._progress.notify_all()
            return True

    def release(self, lease: ShardLease, error: str) -> None:
        """Return a leased shard to the pending queue after a failure.

        A shard that has burnt :attr:`max_attempts` leases marks the
        whole table failed — every ``checkout`` then returns ``None``
        and :meth:`assemble` raises with the failure trail.
        """
        with self._progress:
            lease.failures.append(f"{lease.worker or '?'}: {error}")
            lease.worker = None
            lease.leased_at = None
            if lease.shard_id in self._outcomes:
                # A racing duplicate already completed it; nothing to redo.
                self._progress.notify_all()
                return
            if lease.attempts >= self.max_attempts:
                self._failed = lease
            else:
                self._pending.append(lease.shard_id)
            self._progress.notify_all()

    # ------------------------------------------------------------------
    # Coordinator-side state
    # ------------------------------------------------------------------
    def complete_locked(self) -> bool:
        return len(self._outcomes) == len(self._shards)

    @property
    def done(self) -> bool:
        """Whether every shard has recorded outcomes."""
        with self._lock:
            return self.complete_locked()

    def unfinished(self) -> List[ShardLease]:
        """Shards without outcomes (for inline fallback / diagnostics)."""
        with self._lock:
            return [
                shard
                for shard in self._shards
                if shard.shard_id not in self._outcomes
            ]

    def failure_log(self) -> List[str]:
        """Every recorded lease failure, in observation order."""
        with self._lock:
            return [line for shard in self._shards for line in shard.failures]

    def assemble(self) -> List[Any]:
        """All outcomes, in global draw-index order.

        The index-ordered concatenation is what makes the distributed
        estimation loop consume *exactly* the sequence a serial run
        would, so tallies, adaptive-stopping boundaries, and checkpoints
        all agree byte for byte.
        """
        with self._lock:
            if self._failed is not None:
                raise DistributedSamplingError(
                    f"shard {self._failed.shard_id} (draws "
                    f"[{self._failed.start}, "
                    f"{self._failed.start + self._failed.count})) failed "
                    f"{self._failed.attempts} time(s): "
                    + "; ".join(self._failed.failures)
                )
            if not self.complete_locked():
                missing = [
                    s.shard_id
                    for s in self._shards
                    if s.shard_id not in self._outcomes
                ]
                raise DistributedSamplingError(
                    f"shards {missing} never completed (all workers lost?)"
                )
            ordered: List[Any] = []
            for shard in self._shards:
                ordered.extend(self._outcomes[shard.shard_id])
            return ordered
