"""The coordinator: shard dispatch, lease recovery, tally merging.

A :class:`Coordinator` owns a set of :class:`~repro.distributed.transport.WorkerTransport`
instances (remote sockets, persistent local pool processes, or both) and
turns "compute draws ``[start, start + count)`` of this campaign" into
leased shards:

1. the range is cut into contiguous shards in a
   :class:`~repro.distributed.lease.LeaseTable`;
2. one driver thread per live worker checks shards out, ships the
   campaign's :class:`~repro.distributed.worker.ShardContext` (once per
   worker — contexts stay warm across batches *and* across ``run``
   calls), and executes them with a lease timeout; worker heartbeats
   reset the timer, silence or a broken pipe expires it;
3. an expired or failed lease is released back and re-leased to another
   worker — draws are index-deterministic, so the replacement produces
   byte-identical outcomes (a racing duplicate is simply dropped);
4. outcomes are re-assembled in draw-index order, so the campaign's
   estimation loop consumes exactly the sequence a serial run would —
   tallies, adaptive-stopping boundaries, and checkpoints merge into
   the *existing* campaign/checkpoint format with no distributed
   special-casing;
5. worker cache counters attached to each result are recorded with
   :func:`repro.diagnostics.record_worker_cache_stats`, so
   :func:`repro.diagnostics.cache_report` aggregates the whole fleet
   instead of silently reporting only the parent process.

If every worker dies mid-range, the coordinator finishes the remaining
shards inline (same executor code path, same outcomes) rather than
failing the campaign — disable with ``fallback_inline=False`` to surface
the failure instead.
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence

from repro.distributed.lease import DistributedSamplingError, LeaseTable, ShardLease
from repro.distributed.protocol import WorkerError
from repro.distributed.transport import (
    InlineTransport,
    SocketTransport,
    WorkerTransport,
    WorkerUnavailable,
)
from repro.distributed.worker import ShardContext
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.deadline import Deadline, DeadlineExpired

_SHARD_LEASES = obs_metrics.REGISTRY.counter(
    "ocqa_shard_leases_total",
    "Shard leases checked out (re-leases and speculation included).",
)
_SHARD_COMPLETIONS = obs_metrics.REGISTRY.counter(
    "ocqa_shard_completions_total", "Shards completed with merged outcomes."
)
_SHARD_RELEASES = obs_metrics.REGISTRY.counter(
    "ocqa_shard_releases_total",
    "Shards handed back for re-lease after a lost or failed attempt.",
)
_INLINE_SHARDS = obs_metrics.REGISTRY.counter(
    "ocqa_inline_shards_total",
    "Shards the coordinator finished inline after losing every worker.",
)
_RECONNECTS = obs_metrics.REGISTRY.counter(
    "ocqa_reconnects_total",
    "Workers won back after a transport declared them dead.",
)

#: Live lease table for the scrape-time lease-age gauges: every checked
#: out shard across every open campaign in this process, with its
#: checkout instant.  ``ocqa top`` reads the derived gauges to show how
#: stale the oldest in-flight lease is.
_LEASE_TRACK_LOCK = threading.Lock()
_ACTIVE_LEASE_STARTS: Dict[Any, float] = {}

_ACTIVE_LEASES_GAUGE = obs_metrics.REGISTRY.gauge(
    "ocqa_active_leases", "Shard leases currently checked out, fleet-wide."
)
_LEASE_AGE_MAX = obs_metrics.REGISTRY.gauge(
    "ocqa_lease_age_seconds_max", "Age of the oldest in-flight shard lease."
)


def _lease_started(campaign: str, shard: int, worker: str) -> None:
    if not obs_metrics.metrics_enabled():
        return
    with _LEASE_TRACK_LOCK:
        _ACTIVE_LEASE_STARTS[(campaign, shard, worker)] = time.monotonic()


def _lease_done(campaign: str, shard: int, worker: str) -> None:
    with _LEASE_TRACK_LOCK:
        _ACTIVE_LEASE_STARTS.pop((campaign, shard, worker), None)


def _purge_leases(campaign: str) -> None:
    with _LEASE_TRACK_LOCK:
        for key in [k for k in _ACTIVE_LEASE_STARTS if k[0] == campaign]:
            del _ACTIVE_LEASE_STARTS[key]


@obs_metrics.REGISTRY.add_collector
def _publish_lease_gauges() -> None:
    if not obs_metrics.metrics_enabled():
        return
    with _LEASE_TRACK_LOCK:
        count = len(_ACTIVE_LEASE_STARTS)
        oldest = min(_ACTIVE_LEASE_STARTS.values()) if count else None
    _ACTIVE_LEASES_GAUGE.set(count)
    _LEASE_AGE_MAX.set(
        round(time.monotonic() - oldest, 3) if oldest is not None else 0.0
    )

#: Draws per shard when the caller does not choose: small enough that a
#: 2-worker run interleaves, large enough that framing cost stays noise.
DEFAULT_SHARD_SIZE = 25

#: Seconds of silence (no heartbeat, no result) after which a worker's
#: lease is considered dead.  Workers heartbeat every ~2s while
#: computing, so expiry genuinely means a dead or wedged worker.
DEFAULT_LEASE_TIMEOUT = 60.0

#: Monotonic source of campaign/connection ids: distinct per coordinator
#: within a process, which is all the tag needs (a worker distinguishes
#: connections by socket; the tag attributes frames *within* one).
_campaign_counter = itertools.count(1)


@dataclass(frozen=True)
class ReconnectPolicy:
    """How hard a driver thread tries to win its worker back.

    After a transient loss (:class:`WorkerUnavailable`) the shard is
    released for others immediately; the driver then backs off
    exponentially from ``base_delay`` to ``max_delay`` (plus up to
    ``jitter`` of proportional noise, so a rack-wide flap does not
    reconnect in lockstep) and probes the worker up to ``retry_budget``
    times.  A worker that answers rejoins the same campaign mid-flight;
    one that never does is abandoned and the fleet degrades — remaining
    workers, then the inline fallback.  ``retry_budget=0`` restores the
    pre-reconnect behavior (one strike and the worker is out).
    """

    retry_budget: int = 6
    base_delay: float = 0.25
    max_delay: float = 5.0
    jitter: float = 0.5


class Coordinator:
    """Shards draw ranges across workers and merges their outcomes."""

    def __init__(
        self,
        transports: Sequence[WorkerTransport],
        *,
        shard_size: int = DEFAULT_SHARD_SIZE,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_attempts: int = 4,
        fallback_inline: bool = True,
        speculate: bool = True,
        reconnect: Optional[ReconnectPolicy] = None,
    ) -> None:
        if shard_size < 1:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        self.transports: List[WorkerTransport] = list(transports)
        if not self.transports:
            self.transports = [InlineTransport()]
        self.shard_size = shard_size
        self.lease_timeout = lease_timeout
        self.max_attempts = max_attempts
        self.fallback_inline = fallback_inline
        #: Re-lease the slowest outstanding shard to idle workers once
        #: the pending queue drains (straggler mitigation; exact —
        #: duplicate completions are dropped byte-identically).
        self.speculate = speculate
        #: This coordinator's campaign/connection tag, stamped on every
        #: frame its transports exchange with (multiplexing) workers.
        self.campaign_id = f"c{next(_campaign_counter)}"
        for transport in self.transports:
            transport.bind_campaign(self.campaign_id)
        #: Backoff/retry schedule for winning flapped workers back.
        self.reconnect_policy = (
            ReconnectPolicy() if reconnect is None else reconnect
        )
        #: Number of shards recomputed after a lost lease (observability).
        self.releases = 0
        #: Workers won back after a transient loss (observability).
        self.reconnects = 0
        #: Human-readable self-healing history (reconnects, abandons,
        #: inline degradation), in observation order.
        self.degradation_log: List[str] = []
        #: Shards the campaign computed inline after losing every worker
        #: (survives :meth:`close`, unlike the executor itself).
        self.inline_shards = 0
        #: Speculative duplicate leases issued / won (observability).
        self.speculations = 0
        self.speculation_wins = 0
        #: Per-worker failure messages, in observation order.
        self.failure_log: List[str] = []
        self._fatal_lock = threading.Lock()
        self._fatal: Optional[BaseException] = None
        #: Lazily-built executor for the all-workers-dead fallback; kept
        #: across batches so its warm contexts amortize like a worker's.
        self._inline: Optional[InlineTransport] = None
        #: Driver threads still winding down a shard from a *previous*
        #: range (speculated stragglers), keyed by transport identity
        #: (``id()`` — names may collide when the same address is listed
        #: twice).  A transport whose recorded thread is alive is
        #: skipped when dispatching the next range and rejoins the fleet
        #: as soon as the thread exits — one slow shard never blocks the
        #: campaign, and no transport ever serves two threads.
        #: ``is_alive()`` is the ground truth, so there is no release
        #: race to lose a transport to.  (Dispatch itself is
        #: single-threaded: one ``run_range`` at a time per coordinator,
        #: as the samplers use it.)
        self._lagging: Dict[int, threading.Thread] = {}

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def local_pool(cls, workers: int, **kwargs) -> "Coordinator":
        """A coordinator over *workers* persistent local processes."""
        from repro.distributed.pool import LocalPoolTransport

        return cls(LocalPoolTransport.spawn(workers), **kwargs)

    @classmethod
    def connect(
        cls,
        addresses: Sequence[str],
        compress: Optional[bool] = None,
        context_timeout: Optional[float] = None,
        **kwargs,
    ) -> "Coordinator":
        """A coordinator over remote ``host:port`` workers."""
        return cls(
            [
                SocketTransport.parse(
                    a, compress=compress, context_timeout=context_timeout
                )
                for a in addresses
            ],
            **kwargs,
        )

    @classmethod
    def from_options(
        cls,
        processes: Optional[int] = None,
        workers: Optional[int] = None,
        worker_addresses: Sequence[str] = (),
        compress: Optional[bool] = None,
        context_timeout: Optional[float] = None,
        **kwargs,
    ) -> Optional["Coordinator"]:
        """The coordinator implied by the samplers'/estimators' options.

        The one place the option precedence lives: ``workers`` wins over
        the legacy ``processes`` alias (which means a pool only when
        ``> 1`` — ``--processes 1`` historically meant serial, while
        ``workers=1`` is an explicit one-process pool);
        ``worker_addresses`` adds remote ``host:port`` workers.
        *compress* gates the socket transports' compression capabilities
        (default: on, unless ``REPRO_COMPRESS=0``).  Returns ``None``
        when nothing asks for distribution (the serial path).
        """
        from repro.distributed.pool import LocalPoolTransport

        pool = (
            workers
            if workers is not None
            else (processes if processes and processes > 1 else None)
        )
        if not pool and not worker_addresses:
            return None
        transports: List[WorkerTransport] = [
            SocketTransport.parse(
                address, compress=compress, context_timeout=context_timeout
            )
            for address in worker_addresses
        ]
        if pool:
            transports.extend(LocalPoolTransport.spawn(pool))
        return cls(transports, **kwargs)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run_range(
        self,
        context: ShardContext,
        start: int,
        count: int,
        deadline: Optional[Deadline] = None,
    ) -> List[Any]:
        """Outcomes for draws ``[start, start + count)``, index-ordered.

        Retryable worker failures re-lease shards; fatal worker errors
        (deterministic exceptions such as a failing repair sequence)
        re-raise here, mapped back to the original exception type when
        it is importable.

        With a *deadline*, the remaining wall-clock budget rides every
        run frame (negotiated ``deadline`` capability), run-shard waits
        are clamped to it, and an expiry raises
        :class:`repro.service.deadline.DeadlineExpired` instead of
        degrading to the inline fallback — computing draws past the
        deadline is exactly what the caller asked us not to do.  The
        campaign layer turns that into a best-effort estimate with
        widened ``(eps, delta)`` accounting.

        Returns as soon as every shard has outcomes — NOT when every
        driver thread has exited: a straggler whose shard was
        speculatively recomputed elsewhere finishes its (dropped)
        duplicate in the background, with its transport marked busy and
        skipped until then.
        """
        if count <= 0:
            return []
        obs_trace.span(
            "campaign_range",
            campaign=self.campaign_id,
            start=start,
            count=count,
            workers=sum(1 for t in self.transports if t.alive),
        )
        if deadline is not None:
            deadline.check(f"campaign range [{start}, {start + count})")
        table = LeaseTable(
            start,
            count,
            self.shard_size,
            max_attempts=self.max_attempts,
            speculate=self.speculate and len(self.transports) > 1,
        )
        self._lagging = {
            key: thread
            for key, thread in self._lagging.items()
            if thread.is_alive()
        }
        live = [
            t for t in self.transports if t.alive and id(t) not in self._lagging
        ]
        threads = [
            (
                transport,
                threading.Thread(
                    target=self._drive,
                    args=(transport, context, table, deadline),
                    daemon=True,
                ),
            )
            for transport in live
        ]
        for _transport, thread in threads:
            thread.start()
        while not table.done and any(t.is_alive() for _tr, t in threads):
            table.wait_progress(0.5)
            if deadline is not None and deadline.expired:
                break
        for transport, thread in threads:
            if thread.is_alive():
                # Grace join: a thread in its post-completion microsecond
                # window is not a straggler — only classify it lagging if
                # it is still running after a short wait.
                thread.join(timeout=0.05)
            if thread.is_alive():
                self._lagging[id(transport)] = thread
        with self._fatal_lock:
            if self._fatal is not None:
                fatal, self._fatal = self._fatal, None
                raise fatal
        if not table.done:
            if deadline is not None and deadline.expired:
                from repro.diagnostics import record_deadline_expiration

                record_deadline_expiration()
                unfinished = len(table.unfinished())
                obs_trace.span(
                    "deadline_expired",
                    scope="campaign_range",
                    campaign=self.campaign_id,
                    start=start,
                    count=count,
                    unfinished=unfinished,
                )
                raise DeadlineExpired(
                    f"campaign range [{start}, {start + count}) hit its "
                    f"deadline with {unfinished} shard(s) unfinished"
                )
            leftovers = table.unfinished()
            if not self.fallback_inline:
                raise DistributedSamplingError(
                    f"{len(leftovers)} shard(s) unfinished and inline "
                    "fallback disabled: " + "; ".join(table.failure_log())
                )
            self._finish_inline(context, table, leftovers, deadline)
        self.speculation_wins += table.speculation_wins
        self._record_transport_stats()
        return table.assemble()

    def _drive(
        self,
        transport: WorkerTransport,
        context: ShardContext,
        table: LeaseTable,
        deadline: Optional[Deadline] = None,
    ) -> None:
        """One worker's checkout→run→complete loop (runs on its thread).

        With a *deadline*, checkouts are non-blocking polls (a thread
        parked inside :meth:`LeaseTable.checkout` would sleep straight
        past the expiry) and the thread exits the moment the budget is
        gone; retriable backpressure errors (``WorkerBusy``) back off by
        the worker's suggested ``retry_after`` on the *same* lease —
        they never burn the shard's retry budget.
        """
        busy_waited = 0.0
        while True:
            with self._fatal_lock:
                if self._fatal is not None:
                    return
            if deadline is not None:
                if deadline.expired:
                    return
                lease = table.checkout(transport.name, wait=False)
                if lease is None:
                    if table.done or table.failed:
                        return
                    time.sleep(0.02)
                    continue
            else:
                lease = table.checkout(transport.name)
                if lease is None:
                    return
            self._note_lease(transport.name, lease)
            if lease.speculative:
                with self._fatal_lock:
                    self.speculations += 1
            try:
                while True:
                    try:
                        outcomes, cache_stats = transport.run_shard(
                            context,
                            lease.shard_id,
                            lease.start,
                            lease.count,
                            timeout=(
                                self.lease_timeout
                                if deadline is None
                                else deadline.clamp(self.lease_timeout)
                            ),
                            deadline=deadline,
                        )
                        break
                    except WorkerError as exc:
                        if not exc.retriable or exc.fatal:
                            raise
                        # Backpressure (e.g. the worker at its in-flight
                        # limit): hold the lease, pause for the worker's
                        # suggested retry_after, and offer the same shard
                        # again.  Bounded by the lease timeout so a
                        # permanently wedged worker degrades like a dead
                        # one instead of spinning forever.
                        pause = min(max(exc.retry_after or 0.25, 0.05), 1.0)
                        busy_waited += pause
                        if busy_waited > self.lease_timeout:
                            self.releases += 1
                            self._note_release(
                                transport.name, lease, "worker_busy"
                            )
                            self.failure_log.append(
                                f"{transport.name}: still busy after "
                                f"{busy_waited:.1f}s of backpressure"
                            )
                            table.release(lease, str(exc))
                            return
                        if not self._pause(pause, table, deadline):
                            _lease_done(
                                self.campaign_id, lease.shard_id, transport.name
                            )
                            table.release(lease, str(exc))
                            return
            except DeadlineExpired as exc:
                # The worker abandoned the shard (budget gone).  Hand it
                # back for the record and stop driving: run_range raises
                # DeadlineExpired for the whole range.
                _lease_done(self.campaign_id, lease.shard_id, transport.name)
                table.release(lease, str(exc))
                return
            except WorkerUnavailable as exc:
                self.releases += 1
                self._note_release(transport.name, lease, "worker_unavailable")
                self.failure_log.append(f"{transport.name}: {exc}")
                # Release first: another worker picks the shard up while
                # this thread backs off trying to win its worker back.
                table.release(lease, str(exc))
                if self._await_reconnect(transport, table):
                    continue  # the worker rejoined; keep serving shards
                return  # abandoned; the fleet degrades without it
            except WorkerError as exc:
                if exc.fatal:
                    with self._fatal_lock:
                        if self._fatal is None:
                            self._fatal = _map_worker_error(exc)
                    _lease_done(
                        self.campaign_id, lease.shard_id, transport.name
                    )
                    table.release(lease, f"fatal: {exc}")
                    return
                self.releases += 1
                self._note_release(transport.name, lease, "worker_error")
                self.failure_log.append(f"{transport.name}: {exc}")
                table.release(lease, str(exc))
                continue  # transient worker-side error; keep serving
            busy_waited = 0.0
            table.complete(lease, outcomes)
            self._note_complete(transport.name, lease)
            self._record_cache_stats(transport.name, cache_stats)

    def _pause(
        self,
        seconds: float,
        table: LeaseTable,
        deadline: Optional[Deadline],
    ) -> bool:
        """Sleep *seconds* in small steps; ``False`` means stop retrying
        (the table finished or died, a fatal error landed, or the
        deadline expired while waiting)."""
        until = time.monotonic() + seconds
        while time.monotonic() < until:
            if table.done or table.failed:
                return False
            with self._fatal_lock:
                if self._fatal is not None:
                    return False
            if deadline is not None and deadline.expired:
                return False
            time.sleep(0.05)
        return True

    # ------------------------------------------------------------------
    # Telemetry bookkeeping (metrics counters + trace spans)
    # ------------------------------------------------------------------
    def _note_lease(self, worker: str, lease: ShardLease) -> None:
        _SHARD_LEASES.inc()
        _lease_started(self.campaign_id, lease.shard_id, worker)
        obs_trace.span(
            "shard_lease",
            campaign=self.campaign_id,
            shard=lease.shard_id,
            worker=worker,
            start=lease.start,
            count=lease.count,
            speculative=lease.speculative,
        )

    def _note_complete(self, worker: str, lease: ShardLease) -> None:
        _SHARD_COMPLETIONS.inc()
        _lease_done(self.campaign_id, lease.shard_id, worker)
        obs_trace.span(
            "shard_complete",
            campaign=self.campaign_id,
            shard=lease.shard_id,
            worker=worker,
            start=lease.start,
            count=lease.count,
        )

    def _note_release(self, worker: str, lease: ShardLease, reason: str) -> None:
        # Called at exactly the sites that bump ``self.releases``, so the
        # span log's shard_release count always matches
        # ``degradation_report()["releases"]``.
        _SHARD_RELEASES.inc()
        _lease_done(self.campaign_id, lease.shard_id, worker)
        obs_trace.span(
            "shard_release",
            campaign=self.campaign_id,
            shard=lease.shard_id,
            worker=worker,
            reason=reason,
        )

    def _await_reconnect(
        self, transport: WorkerTransport, table: LeaseTable
    ) -> bool:
        """Back off and probe a lost worker until it answers, the retry
        budget runs out, or the range finishes without it.

        Runs on the worker's own driver thread, so the rest of the fleet
        keeps computing (and can finish the table, which short-circuits
        the wait).  The jittered exponential schedule is seeded per
        campaign/worker pair: deterministic for a given run, decorrelated
        across workers.
        """
        policy = self.reconnect_policy
        if policy.retry_budget < 1:
            return False
        rng = random.Random(f"{self.campaign_id}:{transport.name}")
        delay = policy.base_delay
        for attempt in range(1, policy.retry_budget + 1):
            deadline = time.monotonic() + delay * (
                1.0 + policy.jitter * rng.random()
            )
            while time.monotonic() < deadline:
                if table.done:
                    return False
                with self._fatal_lock:
                    if self._fatal is not None:
                        return False
                time.sleep(0.05)
            if transport.reconnect():
                with self._fatal_lock:
                    self.reconnects += 1
                    self.degradation_log.append(
                        f"{transport.name}: reconnected on attempt "
                        f"{attempt}/{policy.retry_budget}"
                    )
                _RECONNECTS.inc()
                obs_trace.span(
                    "reconnect",
                    campaign=self.campaign_id,
                    worker=transport.name,
                    attempt=attempt,
                )
                return True
            delay = min(delay * 2.0, policy.max_delay)
        with self._fatal_lock:
            self.degradation_log.append(
                f"{transport.name}: abandoned after "
                f"{policy.retry_budget} reconnect attempt(s)"
            )
        return False

    def _finish_inline(
        self,
        context: ShardContext,
        table: LeaseTable,
        leftovers: List[ShardLease],
        deadline: Optional[Deadline] = None,
    ) -> None:
        """Compute unfinished shards in-process (all workers lost).

        The inline executor persists on the coordinator, so a campaign
        that outlives its whole fleet pays the context build once, not
        once per batch.  A deadline expiring mid-fallback propagates as
        :class:`repro.service.deadline.DeadlineExpired` — the fallback
        never computes draws past the budget either.
        """
        if self._inline is None:
            self._inline = InlineTransport(name="inline-fallback")
        self.inline_shards += len(leftovers)
        _INLINE_SHARDS.inc(len(leftovers))
        obs_trace.span(
            "inline_fallback",
            campaign=self.campaign_id,
            shards=len(leftovers),
        )
        self.degradation_log.append(
            f"degraded to inline execution for {len(leftovers)} shard(s) "
            "(no live worker finished them)"
        )
        cache_stats = {}
        for lease in leftovers:
            outcomes, cache_stats = self._inline.run_shard(
                context, lease.shard_id, lease.start, lease.count,
                deadline=deadline,
            )
            table.complete(lease, outcomes)
            self._note_complete(self._inline.name, lease)
        self._record_cache_stats(self._inline.name, cache_stats)

    @staticmethod
    def _record_cache_stats(
        worker: str, cache_stats: Dict[str, Dict[str, int]]
    ) -> None:
        if not cache_stats:
            return
        from repro.diagnostics import record_worker_cache_stats

        record_worker_cache_stats(worker, cache_stats)

    def _record_transport_stats(self) -> None:
        """Publish per-transport byte counters to the diagnostics registry
        (so ``cache_report`` can show outcome-shipping volume/compression
        alongside the fleet's cache counters)."""
        from repro.diagnostics import record_transport_stats

        for transport in self.transports:
            stats = getattr(transport, "stats", None)
            if stats:
                record_transport_stats(
                    f"{self.campaign_id}/{transport.name}", stats
                )

    def transport_report(self) -> Dict[str, int]:
        """Cumulative shipped-byte counters summed over this coordinator's
        socket transports (zeros when no transport keeps counters)."""
        total: Dict[str, int] = {}
        for transport in self.transports:
            for key, value in (getattr(transport, "stats", None) or {}).items():
                total[key] = total.get(key, 0) + value
        return total

    def degradation_report(self) -> Dict[str, Any]:
        """How far this campaign has slid down the degradation ladder.

        The self-healing counterpart of :meth:`transport_report`: shard
        re-leases, workers won back (and how many probe attempts that
        took, via :attr:`degradation_log`), whether the campaign ever
        fell all the way to inline execution, and each transport's
        current liveness — enough to answer "did the fleet heal, and at
        what cost?" after a chaotic run.
        """
        with self._fatal_lock:
            events = list(self.degradation_log)
            reconnects = self.reconnects
        return {
            "releases": self.releases,
            "reconnects": reconnects,
            "inline_fallback": self.inline_shards > 0,
            "inline_shards": self.inline_shards,
            "events": events,
            "workers": [
                {
                    "name": transport.name,
                    "kind": type(transport).__name__,
                    "alive": transport.alive,
                    "reconnects": (getattr(transport, "stats", None) or {}).get(
                        "reconnects", 0
                    ),
                }
                for transport in self.transports
            ],
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def live_workers(self) -> int:
        return sum(1 for t in self.transports if t.alive)

    def close(self) -> None:
        from repro.diagnostics import discard_transport_stats

        for transport in self.transports:
            transport.close()
        if self._inline is not None:
            self._inline.close()
            self._inline = None
        # Keep the diagnostics registry bounded by open campaigns.
        discard_transport_stats(f"{self.campaign_id}/")
        _purge_leases(self.campaign_id)


def _map_worker_error(error: WorkerError) -> BaseException:
    """Re-raise a worker's fatal exception under its original type when
    that type is part of this package's public error surface."""
    from repro.core.errors import FailingSequenceError, InvalidGeneratorError

    known = {
        "FailingSequenceError": FailingSequenceError,
        "InvalidGeneratorError": InvalidGeneratorError,
        "ValueError": ValueError,
        "KeyError": KeyError,
        "TypeError": TypeError,
    }
    exc_type = known.get(error.exception_type or "")
    if exc_type is not None:
        return exc_type(str(error))
    return error
