"""The coordinator: shard dispatch, lease recovery, tally merging.

A :class:`Coordinator` owns a set of :class:`~repro.distributed.transport.WorkerTransport`
instances (remote sockets, persistent local pool processes, or both) and
turns "compute draws ``[start, start + count)`` of this campaign" into
leased shards:

1. the range is cut into contiguous shards in a
   :class:`~repro.distributed.lease.LeaseTable`;
2. one driver thread per live worker checks shards out, ships the
   campaign's :class:`~repro.distributed.worker.ShardContext` (once per
   worker — contexts stay warm across batches *and* across ``run``
   calls), and executes them with a lease timeout; worker heartbeats
   reset the timer, silence or a broken pipe expires it;
3. an expired or failed lease is released back and re-leased to another
   worker — draws are index-deterministic, so the replacement produces
   byte-identical outcomes (a racing duplicate is simply dropped);
4. outcomes are re-assembled in draw-index order, so the campaign's
   estimation loop consumes exactly the sequence a serial run would —
   tallies, adaptive-stopping boundaries, and checkpoints merge into
   the *existing* campaign/checkpoint format with no distributed
   special-casing;
5. worker cache counters attached to each result are recorded with
   :func:`repro.diagnostics.record_worker_cache_stats`, so
   :func:`repro.diagnostics.cache_report` aggregates the whole fleet
   instead of silently reporting only the parent process.

If every worker dies mid-range, the coordinator finishes the remaining
shards inline (same executor code path, same outcomes) rather than
failing the campaign — disable with ``fallback_inline=False`` to surface
the failure instead.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Sequence

from repro.distributed.lease import DistributedSamplingError, LeaseTable, ShardLease
from repro.distributed.protocol import WorkerError
from repro.distributed.transport import (
    InlineTransport,
    SocketTransport,
    WorkerTransport,
    WorkerUnavailable,
)
from repro.distributed.worker import ShardContext

#: Draws per shard when the caller does not choose: small enough that a
#: 2-worker run interleaves, large enough that framing cost stays noise.
DEFAULT_SHARD_SIZE = 25

#: Seconds of silence (no heartbeat, no result) after which a worker's
#: lease is considered dead.  Workers heartbeat every ~2s while
#: computing, so expiry genuinely means a dead or wedged worker.
DEFAULT_LEASE_TIMEOUT = 60.0


class Coordinator:
    """Shards draw ranges across workers and merges their outcomes."""

    def __init__(
        self,
        transports: Sequence[WorkerTransport],
        *,
        shard_size: int = DEFAULT_SHARD_SIZE,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        max_attempts: int = 4,
        fallback_inline: bool = True,
    ) -> None:
        if shard_size < 1:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        self.transports: List[WorkerTransport] = list(transports)
        if not self.transports:
            self.transports = [InlineTransport()]
        self.shard_size = shard_size
        self.lease_timeout = lease_timeout
        self.max_attempts = max_attempts
        self.fallback_inline = fallback_inline
        #: Number of shards recomputed after a lost lease (observability).
        self.releases = 0
        #: Per-worker failure messages, in observation order.
        self.failure_log: List[str] = []
        self._fatal_lock = threading.Lock()
        self._fatal: Optional[BaseException] = None
        #: Lazily-built executor for the all-workers-dead fallback; kept
        #: across batches so its warm contexts amortize like a worker's.
        self._inline: Optional[InlineTransport] = None

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def local_pool(cls, workers: int, **kwargs) -> "Coordinator":
        """A coordinator over *workers* persistent local processes."""
        from repro.distributed.pool import LocalPoolTransport

        return cls(LocalPoolTransport.spawn(workers), **kwargs)

    @classmethod
    def connect(cls, addresses: Sequence[str], **kwargs) -> "Coordinator":
        """A coordinator over remote ``host:port`` workers."""
        return cls([SocketTransport.parse(a) for a in addresses], **kwargs)

    @classmethod
    def from_options(
        cls,
        processes: Optional[int] = None,
        workers: Optional[int] = None,
        worker_addresses: Sequence[str] = (),
        **kwargs,
    ) -> Optional["Coordinator"]:
        """The coordinator implied by the samplers'/estimators' options.

        The one place the option precedence lives: ``workers`` wins over
        the legacy ``processes`` alias (which means a pool only when
        ``> 1`` — ``--processes 1`` historically meant serial, while
        ``workers=1`` is an explicit one-process pool);
        ``worker_addresses`` adds remote ``host:port`` workers.  Returns
        ``None`` when nothing asks for distribution (the serial path).
        """
        from repro.distributed.pool import LocalPoolTransport

        pool = (
            workers
            if workers is not None
            else (processes if processes and processes > 1 else None)
        )
        if not pool and not worker_addresses:
            return None
        transports: List[WorkerTransport] = [
            SocketTransport.parse(address) for address in worker_addresses
        ]
        if pool:
            transports.extend(LocalPoolTransport.spawn(pool))
        return cls(transports, **kwargs)

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def run_range(
        self, context: ShardContext, start: int, count: int
    ) -> List[Any]:
        """Outcomes for draws ``[start, start + count)``, index-ordered.

        Retryable worker failures re-lease shards; fatal worker errors
        (deterministic exceptions such as a failing repair sequence)
        re-raise here, mapped back to the original exception type when
        it is importable.
        """
        if count <= 0:
            return []
        table = LeaseTable(
            start, count, self.shard_size, max_attempts=self.max_attempts
        )
        live = [t for t in self.transports if t.alive]
        threads = [
            threading.Thread(
                target=self._drive, args=(transport, context, table), daemon=True
            )
            for transport in live
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        with self._fatal_lock:
            if self._fatal is not None:
                fatal, self._fatal = self._fatal, None
                raise fatal
        if not table.done:
            leftovers = table.unfinished()
            if not self.fallback_inline:
                raise DistributedSamplingError(
                    f"{len(leftovers)} shard(s) unfinished and inline "
                    "fallback disabled: " + "; ".join(table.failure_log())
                )
            self._finish_inline(context, table, leftovers)
        return table.assemble()

    def _drive(
        self,
        transport: WorkerTransport,
        context: ShardContext,
        table: LeaseTable,
    ) -> None:
        """One worker's checkout→run→complete loop (runs on its thread)."""
        while True:
            with self._fatal_lock:
                if self._fatal is not None:
                    return
            lease = table.checkout(transport.name)
            if lease is None:
                return
            try:
                outcomes, cache_stats = transport.run_shard(
                    context,
                    lease.shard_id,
                    lease.start,
                    lease.count,
                    timeout=self.lease_timeout,
                )
            except WorkerUnavailable as exc:
                self.releases += 1
                self.failure_log.append(f"{transport.name}: {exc}")
                table.release(lease, str(exc))
                return  # this worker is gone; others pick the shard up
            except WorkerError as exc:
                if exc.fatal:
                    with self._fatal_lock:
                        if self._fatal is None:
                            self._fatal = _map_worker_error(exc)
                    table.release(lease, f"fatal: {exc}")
                    return
                self.releases += 1
                self.failure_log.append(f"{transport.name}: {exc}")
                table.release(lease, str(exc))
                continue  # transient worker-side error; keep serving
            table.complete(lease, outcomes)
            self._record_cache_stats(transport.name, cache_stats)

    def _finish_inline(
        self,
        context: ShardContext,
        table: LeaseTable,
        leftovers: List[ShardLease],
    ) -> None:
        """Compute unfinished shards in-process (all workers lost).

        The inline executor persists on the coordinator, so a campaign
        that outlives its whole fleet pays the context build once, not
        once per batch.
        """
        if self._inline is None:
            self._inline = InlineTransport(name="inline-fallback")
        cache_stats = {}
        for lease in leftovers:
            outcomes, cache_stats = self._inline.run_shard(
                context, lease.shard_id, lease.start, lease.count
            )
            table.complete(lease, outcomes)
        self._record_cache_stats(self._inline.name, cache_stats)

    @staticmethod
    def _record_cache_stats(
        worker: str, cache_stats: Dict[str, Dict[str, int]]
    ) -> None:
        if not cache_stats:
            return
        from repro.diagnostics import record_worker_cache_stats

        record_worker_cache_stats(worker, cache_stats)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def live_workers(self) -> int:
        return sum(1 for t in self.transports if t.alive)

    def close(self) -> None:
        for transport in self.transports:
            transport.close()
        if self._inline is not None:
            self._inline.close()
            self._inline = None


def _map_worker_error(error: WorkerError) -> BaseException:
    """Re-raise a worker's fatal exception under its original type when
    that type is part of this package's public error surface."""
    from repro.core.errors import FailingSequenceError, InvalidGeneratorError

    known = {
        "FailingSequenceError": FailingSequenceError,
        "InvalidGeneratorError": InvalidGeneratorError,
        "ValueError": ValueError,
        "KeyError": KeyError,
        "TypeError": TypeError,
    }
    exc_type = known.get(error.exception_type or "")
    if exc_type is not None:
        return exc_type(str(error))
    return error
