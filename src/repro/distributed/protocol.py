"""The coordinator/worker wire protocol (length-prefixed JSON + pickle).

Every message is one *frame*:

====================  =======================================================
bytes                 meaning
====================  =======================================================
``4``                 magic ``b"RPW1"`` (protocol version 1)
``4``                 header length ``H`` (big-endian unsigned)
``4``                 blob length ``B`` (big-endian unsigned)
``H``                 UTF-8 JSON header — always an object with a ``"type"``
                      key plus small scalar fields (ids, ranges, counts)
``B``                 optional pickle blob carrying the Python payload
                      (shard contexts, outcome lists, cache counters)
====================  =======================================================

Control flow lives in the JSON header so a frame is inspectable without
unpickling; bulk payloads (facts, schemas, answer sets) ride the pickle
blob.  Message types:

- ``hello`` / ``welcome`` — connection handshake (worker name, protocol
  version; mismatched versions are refused loudly);
- ``context`` / ``context_ok`` — ship a :class:`ShardContext` once per
  worker; the worker builds and caches the warm sampling runtime;
- ``run`` — execute draws ``[start, start + count)`` of a context;
- ``heartbeat`` — sent by the worker *while computing* a shard, so the
  coordinator's lease timer distinguishes a slow shard from a dead
  worker;
- ``result`` — the shard's outcomes (blob) plus the worker's cache
  counters;
- ``error`` — a Python exception from the worker; ``fatal`` marks
  errors that re-leasing cannot fix (e.g. a failing repair sequence),
  which the coordinator re-raises instead of retrying;
- ``ping`` / ``pong`` — liveness probe;
- ``shutdown`` — ask the worker process to exit its serve loop.

Pickle is trusted here by design: the coordinator and its workers are
one deployment (same codebase, same operator), exactly like the stdlib
``multiprocessing`` transport this subsystem generalizes.  Do not expose
a worker port to untrusted networks.
"""

from __future__ import annotations

import json
import pickle
import socket
import struct
from typing import Any, Optional, Tuple

#: Protocol magic + version; bumped on any frame-layout change.
MAGIC = b"RPW1"

_HEADER = struct.Struct("!4sII")

#: Hard cap on a single frame's payload (header + blob), as a guard
#: against a corrupt or foreign byte stream being read as a length.
MAX_FRAME_BYTES = 1 << 30


class ProtocolError(RuntimeError):
    """The byte stream is not speaking this protocol (bad magic, oversize
    frame, truncated payload, or a non-object header)."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection mid-frame (or before one)."""


def encode_frame(header: dict, payload: Any = None) -> bytes:
    """Serialize one frame (header JSON + optional pickled *payload*)."""
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    blob = b"" if payload is None else pickle.dumps(payload)
    return _HEADER.pack(MAGIC, len(header_bytes), len(blob)) + header_bytes + blob


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection with {remaining} byte(s) of a "
                "frame outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(sock: socket.socket, header: dict, payload: Any = None) -> None:
    """Send one frame over *sock* (blocking, complete)."""
    sock.sendall(encode_frame(header, payload))


def recv_message(sock: socket.socket) -> Tuple[dict, Any]:
    """Receive one frame; returns ``(header, payload)``.

    *payload* is ``None`` when the frame carried no blob.  Raises
    :class:`ConnectionClosed` on EOF and :class:`ProtocolError` on a
    malformed frame; ``socket.timeout`` propagates to the caller (the
    transports turn it into lease-expiry handling).
    """
    magic, header_len, blob_len = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r}; peer is not a repro worker "
            f"(or speaks an incompatible protocol version)"
        )
    if header_len + blob_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {header_len + blob_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap; refusing to read it"
        )
    try:
        header = json.loads(_recv_exact(sock, header_len).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict) or "type" not in header:
        raise ProtocolError(f"frame header is not a typed object: {header!r}")
    payload = None
    if blob_len:
        payload = pickle.loads(_recv_exact(sock, blob_len))
    return header, payload


class WorkerError(RuntimeError):
    """An exception reported by a worker over the protocol.

    ``fatal`` means re-leasing the shard elsewhere would deterministically
    hit the same exception (the draws are index-determined), so the
    coordinator re-raises instead of retrying.
    """

    def __init__(
        self,
        message: str,
        exception_type: Optional[str] = None,
        fatal: bool = False,
    ) -> None:
        super().__init__(message)
        self.exception_type = exception_type
        self.fatal = fatal
