"""The coordinator/worker wire protocol (length-prefixed JSON + pickle).

Every message is one *frame*:

====================  =======================================================
bytes                 meaning
====================  =======================================================
``4``                 magic ``b"RPW1"`` (protocol version 1)
``4``                 header length ``H`` (big-endian unsigned)
``4``                 blob length ``B`` (big-endian unsigned)
``H``                 UTF-8 JSON header — always an object with a ``"type"``
                      key plus small scalar fields (ids, ranges, counts)
``B``                 optional pickle blob carrying the Python payload
                      (shard contexts, outcome lists, cache counters)
====================  =======================================================

Control flow lives in the JSON header so a frame is inspectable without
unpickling; bulk payloads (facts, schemas, answer sets) ride the pickle
blob.  Message types:

- ``hello`` / ``welcome`` — connection handshake (worker name, protocol
  version, capability list; mismatched versions are refused loudly);
- ``context`` / ``context_ok`` — ship a :class:`ShardContext` once per
  worker; the worker builds and caches the warm sampling runtime;
- ``run`` — execute draws ``[start, start + count)`` of a context;
- ``heartbeat`` — sent by the worker *while computing* a shard, so the
  coordinator's lease timer distinguishes a slow shard from a dead
  worker;
- ``result`` — the shard's outcomes (blob) plus the worker's cache
  counters;
- ``error`` — a Python exception from the worker; ``fatal`` marks
  errors that re-leasing cannot fix (e.g. a failing repair sequence),
  which the coordinator re-raises instead of retrying;
- ``ping`` / ``pong`` — liveness probe;
- ``drain`` / ``drain_ok`` — ask the worker to drain gracefully: stop
  accepting, finish (or hand back) in-flight shards, then exit its
  serve loop (the frame-level twin of SIGTERM, used by the supervisor);
- ``shutdown`` — ask the worker process to exit its serve loop.

Campaign tagging
----------------
A worker serves many coordinator connections concurrently, each driving
its own campaign.  Frames that belong to a campaign (``context``/``run``
requests and the ``heartbeat``/``result``/``error`` frames answering
them) carry a ``"campaign"`` header field — the coordinator's campaign
id, echoed back by the worker — so either side can attribute any frame
without decoding its blob, and a transport can assert that the result it
receives answers the request it sent.

Capabilities
------------
The handshake negotiates optional frame features: ``hello`` and
``welcome`` both carry a ``"caps"`` list, and a peer only uses a feature
the *other* side advertised.  A PR 4 peer sends no ``caps`` at all, so
every negotiated feature silently downgrades to the version-1 frame
layout — old workers and old coordinators interoperate with new ones
byte-compatibly.  Current capabilities:

- ``"zlib"`` — the sender may zlib-compress a frame's pickle blob when
  it exceeds :data:`COMPRESS_THRESHOLD`; such frames carry
  ``"enc": "zlib"`` (and the raw size in ``"raw"``) in the header.  The
  compression level comes from ``REPRO_COMPRESS_LEVEL`` (default 1:
  measured on the interned outcome streams this protocol actually
  ships, zlib level 1 recovers nearly all of level 6's ratio at a
  fraction of the CPU — see ``scenario_compression`` in the benchmark
  suite);
- ``"arrow"`` — bulk payloads whose shape is columnar (interned answer
  sets, fact-dominated shard contexts) may ship as Arrow IPC record
  batches (``"enc": "arrow"``, see :mod:`repro.distributed.arrowipc`)
  instead of pickle.  Advertised only when ``pyarrow`` is importable;
  payloads the codec cannot represent losslessly fall back to the
  pickle (+zlib) path bit-identically, so the capability never changes
  what a payload *decodes to* — only how it travels;
- ``"intern"`` — result payloads may dictionary-encode repeated answer
  sets (:func:`intern_outcomes`), shipping each distinct answer set
  once plus a code stream;
- ``"campaign"`` — the peer understands (and echoes) campaign tags;
- ``"crc"`` — frames carrying a blob also carry ``"crc"``, the CRC32 of
  the blob *as shipped* (after compression), in the header.  The
  receiver verifies it before touching the bytes; a mismatch raises
  :class:`FrameIntegrityError` — a transient fault (drop the
  connection, re-lease the shard) rather than a pickle traceback deep
  in the payload;
- ``"deadline"`` — ``run`` frames may carry a ``"deadline"`` header
  field holding the shard's *remaining* wall-clock budget in seconds
  (remaining, not absolute: monotonic clocks do not survive a socket).
  The worker rebuilds a local deadline from it and abandons the shard
  with a ``deadline_expired`` error once the budget is gone instead of
  computing draws the coordinator will never merge.  ``error`` frames
  in turn may carry ``"retriable"``, ``"retry_after"`` (seconds, for
  backpressure rejections), ``"deadline_expired"``, and ``"draining"``
  flags so the coordinator can distinguish back-off-and-retry from
  re-lease-elsewhere from give-up;
- ``"metrics"`` — the worker may attach a cumulative telemetry snapshot
  (its ``ocqa_worker_*`` registry, see :mod:`repro.obs.metrics`) to
  ``result`` payloads, and a compact gauge snapshot to ``heartbeat``
  headers, so the parent's ``/metrics`` endpoint shows fleet-wide
  counters without a second scrape path.  A coordinator only offers it
  while telemetry is enabled (``REPRO_METRICS``); when either side
  stays silent, frames are bit-identical to a non-metrics build.

Pickle is trusted here by design: the coordinator and its workers are
one deployment (same codebase, same operator), exactly like the stdlib
``multiprocessing`` transport this subsystem generalizes.  Do not expose
a worker port to untrusted networks.
"""

from __future__ import annotations

import json
import os
import pickle
import socket
import struct
import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from repro.distributed import arrowipc

#: Protocol magic + version; bumped on any frame-layout change.  The
#: capability-negotiated features above deliberately do *not* bump it:
#: a frame sent without them is bit-identical to version 1.
MAGIC = b"RPW1"

#: Frame features this build can speak (negotiated via hello/welcome).
#: ``"arrow"`` appears only when pyarrow is importable, so a peer never
#: negotiates an encoding this process cannot decode.
CAPABILITIES = (("arrow",) if arrowipc.available() else ()) + (
    "campaign",
    "crc",
    "deadline",
    "intern",
    "metrics",
    "zlib",
)

_HEADER = struct.Struct("!4sII")

#: Hard cap on a single frame's payload (header + blob), as a guard
#: against a corrupt or foreign byte stream being read as a length.
MAX_FRAME_BYTES = 1 << 30

#: Pickle blobs at or above this size are zlib-compressed when the peer
#: advertised the ``"zlib"`` capability.  Below it the CPU cost outweighs
#: the shipping win on a LAN: profiling the protocol's actual small
#: frames (headers, heartbeats, sub-8K result bodies) showed deflate
#: overhead without a meaningful byte win, so the threshold sits well
#: above the old 2048.
COMPRESS_THRESHOLD = 8192

#: Default zlib level when ``REPRO_COMPRESS_LEVEL`` is unset.  Level 1
#: keeps ~90% of level 6's ratio on interned outcome streams at a small
#: fraction of the CPU (the streams are dictionary-coded already, so
#: deeper match searching buys almost nothing).
DEFAULT_COMPRESS_LEVEL = 1


def compress_level() -> int:
    """The zlib level frames compress at (``REPRO_COMPRESS_LEVEL``).

    Read per call so tests and operators can retune a live process;
    out-of-range or unparsable values fall back to the default.
    """
    raw = os.environ.get("REPRO_COMPRESS_LEVEL")
    if raw is None:
        return DEFAULT_COMPRESS_LEVEL
    try:
        level = int(raw)
    except ValueError:
        return DEFAULT_COMPRESS_LEVEL
    if not -1 <= level <= 9:
        return DEFAULT_COMPRESS_LEVEL
    return level


class ProtocolError(RuntimeError):
    """The byte stream is not speaking this protocol (bad magic, oversize
    frame, truncated payload, or a non-object header)."""


class ConnectionClosed(ProtocolError):
    """The peer closed the connection mid-frame (or before one)."""


class FrameIntegrityError(ProtocolError):
    """A frame failed its negotiated CRC32 check — the blob's (``crc``)
    or the header's (``hcrc``) — meaning bytes were corrupted in flight.
    A transient fault: the transports treat it exactly like a dropped
    connection — re-lease and reconnect — never as a payload error."""


@dataclass
class FrameStats:
    """Byte accounting for one encoded/decoded frame.

    ``payload_raw`` is the pickle size before compression,
    ``payload_wire`` the blob size actually shipped; they differ only on
    compressed frames.  Transports accumulate these into their
    shipped-byte counters (see
    :meth:`repro.distributed.transport.SocketTransport.stats`).
    """

    frame_bytes: int = 0
    payload_raw: int = 0
    payload_wire: int = 0
    compressed: bool = False
    arrow: bool = False


def negotiated_caps(header: dict) -> frozenset:
    """The capability set a peer advertised in its hello/welcome frame,
    intersected with ours (a feature needs both ends)."""
    peer = header.get("caps") or ()
    if not isinstance(peer, (list, tuple)):
        return frozenset()
    return frozenset(peer) & frozenset(CAPABILITIES)


def encode_frame(
    header: dict,
    payload: Any = None,
    *,
    compress: bool = False,
    threshold: int = COMPRESS_THRESHOLD,
    crc: bool = False,
    arrow: bool = False,
) -> bytes:
    """Serialize one frame (header JSON + optional pickled *payload*).

    See :func:`encode_frame_ex` for the byte-accounting variant and the
    compression/integrity semantics.
    """
    return encode_frame_ex(
        header, payload, compress=compress, threshold=threshold, crc=crc,
        arrow=arrow,
    )[0]


def encode_frame_ex(
    header: dict,
    payload: Any = None,
    *,
    compress: bool = False,
    threshold: int = COMPRESS_THRESHOLD,
    crc: bool = False,
    arrow: bool = False,
) -> Tuple[bytes, FrameStats]:
    """Serialize one frame; returns ``(bytes, stats)``.

    With *arrow*, a payload the Arrow codec can represent losslessly
    (see :mod:`repro.distributed.arrowipc`) ships as an Arrow IPC
    stream under ``"enc": "arrow"`` instead of pickle — only do this
    when the peer advertised the ``"arrow"`` capability.  Payloads the
    codec refuses fall through to the pickle (+zlib) path below,
    bit-identically to a connection that never negotiated arrow.

    With *compress*, a pickle blob of at least *threshold* bytes is
    zlib-compressed (at :func:`compress_level`) and the header gains
    ``"enc": "zlib"`` plus the raw size under ``"raw"`` — only do this
    when the peer advertised the ``"zlib"`` capability.  Compression
    that does not shrink the blob is discarded, so a compressed frame
    is never larger than the plain one.

    With *crc*, a frame carrying a blob also carries the blob's CRC32
    (of the bytes as shipped, i.e. after compression) under ``"crc"`` in
    the header, and every frame carries a header checksum under
    ``"hcrc"``: the CRC32 of the canonical header JSON with the
    ``"hcrc"`` value itself set to ``0``.  A bit flipped anywhere in the
    frame past the fixed prefix is then detected — in the header (which
    could otherwise silently alter a shard's ``start``/``count``) as
    well as in the blob.  Only do this when the peer advertised the
    ``"crc"`` capability; without it the frame stays bit-identical to
    version 1.
    """
    blob = b""
    raw_len = 0
    compressed = False
    arrow_encoded = False
    if payload is not None and arrow:
        candidate = arrowipc.encode_payload(payload)
        if candidate is not None:
            blob = candidate
            raw_len = len(blob)
            header = {**header, "enc": "arrow"}
            arrow_encoded = True
    if payload is not None and not arrow_encoded:
        blob = pickle.dumps(payload)
        raw_len = len(blob)
        if compress and raw_len >= threshold:
            candidate = zlib.compress(blob, compress_level())
            if len(candidate) < raw_len:
                blob = candidate
                header = {**header, "enc": "zlib", "raw": raw_len}
                compressed = True
    if crc and blob:
        header = {**header, "crc": zlib.crc32(blob)}
    if crc:
        probe = {**header, "hcrc": 0}
        canonical = json.dumps(probe, separators=(",", ":")).encode("utf-8")
        probe["hcrc"] = zlib.crc32(canonical)
        header = probe
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    frame = _HEADER.pack(MAGIC, len(header_bytes), len(blob)) + header_bytes + blob
    return frame, FrameStats(
        frame_bytes=len(frame),
        payload_raw=raw_len,
        payload_wire=len(blob),
        compressed=compressed,
        arrow=arrow_encoded,
    )


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    remaining = count
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise ConnectionClosed(
                f"peer closed the connection with {remaining} byte(s) of a "
                "frame outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def send_message(
    sock: socket.socket,
    header: dict,
    payload: Any = None,
    *,
    compress: bool = False,
    crc: bool = False,
    arrow: bool = False,
) -> FrameStats:
    """Send one frame over *sock* (blocking, complete); returns its
    :class:`FrameStats` for byte accounting."""
    frame, stats = encode_frame_ex(
        header, payload, compress=compress, crc=crc, arrow=arrow
    )
    sock.sendall(frame)
    return stats


def recv_message(sock: socket.socket) -> Tuple[dict, Any]:
    """Receive one frame; returns ``(header, payload)``.

    See :func:`recv_message_ex` for the byte-accounting variant.
    """
    header, payload, _stats = recv_message_ex(sock)
    return header, payload


def recv_message_ex(sock: socket.socket) -> Tuple[dict, Any, FrameStats]:
    """Receive one frame; returns ``(header, payload, stats)``.

    *payload* is ``None`` when the frame carried no blob.  Compressed
    frames (``"enc": "zlib"`` in the header) are transparently inflated.
    Raises :class:`ConnectionClosed` on EOF and :class:`ProtocolError`
    on a malformed frame; ``socket.timeout`` propagates to the caller
    (the transports turn it into lease-expiry handling).
    """
    magic, header_len, blob_len = _HEADER.unpack(_recv_exact(sock, _HEADER.size))
    if magic != MAGIC:
        raise ProtocolError(
            f"bad frame magic {magic!r}; peer is not a repro worker "
            f"(or speaks an incompatible protocol version)"
        )
    if header_len + blob_len > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"frame of {header_len + blob_len} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte cap; refusing to read it"
        )
    try:
        header = json.loads(_recv_exact(sock, header_len).decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"undecodable frame header: {exc}") from exc
    if not isinstance(header, dict):
        raise ProtocolError(f"frame header is not a typed object: {header!r}")
    if "hcrc" in header:
        expected_hcrc = header["hcrc"]
        probe = dict(header)  # wire order preserved by json.loads
        probe["hcrc"] = 0
        canonical = json.dumps(probe, separators=(",", ":")).encode("utf-8")
        if (
            not isinstance(expected_hcrc, int)
            or zlib.crc32(canonical) != expected_hcrc
        ):
            raise FrameIntegrityError(
                "frame header failed its CRC32 check; bytes were corrupted "
                "in flight"
            )
    if "type" not in header:
        raise ProtocolError(f"frame header is not a typed object: {header!r}")
    payload = None
    raw_len = 0
    compressed = False
    arrow_encoded = False
    if blob_len:
        blob = _recv_exact(sock, blob_len)
        expected_crc = header.get("crc")
        if expected_crc is not None:
            actual_crc = zlib.crc32(blob)
            if actual_crc != expected_crc:
                raise FrameIntegrityError(
                    f"frame blob failed its CRC32 check (expected "
                    f"{expected_crc}, got {actual_crc}); bytes were "
                    "corrupted in flight"
                )
        encoding = header.get("enc")
        if encoding == "arrow":
            if not arrowipc.available():
                raise ProtocolError(
                    "frame blob is arrow-encoded but pyarrow is not "
                    "installed; the peer negotiated a capability we do "
                    "not speak"
                )
            raw_len = len(blob)
            arrow_encoded = True
            try:
                payload = arrowipc.decode_payload(blob)
            except Exception as exc:
                raise ProtocolError(
                    f"undecodable arrow frame blob: {exc}"
                ) from exc
        else:
            if encoding == "zlib":
                try:
                    blob = zlib.decompress(blob)
                except zlib.error as exc:
                    raise ProtocolError(
                        f"corrupt zlib frame blob: {exc}"
                    ) from exc
                compressed = True
            elif encoding is not None:
                raise ProtocolError(
                    f"frame blob uses unknown encoding {encoding!r}; the "
                    "peer negotiated a capability we do not speak"
                )
            raw_len = len(blob)
            try:
                payload = pickle.loads(blob)
            except Exception as exc:
                # Without the crc capability, corruption lands here;
                # surface it as a protocol (transient) fault, never a
                # raw pickle one.
                raise ProtocolError(f"undecodable frame blob: {exc}") from exc
    stats = FrameStats(
        frame_bytes=_HEADER.size + header_len + blob_len,
        payload_raw=raw_len,
        payload_wire=blob_len,
        compressed=compressed,
        arrow=arrow_encoded,
    )
    return header, payload, stats


# ----------------------------------------------------------------------
# Answer-set interning
# ----------------------------------------------------------------------

def intern_outcomes(outcomes: List[Any]) -> Dict[str, Any]:
    """Dictionary-encode a shard's outcome list.

    Outcome streams are highly repetitive: on cheap draws most repairs
    yield one of a handful of distinct answer sets (often *the* full
    answer set, over and over).  Pickle's memo only collapses duplicates
    by object *identity*, so equal-but-distinct answer sets each ship in
    full.  Interning collapses them by *equality*: the result carries
    each distinct outcome once in ``"table"`` plus an index per draw in
    ``"codes"`` — typically shrinking the shipped payload by the repeat
    factor before compression even runs.

    Outcomes are keyed by their *pickled form*, not ``==``: equality
    would collapse distinct representations that compare equal (``1`` ==
    ``1.0`` == ``True``), silently changing the restored stream's value
    types and breaking the byte-identical-outcomes contract the lease
    table's duplicate drop rests on.  Pickle bytes key exactly what
    would have shipped, so restoration is representation-faithful; the
    dedup win is unaffected in practice because repeated answer sets
    come out of one deterministic evaluation path and pickle
    identically.  :func:`restore_outcomes` inverts the encoding,
    returning one table *reference* per code (safe: the sampling
    pipeline never mutates outcome objects).
    """
    table: List[Any] = []
    codes: List[int] = []
    index_of: Dict[bytes, int] = {}
    for outcome in outcomes:
        key = pickle.dumps(outcome)
        code = index_of.get(key)
        if code is None:
            code = len(table)
            index_of[key] = code
            table.append(outcome)
        codes.append(code)
    return {"table": table, "codes": codes}


def restore_outcomes(encoded: Dict[str, Any]) -> List[Any]:
    """Invert :func:`intern_outcomes`."""
    table = encoded["table"]
    return [table[code] for code in encoded["codes"]]


class WorkerError(RuntimeError):
    """An exception reported by a worker over the protocol.

    ``fatal`` means re-leasing the shard elsewhere would deterministically
    hit the same exception (the draws are index-determined), so the
    coordinator re-raises instead of retrying.  ``retriable`` marks
    overload rejections where the *same* worker will accept the shard
    shortly — ``retry_after`` is its suggested back-off in seconds.
    ``deadline_expired`` marks a shard the worker abandoned because its
    negotiated deadline had already passed.
    """

    def __init__(
        self,
        message: str,
        exception_type: Optional[str] = None,
        fatal: bool = False,
        retriable: bool = False,
        retry_after: Optional[float] = None,
        deadline_expired: bool = False,
    ) -> None:
        super().__init__(message)
        self.exception_type = exception_type
        self.fatal = fatal
        self.retriable = retriable
        self.retry_after = retry_after
        self.deadline_expired = deadline_expired
