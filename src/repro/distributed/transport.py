"""Transports: how the coordinator reaches one worker.

A :class:`WorkerTransport` hides *where* a worker lives behind three
operations — ship a context, run a shard, close.  Implementations:

- :class:`InlineTransport` — the worker is the coordinator's own
  process.  The zero-worker special case, and the fallback the
  coordinator uses to finish a run after every real worker has died.
- :class:`SocketTransport` — a remote worker over TCP, speaking
  :mod:`repro.distributed.protocol`.  Liveness is heartbeat-based: any
  frame (heartbeat or result) resets the lease timer; silence beyond
  the lease timeout means the worker is gone and raises
  :class:`WorkerUnavailable` so the coordinator re-leases the shard.
- :class:`repro.distributed.pool.LocalPoolTransport` — a persistent
  local process over a pipe (the fork-fan-out replacement).

Each socket transport is one *connection* to a (possibly shared)
worker: it tags its frames with the owning coordinator's campaign id,
verifies the worker's echoes, and negotiates the compression/interning
capabilities on its hello — so several coordinators can interleave
heartbeats and results through one multiplexing worker without
confusing each other's campaigns.

Transport failures (:class:`WorkerUnavailable`) are *retryable*: the
shard is re-leased to another worker and, because draws are
index-deterministic, the replacement produces byte-identical outcomes.
Worker-reported *fatal* errors (:class:`~repro.distributed.protocol.WorkerError`
with ``fatal=True``) are not retried — the same draw would fail the
same way anywhere.
"""

from __future__ import annotations

import os
import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.distributed.protocol import (
    CAPABILITIES,
    ConnectionClosed,
    FrameIntegrityError,
    ProtocolError,
    WorkerError,
    negotiated_caps,
    recv_message_ex,
    restore_outcomes,
    send_message,
)
from repro.distributed.worker import ShardContext, ShardExecutor, worker_cache_stats
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.deadline import Deadline, DeadlineExpired

#: ``(outcomes, cache_stats)`` as returned by a transport's run_shard.
ShardOutcome = Tuple[List[Any], Dict[str, Dict[str, int]]]

_CONTEXT_SHIPS = obs_metrics.REGISTRY.counter(
    "ocqa_context_ships_total",
    "Shard contexts shipped to remote workers (cache misses on the "
    "worker side force a re-ship, counted here too).",
)


def _record_pushed_metrics(worker: str, snapshot: Any) -> None:
    """Keep the latest telemetry snapshot a worker pushed (``metrics``
    capability).  Keyed by worker name — cumulative per worker, exactly
    the ``_WORKER_CACHE_STATS`` discipline — so re-pushes never double
    count and campaigns need no discard protocol."""
    if isinstance(snapshot, dict) and snapshot:
        obs_metrics.REGISTRY.record_remote(f"worker:{worker}", snapshot)


def compression_enabled_default() -> bool:
    """Whether new socket transports offer the compression capabilities.

    On by default; ``REPRO_COMPRESS=0`` (or the CLI's ``--no-compress``)
    turns the *offer* off — the wire format then stays byte-identical to
    a PR 4 coordinator's.  Either peer declining is enough, so this
    never needs to match across the deployment.
    """
    return os.environ.get("REPRO_COMPRESS", "1") not in ("0", "false", "no")


def integrity_enabled_default() -> bool:
    """Whether new socket transports offer the ``crc`` frame-integrity
    capability.  On by default (the no-fault overhead is one CRC32 per
    blob; see ``scenario_chaos_overhead``); ``REPRO_CRC=0`` turns the
    offer off, downgrading frames to the un-checksummed layout."""
    return os.environ.get("REPRO_CRC", "1") not in ("0", "false", "no")


class WorkerUnavailable(RuntimeError):
    """The worker behind a transport is unreachable or dead; the shard it
    held should be re-leased elsewhere."""


class WorkerTransport:
    """One worker, wherever it runs."""

    name: str = "worker"
    #: Cleared when the transport observes its worker die; the
    #: coordinator skips dead transports on subsequent ranges.
    alive: bool = True
    #: The campaign tag stamped on this transport's frames; assigned by
    #: the coordinator that owns it (see :meth:`bind_campaign`).
    campaign_id: Optional[str] = None

    def bind_campaign(self, campaign_id: str) -> None:
        """Adopt the owning coordinator's campaign id for frame tags."""
        self.campaign_id = campaign_id

    def ensure_context(
        self, context: ShardContext, timeout: Optional[float] = None
    ) -> None:
        """Ship *context* to the worker (idempotent, cached by id)."""
        raise NotImplementedError

    def run_shard(
        self, context: ShardContext, shard_id: int, start: int, count: int,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> ShardOutcome:
        """Execute one shard; raises :class:`WorkerUnavailable` on death.

        With a *deadline*, the worker abandons the shard once the budget
        is gone (raising
        :class:`repro.service.deadline.DeadlineExpired` here) instead of
        computing draws past it.
        """
        raise NotImplementedError

    def reconnect(self) -> bool:
        """Try to re-establish the worker after it was declared dead.

        Returns ``True`` when the worker answered again (the coordinator
        then resumes leasing shards to it).  The base implementation
        cannot: an inline or pool worker that died is gone.
        """
        return False

    def close(self) -> None:
        """Release the worker (process, socket, ...)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"<{type(self).__name__} {self.name} ({state})>"


class InlineTransport(WorkerTransport):
    """Run shards in the calling process, through the same executor code
    path as real workers — so inline results are byte-identical to
    remote ones by construction."""

    def __init__(self, name: str = "inline") -> None:
        self.name = name
        self.executor = ShardExecutor()

    def ensure_context(
        self, context: ShardContext, timeout: Optional[float] = None
    ) -> None:
        self.executor.ensure_context(context)

    def run_shard(
        self, context: ShardContext, shard_id: int, start: int, count: int,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> ShardOutcome:
        self.ensure_context(context)
        outcomes = self.executor.run_shard(
            context.context_id, start, count, deadline=deadline
        )
        return outcomes, worker_cache_stats()

    def close(self) -> None:
        self.executor.close()


class SocketTransport(WorkerTransport):
    """A remote worker over TCP (see :mod:`repro.distributed.protocol`).

    The connection is opened lazily on first use and kept for the
    transport's lifetime; contexts are shipped once and cached by
    content id on the worker.  While a shard computes, the worker
    heartbeats every few seconds — the receive loop treats any frame as
    liveness and only declares the worker dead after *timeout* seconds
    of silence.

    The hello frame advertises this build's capabilities and the
    welcome's reply fixes the negotiated set (``peer_caps``): against a
    PR 4 worker everything downgrades to the uncompressed, untagged
    version-1 frames.  Shipped-byte counters accumulate in
    :attr:`stats` (``payload_raw_bytes`` vs ``payload_wire_bytes`` is
    the compression win; see ``BENCH_PR5.json``).
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        connect_timeout: float = 10.0,
        compress: Optional[bool] = None,
        integrity: Optional[bool] = None,
        context_timeout: Optional[float] = None,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.name = name or f"{host}:{port}"
        self.connect_timeout = connect_timeout
        self.compress = (
            compression_enabled_default() if compress is None else compress
        )
        self.integrity = (
            integrity_enabled_default() if integrity is None else integrity
        )
        #: Receive timeout while awaiting a ``context_ok``.  ``None``
        #: derives it from the lease timeout the caller passes through
        #: (see :meth:`ensure_context`); set explicitly when context
        #: builds legitimately outlast the lease timeout.
        self.context_timeout = context_timeout
        self._sock: Optional[socket.socket] = None
        self._shipped: set = set()
        self.peer_caps: frozenset = frozenset()
        #: Cumulative byte accounting across the transport's lifetime.
        self.stats: Dict[str, int] = {
            "frames_sent": 0,
            "frames_received": 0,
            "bytes_sent": 0,
            "bytes_received": 0,
            "payload_raw_bytes": 0,
            "payload_wire_bytes": 0,
            "compressed_frames": 0,
            "arrow_frames": 0,
            "integrity_faults": 0,
            "reconnects": 0,
            "stale_frames": 0,
        }

    @classmethod
    def parse(cls, address: str, **kwargs) -> "SocketTransport":
        """Build from a ``host:port`` string (the CLI's ``--worker``)."""
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"worker address {address!r} is not of the form host:port"
            )
        return cls(host, int(port), **kwargs)

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _send(self, sock: socket.socket, header: dict, payload: Any = None) -> None:
        if self.campaign_id is not None and "campaign" in self.peer_caps:
            header = {**header, "campaign": self.campaign_id}
        frame = send_message(
            sock,
            header,
            payload,
            compress="zlib" in self.peer_caps,
            crc="crc" in self.peer_caps,
            arrow="arrow" in self.peer_caps,
        )
        self.stats["frames_sent"] += 1
        self.stats["bytes_sent"] += frame.frame_bytes

    def _recv(self, sock: socket.socket) -> Tuple[dict, Any]:
        try:
            header, payload, frame = recv_message_ex(sock)
        except FrameIntegrityError:
            self.stats["integrity_faults"] += 1
            from repro.diagnostics import record_fault

            record_fault("crc_failures")
            raise
        self.stats["frames_received"] += 1
        self.stats["bytes_received"] += frame.frame_bytes
        self.stats["payload_raw_bytes"] += frame.payload_raw
        self.stats["payload_wire_bytes"] += frame.payload_wire
        if frame.compressed:
            self.stats["compressed_frames"] += 1
        if frame.arrow:
            self.stats["arrow_frames"] += 1
        return header, payload

    def _connection(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            hello: Dict[str, Any] = {"type": "hello"}
            caps = ["campaign"]
            if self.integrity:
                caps.append("crc")
            if self.compress:
                # Arrow rides the same payload-shrinking knob as
                # zlib/intern; CAPABILITIES filters it out when pyarrow
                # is absent.
                caps.extend(("intern", "zlib", "arrow"))
            if obs_metrics.metrics_enabled():
                # Only offered while telemetry is on: a worker never
                # attaches snapshots a parent will not read, and with
                # REPRO_METRICS=0 frames stay bit-identical to a
                # non-metrics build.
                caps.append("metrics")
            hello["caps"] = [cap for cap in CAPABILITIES if cap in caps]
            if self.campaign_id is not None:
                hello["campaign"] = self.campaign_id
            send_message(sock, hello)
            sock.settimeout(self.connect_timeout)
            header, _ = recv_message_ex(sock)[:2]
            if header.get("type") != "welcome":
                raise ProtocolError(
                    f"worker {self.name} answered the hello with "
                    f"{header.get('type')!r}"
                )
            self.peer_caps = negotiated_caps(header)
            if not self.compress:
                self.peer_caps -= {"zlib", "intern", "arrow"}
            if not self.integrity:
                self.peer_caps -= {"crc"}
            if not obs_metrics.metrics_enabled():
                self.peer_caps -= {"metrics"}
        except (OSError, ProtocolError) as exc:
            self._drop()
            raise WorkerUnavailable(
                f"cannot reach worker {self.name}: {exc}"
            ) from exc
        self._sock = sock
        self.alive = True
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._shipped.clear()
        self.peer_caps = frozenset()
        self.alive = False

    # ------------------------------------------------------------------
    # Protocol operations
    # ------------------------------------------------------------------
    def ensure_context(
        self, context: ShardContext, timeout: Optional[float] = None
    ) -> None:
        if context.context_id in self._shipped:
            return
        sock = self._connection()
        # Waiting for context_ok: an explicit context_timeout wins, then
        # the lease timeout the coordinator passed through, then the old
        # connect-derived fallback — so a short lease timeout is no
        # longer silently overridden by a six-fold connect timeout.
        effective = self.context_timeout
        if effective is None:
            effective = timeout
        if effective is None:
            effective = self.connect_timeout * 6
        try:
            self._send(sock, {"type": "context"}, context)
            sock.settimeout(effective)
            while True:
                header, _ = self._recv(sock)
                if self._is_stale(header, expect="context_ok"):
                    continue
                break
        except WorkerError:
            raise
        except (OSError, ProtocolError) as exc:
            # ProtocolError covers ConnectionClosed and a corrupted
            # context_ok frame (FrameIntegrityError) — all transient:
            # drop the socket and let the coordinator reconnect.
            self._drop()
            raise WorkerUnavailable(
                f"worker {self.name} lost while shipping a context: {exc}"
            ) from exc
        if header.get("type") == "error":
            if header.get("draining"):
                self._drop()
                raise WorkerUnavailable(
                    f"worker {self.name} is draining; re-lease the shard"
                )
            raise WorkerError(
                header.get("message", "context build failed"),
                exception_type=header.get("exception"),
                fatal=bool(header.get("fatal", True)),
            )
        if header.get("type") != "context_ok":
            self._drop()
            raise WorkerUnavailable(
                f"worker {self.name} answered a context frame with "
                f"{header.get('type')!r}"
            )
        self._shipped.add(context.context_id)
        _CONTEXT_SHIPS.inc()
        obs_trace.span(
            "context_ship",
            worker=self.name,
            campaign=self.campaign_id,
            context=context.context_id,
        )

    def _is_stale(
        self, header: dict, expect: str, shard_id: Optional[int] = None
    ) -> bool:
        """Whether *header* is a stale frame to skip rather than the
        answer to the request in flight.

        A faulty network can replay frames (the chaos proxy's
        ``duplicate`` fault models middleboxes doing exactly that), so a
        duplicated ``result``/``pong`` may still sit in the stream when
        the next request's answer is awaited.  Such frames are dropped —
        counted in ``stats["stale_frames"]`` — instead of burning the
        connection and a lease attempt on a protocol error.  Heartbeats
        are likewise pure liveness.
        """
        kind = header.get("type")
        if kind == "heartbeat":
            _record_pushed_metrics(self.name, header.get("metrics"))
            return True
        stale = (
            (kind == "pong" and expect != "pong")
            or (kind == "context_ok" and expect != "context_ok")
            or (
                kind == "result"
                and (
                    expect != "result"
                    # A legacy result without a shard tag matches the
                    # request in flight (the pre-chaos behavior).
                    or header.get("shard", shard_id) != shard_id
                )
            )
        )
        if stale:
            self.stats["stale_frames"] += 1
        return stale

    def _check_campaign(self, header: dict) -> None:
        """A frame tagged for a different campaign means the worker is
        confusing its multiplexed connections — fail loudly."""
        tag = header.get("campaign")
        if (
            tag is not None
            and self.campaign_id is not None
            and tag != self.campaign_id
        ):
            raise ProtocolError(
                f"worker {self.name} answered campaign {self.campaign_id!r} "
                f"with a frame for campaign {tag!r}"
            )

    def run_shard(
        self, context: ShardContext, shard_id: int, start: int, count: int,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ) -> ShardOutcome:
        self.ensure_context(context, timeout=timeout)
        sock = self._connection()
        try:
            # At most one retry: the worker answers ``need_context`` when
            # its LRU evicted the (previously shipped) context, we
            # re-ship, and a fresh build cannot be evicted again before
            # this shard runs.
            for _attempt in range(2):
                request: Dict[str, Any] = {
                    "type": "run",
                    "context": context.context_id,
                    "shard": shard_id,
                    "start": start,
                    "count": count,
                }
                if deadline is not None and "deadline" in self.peer_caps:
                    # Ship the *remaining* budget, not the absolute
                    # point: monotonic clocks do not survive a socket.
                    request["deadline"] = round(deadline.remaining(), 6)
                self._send(sock, request)
                reshipped = False
                while True:
                    sock.settimeout(
                        timeout if deadline is None else deadline.clamp(timeout)
                    )
                    header, payload = self._recv(sock)
                    self._check_campaign(header)
                    if self._is_stale(header, expect="result", shard_id=shard_id):
                        continue  # any frame resets the lease timer
                    kind = header.get("type")
                    if kind == "need_context":
                        self._shipped.discard(context.context_id)
                        self.ensure_context(context, timeout=timeout)
                        reshipped = True
                        break
                    if kind == "error":
                        if header.get("draining"):
                            # The worker is gracefully draining: hand the
                            # shard back and treat the worker like a lost
                            # one — the reconnect ladder lets a restarted
                            # replacement rejoin the fleet.
                            self._drop()
                            raise WorkerUnavailable(
                                f"worker {self.name} is draining; "
                                "re-lease the shard"
                            )
                        if header.get("deadline_expired"):
                            raise DeadlineExpired(
                                header.get("message", "shard deadline expired")
                            )
                        retry_after = header.get("retry_after")
                        raise WorkerError(
                            header.get("message", "worker error"),
                            exception_type=header.get("exception"),
                            fatal=bool(header.get("fatal")),
                            retriable=bool(header.get("retriable")),
                            retry_after=(
                                float(retry_after)
                                if retry_after is not None
                                else None
                            ),
                        )
                    if kind == "result":
                        if isinstance(payload, dict):
                            _record_pushed_metrics(
                                self.name, payload.get("metrics")
                            )
                        if "outcomes_interned" in payload:
                            outcomes = restore_outcomes(
                                payload["outcomes_interned"]
                            )
                        else:
                            outcomes = payload["outcomes"]
                        return outcomes, payload.get("cache_stats", {})
                    raise ProtocolError(
                        f"unexpected {kind!r} frame while awaiting a result"
                    )
                if not reshipped:
                    break
            raise ProtocolError(
                f"worker {self.name} still lacks context "
                f"{context.context_id} after a re-ship"
            )
        except WorkerError:
            raise
        except (OSError, ConnectionClosed, ProtocolError, socket.timeout) as exc:
            self._drop()
            raise WorkerUnavailable(
                f"worker {self.name} lost mid-shard: {exc}"
            ) from exc

    def ping(self) -> bool:
        """Round-trip liveness probe (used by the CLI's preflight)."""
        try:
            sock = self._connection()
            self._send(sock, {"type": "ping"})
            sock.settimeout(self.connect_timeout)
            # Bounded skip of stale frames (duplicated results/pongs a
            # faulty network left queued) so one replay cannot fail the
            # liveness probe.
            for _ in range(8):
                header, _ = self._recv(sock)
                if self._is_stale(header, expect="pong"):
                    continue
                return header.get("type") == "pong"
            return False
        except (WorkerUnavailable, OSError, ProtocolError):
            return False

    def reconnect(self) -> bool:
        """Drop any stale socket and probe the worker again.

        The connection is lazy, so a successful ping both proves the
        worker is back and leaves a fresh handshaken socket behind;
        contexts re-ship on first use (``_shipped`` was cleared with the
        old connection).  Counted in ``stats["reconnects"]`` so a rejoin
        is observable in :meth:`Coordinator.transport_report`.
        """
        self._drop()
        if not self.ping():
            return False
        self.stats["reconnects"] += 1
        self.alive = True
        return True

    def drain_worker(self) -> bool:
        """Ask the remote worker to drain gracefully (the frame-level
        twin of SIGTERM; used by the supervisor for rolling restarts).
        Returns ``True`` when the worker acknowledged the drain."""
        try:
            sock = self._connection()
            self._send(sock, {"type": "drain"})
            sock.settimeout(self.connect_timeout)
            for _ in range(8):
                header, _ = self._recv(sock)
                if self._is_stale(header, expect="drain_ok"):
                    continue
                return header.get("type") == "drain_ok"
            return False
        except (WorkerUnavailable, OSError, ProtocolError):
            return False
        finally:
            self.close()

    def shutdown_worker(self) -> None:
        """Ask the remote worker process to exit its serve loop."""
        try:
            sock = self._connection()
            self._send(sock, {"type": "shutdown"})
        except (WorkerUnavailable, OSError):
            pass
        self.close()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._shipped.clear()
        self.peer_caps = frozenset()
