"""Transports: how the coordinator reaches one worker.

A :class:`WorkerTransport` hides *where* a worker lives behind three
operations — ship a context, run a shard, close.  Implementations:

- :class:`InlineTransport` — the worker is the coordinator's own
  process.  The zero-worker special case, and the fallback the
  coordinator uses to finish a run after every real worker has died.
- :class:`SocketTransport` — a remote worker over TCP, speaking
  :mod:`repro.distributed.protocol`.  Liveness is heartbeat-based: any
  frame (heartbeat or result) resets the lease timer; silence beyond
  the lease timeout means the worker is gone and raises
  :class:`WorkerUnavailable` so the coordinator re-leases the shard.
- :class:`repro.distributed.pool.LocalPoolTransport` — a persistent
  local process over a pipe (the fork-fan-out replacement).

Transport failures (:class:`WorkerUnavailable`) are *retryable*: the
shard is re-leased to another worker and, because draws are
index-deterministic, the replacement produces byte-identical outcomes.
Worker-reported *fatal* errors (:class:`~repro.distributed.protocol.WorkerError`
with ``fatal=True``) are not retried — the same draw would fail the
same way anywhere.
"""

from __future__ import annotations

import socket
from typing import Any, Dict, List, Optional, Tuple

from repro.distributed.protocol import (
    ConnectionClosed,
    ProtocolError,
    WorkerError,
    recv_message,
    send_message,
)
from repro.distributed.worker import ShardContext, ShardExecutor, worker_cache_stats

#: ``(outcomes, cache_stats)`` as returned by a transport's run_shard.
ShardOutcome = Tuple[List[Any], Dict[str, Dict[str, int]]]


class WorkerUnavailable(RuntimeError):
    """The worker behind a transport is unreachable or dead; the shard it
    held should be re-leased elsewhere."""


class WorkerTransport:
    """One worker, wherever it runs."""

    name: str = "worker"
    #: Cleared when the transport observes its worker die; the
    #: coordinator skips dead transports on subsequent ranges.
    alive: bool = True

    def ensure_context(self, context: ShardContext) -> None:
        """Ship *context* to the worker (idempotent, cached by id)."""
        raise NotImplementedError

    def run_shard(
        self, context: ShardContext, shard_id: int, start: int, count: int,
        timeout: Optional[float] = None,
    ) -> ShardOutcome:
        """Execute one shard; raises :class:`WorkerUnavailable` on death."""
        raise NotImplementedError

    def close(self) -> None:
        """Release the worker (process, socket, ...)."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "alive" if self.alive else "dead"
        return f"<{type(self).__name__} {self.name} ({state})>"


class InlineTransport(WorkerTransport):
    """Run shards in the calling process, through the same executor code
    path as real workers — so inline results are byte-identical to
    remote ones by construction."""

    def __init__(self, name: str = "inline") -> None:
        self.name = name
        self.executor = ShardExecutor()

    def ensure_context(self, context: ShardContext) -> None:
        self.executor.ensure_context(context)

    def run_shard(
        self, context: ShardContext, shard_id: int, start: int, count: int,
        timeout: Optional[float] = None,
    ) -> ShardOutcome:
        self.ensure_context(context)
        outcomes = self.executor.run_shard(context.context_id, start, count)
        return outcomes, worker_cache_stats()

    def close(self) -> None:
        self.executor.close()


class SocketTransport(WorkerTransport):
    """A remote worker over TCP (see :mod:`repro.distributed.protocol`).

    The connection is opened lazily on first use and kept for the
    transport's lifetime; contexts are shipped once and cached by
    content id on the worker.  While a shard computes, the worker
    heartbeats every few seconds — the receive loop treats any frame as
    liveness and only declares the worker dead after *timeout* seconds
    of silence.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        name: Optional[str] = None,
        connect_timeout: float = 10.0,
    ) -> None:
        self.host = host
        self.port = int(port)
        self.name = name or f"{host}:{port}"
        self.connect_timeout = connect_timeout
        self._sock: Optional[socket.socket] = None
        self._shipped: set = set()

    @classmethod
    def parse(cls, address: str) -> "SocketTransport":
        """Build from a ``host:port`` string (the CLI's ``--worker``)."""
        host, _, port = address.rpartition(":")
        if not host or not port.isdigit():
            raise ValueError(
                f"worker address {address!r} is not of the form host:port"
            )
        return cls(host, int(port))

    # ------------------------------------------------------------------
    # Connection management
    # ------------------------------------------------------------------
    def _connection(self) -> socket.socket:
        if self._sock is not None:
            return self._sock
        try:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            send_message(sock, {"type": "hello"})
            sock.settimeout(self.connect_timeout)
            header, _ = recv_message(sock)
            if header.get("type") != "welcome":
                raise ProtocolError(
                    f"worker {self.name} answered the hello with "
                    f"{header.get('type')!r}"
                )
        except (OSError, ProtocolError) as exc:
            self._drop()
            raise WorkerUnavailable(
                f"cannot reach worker {self.name}: {exc}"
            ) from exc
        self._sock = sock
        self.alive = True
        return sock

    def _drop(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
        self._sock = None
        self._shipped.clear()
        self.alive = False

    # ------------------------------------------------------------------
    # Protocol operations
    # ------------------------------------------------------------------
    def ensure_context(self, context: ShardContext) -> None:
        if context.context_id in self._shipped:
            return
        sock = self._connection()
        try:
            send_message(sock, {"type": "context"}, context)
            sock.settimeout(self.connect_timeout * 6)
            header, _ = recv_message(sock)
        except WorkerError:
            raise
        except (OSError, ConnectionClosed) as exc:
            self._drop()
            raise WorkerUnavailable(
                f"worker {self.name} lost while shipping a context: {exc}"
            ) from exc
        if header.get("type") == "error":
            raise WorkerError(
                header.get("message", "context build failed"),
                exception_type=header.get("exception"),
                fatal=bool(header.get("fatal", True)),
            )
        if header.get("type") != "context_ok":
            self._drop()
            raise WorkerUnavailable(
                f"worker {self.name} answered a context frame with "
                f"{header.get('type')!r}"
            )
        self._shipped.add(context.context_id)

    def run_shard(
        self, context: ShardContext, shard_id: int, start: int, count: int,
        timeout: Optional[float] = None,
    ) -> ShardOutcome:
        self.ensure_context(context)
        sock = self._connection()
        try:
            # At most one retry: the worker answers ``need_context`` when
            # its LRU evicted the (previously shipped) context, we
            # re-ship, and a fresh build cannot be evicted again before
            # this shard runs.
            for _attempt in range(2):
                send_message(
                    sock,
                    {
                        "type": "run",
                        "context": context.context_id,
                        "shard": shard_id,
                        "start": start,
                        "count": count,
                    },
                )
                reshipped = False
                while True:
                    sock.settimeout(timeout)
                    header, payload = recv_message(sock)
                    kind = header.get("type")
                    if kind == "heartbeat":
                        continue  # any frame resets the lease timer
                    if kind == "need_context":
                        self._shipped.discard(context.context_id)
                        self.ensure_context(context)
                        reshipped = True
                        break
                    if kind == "error":
                        raise WorkerError(
                            header.get("message", "worker error"),
                            exception_type=header.get("exception"),
                            fatal=bool(header.get("fatal")),
                        )
                    if kind == "result":
                        return payload["outcomes"], payload.get("cache_stats", {})
                    raise ProtocolError(
                        f"unexpected {kind!r} frame while awaiting a result"
                    )
                if not reshipped:
                    break
            raise ProtocolError(
                f"worker {self.name} still lacks context "
                f"{context.context_id} after a re-ship"
            )
        except WorkerError:
            raise
        except (OSError, ConnectionClosed, ProtocolError, socket.timeout) as exc:
            self._drop()
            raise WorkerUnavailable(
                f"worker {self.name} lost mid-shard: {exc}"
            ) from exc

    def ping(self) -> bool:
        """Round-trip liveness probe (used by the CLI's preflight)."""
        try:
            sock = self._connection()
            send_message(sock, {"type": "ping"})
            sock.settimeout(self.connect_timeout)
            header, _ = recv_message(sock)
            return header.get("type") == "pong"
        except (WorkerUnavailable, OSError, ProtocolError):
            return False

    def shutdown_worker(self) -> None:
        """Ask the remote worker process to exit its serve loop."""
        try:
            sock = self._connection()
            send_message(sock, {"type": "shutdown"})
        except (WorkerUnavailable, OSError):
            pass
        self.close()

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None
        self._shipped.clear()
