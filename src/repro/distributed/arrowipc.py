"""Arrow IPC payload encoding for the worker protocol (optional).

The ``"arrow"`` capability (:mod:`repro.distributed.protocol`) lets two
peers that both have ``pyarrow`` installed ship the protocol's bulk
payloads as Arrow IPC streams instead of pickle blobs.  The win is the
same one :mod:`repro.core.columnar` exploits in-process: the payloads
are *columnar at heart* — an interned outcome table is rows of
same-arity answer tuples, a shard context is dominated by its fact
tuples — so a record batch with dictionary-encoded term columns ships
them without pickle's per-object framing, and a receiving process can
map them without materializing a Python object per cell first.

Three payload shapes are encodable; everything else returns ``None``
from :func:`encode_payload` and rides the pickle path unchanged:

- a worker ``result`` body ``{"outcomes_interned": ..., "cache_stats":
  ...}`` whose interned table holds frozensets of uniform-arity,
  all-string answer tuples and whose cache counters are JSON-safe;
- a bare interned-outcomes dict (``{"table": ..., "codes": ...}``);
- a :class:`~repro.distributed.worker.ShardContext` whose facts carry
  only string terms — the facts become the record batch, the residual
  payload (schema, constraints, query, seed) rides the stream metadata.

Encoding is strictly best-effort and *lossless where it applies*: a
payload either round-trips to an equal value (asserted by the property
suite) or is refused up front.  The capability is only advertised when
:func:`available` is true, so a peer never receives an ``"enc":
"arrow"`` frame it cannot decode.
"""

from __future__ import annotations

import base64
import json
import math
import pickle
from typing import Any, Dict, List, Optional, Tuple

try:  # pragma: no cover - exercised via the availability gate
    import pyarrow as _pa
    import pyarrow.ipc as _pa_ipc
except ImportError:  # pragma: no cover
    _pa = None  # type: ignore[assignment]
    _pa_ipc = None  # type: ignore[assignment]

#: Key under which the JSON envelope rides the IPC schema metadata.
_META_KEY = b"repro_envelope"


def available() -> bool:
    """Whether this build can speak the ``"arrow"`` capability."""
    return _pa is not None


# ----------------------------------------------------------------------
# JSON-safety gate (metadata must round-trip value-faithfully)
# ----------------------------------------------------------------------

def _json_safe(value: Any) -> bool:
    """Whether *value* survives a JSON round trip unchanged (same types,
    same values).  Tuples are rejected — they would come back as lists."""
    if value is None or isinstance(value, (str, bool)):
        return True
    if isinstance(value, int):
        return True
    if isinstance(value, float):
        return math.isfinite(value)
    if isinstance(value, list):
        return all(_json_safe(item) for item in value)
    if isinstance(value, dict):
        return all(
            isinstance(key, str) and _json_safe(item)
            for key, item in value.items()
        )
    return False


# ----------------------------------------------------------------------
# Interned-outcome bodies
# ----------------------------------------------------------------------

def _outcome_columns(
    table: List[Any],
) -> Optional[Tuple[List[int], List[List[str]], int]]:
    """Flatten an interned outcome table to ``(set_codes, term_columns,
    arity)`` or ``None`` when the table is not uniformly columnar."""
    arity: Optional[int] = None
    set_codes: List[int] = []
    columns: List[List[str]] = []
    for code, outcome in enumerate(table):
        if not isinstance(outcome, frozenset):
            return None
        # Deterministic row order within a set: the restored value is a
        # frozenset, so any order restores equal — sorting just keeps
        # the encoded bytes reproducible for a given payload.
        try:
            rows = sorted(outcome)
        except TypeError:
            return None
        for row in rows:
            if type(row) is not tuple or not row:
                return None
            if any(type(term) is not str for term in row):
                return None
            if arity is None:
                arity = len(row)
                columns = [[] for _ in range(arity)]
            elif len(row) != arity:
                return None
            set_codes.append(code)
            for position, term in enumerate(row):
                columns[position].append(term)
    return set_codes, columns, (arity or 0)


def _encode_outcomes(
    interned: Dict[str, Any],
    cache_stats: Optional[Dict[str, Any]],
    wrapped: bool,
) -> Optional[bytes]:
    if not isinstance(interned, dict) or set(interned) != {"table", "codes"}:
        return None
    table, codes = interned["table"], interned["codes"]
    if not isinstance(table, list) or not isinstance(codes, list):
        return None
    if not all(type(code) is int for code in codes):
        return None
    if cache_stats is not None and not (
        isinstance(cache_stats, dict) and _json_safe(cache_stats)
    ):
        return None
    flattened = _outcome_columns(table)
    if flattened is None:
        return None
    set_codes, term_columns, arity = flattened
    envelope = {
        "codec": "outcomes",
        "codes": codes,
        "table_size": len(table),
        "arity": arity,
        "wrapped": wrapped,
    }
    if wrapped:
        envelope["cache_stats"] = cache_stats
    arrays = [_pa.array(set_codes, type=_pa.int32())]
    names = ["set_code"]
    for position, column in enumerate(term_columns):
        arrays.append(
            _pa.array(column, type=_pa.string()).dictionary_encode()
        )
        names.append(f"t{position}")
    batch = _pa.record_batch(arrays, names=names)
    return _write_stream(batch, envelope)


def _decode_outcomes(batch, envelope: Dict[str, Any]) -> Any:
    arity = envelope["arity"]
    table_size = envelope["table_size"]
    set_codes = batch.column("set_code").to_pylist()
    term_columns = [
        batch.column(f"t{position}").to_pylist() for position in range(arity)
    ]
    rows_per_set: List[List[Tuple[str, ...]]] = [[] for _ in range(table_size)]
    for index, code in enumerate(set_codes):
        rows_per_set[code].append(
            tuple(column[index] for column in term_columns)
        )
    table = [frozenset(rows) for rows in rows_per_set]
    interned = {"table": table, "codes": list(envelope["codes"])}
    if not envelope["wrapped"]:
        return interned
    body: Dict[str, Any] = {"outcomes_interned": interned}
    if envelope.get("cache_stats") is not None:
        body["cache_stats"] = envelope["cache_stats"]
    return body


# ----------------------------------------------------------------------
# Shard contexts
# ----------------------------------------------------------------------

def _encode_context(context: Any) -> Optional[bytes]:
    payload = context.payload
    if not isinstance(payload, dict) or "facts" not in payload:
        return None
    facts = payload["facts"]
    if not isinstance(facts, tuple):
        return None
    relations: List[str] = []
    terms: List[List[str]] = []
    for fact in facts:
        values = getattr(fact, "values", None)
        relation = getattr(fact, "relation", None)
        if type(relation) is not str or type(values) is not tuple:
            return None
        if any(type(term) is not str for term in values):
            return None
        relations.append(relation)
        terms.append(list(values))
    residual = {key: value for key, value in payload.items() if key != "facts"}
    residual_blob = pickle.dumps(residual)
    envelope = {
        "codec": "context",
        "context_id": context.context_id,
        "kind": context.kind,
        "residual": base64.b64encode(residual_blob).decode("ascii"),
    }
    batch = _pa.record_batch(
        [
            _pa.array(relations, type=_pa.string()).dictionary_encode(),
            _pa.array(terms, type=_pa.list_(_pa.string())),
        ],
        names=["relation", "terms"],
    )
    return _write_stream(batch, envelope)


def _decode_context(batch, envelope: Dict[str, Any]) -> Any:
    from repro.db.facts import Fact
    from repro.distributed.worker import ShardContext

    relations = batch.column("relation").to_pylist()
    terms = batch.column("terms").to_pylist()
    facts = tuple(
        Fact(relation, tuple(values))
        for relation, values in zip(relations, terms)
    )
    residual = pickle.loads(base64.b64decode(envelope["residual"]))
    return ShardContext(
        context_id=envelope["context_id"],
        kind=envelope["kind"],
        payload={**residual, "facts": facts},
    )


# ----------------------------------------------------------------------
# Stream framing
# ----------------------------------------------------------------------

def _write_stream(batch, envelope: Dict[str, Any]) -> bytes:
    metadata = {_META_KEY: json.dumps(envelope, separators=(",", ":"))}
    schema = batch.schema.with_metadata(metadata)
    sink = _pa.BufferOutputStream()
    with _pa_ipc.new_stream(sink, schema) as writer:
        writer.write_batch(batch)
    return sink.getvalue().to_pybytes()


def encode_payload(payload: Any) -> Optional[bytes]:
    """Encode *payload* as an Arrow IPC stream, or ``None``.

    ``None`` means "not columnar-shippable" — the caller falls back to
    the pickle blob, which is always correct.  Never raises.
    """
    if _pa is None:
        return None
    try:
        if isinstance(payload, dict):
            if set(payload) <= {"outcomes_interned", "cache_stats"} and (
                "outcomes_interned" in payload
            ):
                return _encode_outcomes(
                    payload["outcomes_interned"],
                    payload.get("cache_stats"),
                    wrapped=True,
                )
            if set(payload) == {"table", "codes"}:
                return _encode_outcomes(payload, None, wrapped=False)
            return None
        if type(payload).__name__ == "ShardContext" and hasattr(
            payload, "context_id"
        ):
            return _encode_context(payload)
    except Exception:  # pragma: no cover - any arrow failure → pickle path
        return None
    return None


def decode_payload(blob: bytes) -> Any:
    """Invert :func:`encode_payload`.  Raises on malformed input; the
    protocol layer turns that into a :class:`ProtocolError`."""
    if _pa is None:
        raise RuntimeError(
            "received an arrow-encoded frame but pyarrow is not installed"
        )
    with _pa_ipc.open_stream(_pa.BufferReader(blob)) as reader:
        schema = reader.schema
        batches = list(reader)
    metadata = schema.metadata or {}
    raw = metadata.get(_META_KEY)
    if raw is None:
        raise ValueError("arrow frame blob carries no repro envelope")
    envelope = json.loads(raw.decode("utf-8"))
    batch = (
        batches[0]
        if len(batches) == 1
        else _pa.concat_batches(batches)
        if batches
        else _pa.record_batch([], schema=schema)
    )
    codec = envelope.get("codec")
    if codec == "outcomes":
        return _decode_outcomes(batch, envelope)
    if codec == "context":
        return _decode_context(batch, envelope)
    raise ValueError(f"arrow frame blob uses unknown codec {codec!r}")
