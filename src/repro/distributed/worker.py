"""Worker side of the distributed sampling service.

A worker holds *warm sampling contexts*: for each campaign shipped to it
(a :class:`ShardContext`), it builds the full sampling runtime **once**
— loaded instance in a local scratch backend, violation/conflict
indexes, per-group repairing chains, compiled query — and keeps it
across every shard of that campaign.  This is the persistent-pool
answer to the PR 3 fork fan-out, which re-spawned workers (and rebuilt
nothing-shared state) on every batch.

Draw determinism: a shard is a contiguous range of global draw indices,
and every draw is computed from
:func:`repro.campaign.draw_rng`'s ``(seed, group, index)`` substreams —
so the same shard computed by any worker (or by the coordinator inline)
yields byte-identical outcomes.

One worker, many campaigns: :class:`WorkerServer` runs one thread per
coordinator connection over a single shared :class:`ShardExecutor`, so
one ``ocqa worker --listen`` process serves several coordinators (and
several campaigns) concurrently.  The executor's warm-context cache is
campaign-keyed — a context id *is* a content digest of the campaign —
and thread-safe: campaigns on different contexts compute in parallel,
while two connections racing the *same* campaign context serialize on
that context's lock (a warm runtime is stateful: scratch backend,
chains, memo caches).

Three hosting modes share the same :class:`ShardExecutor`:

- **socket service** — ``ocqa worker --listen host:port`` runs
  :func:`serve`, speaking :mod:`repro.distributed.protocol` to remote
  coordinators (heartbeat frames flow while a shard computes);
- **local pool** — :mod:`repro.distributed.pool` forks persistent
  processes that run :func:`pool_worker_main` over a pipe;
- **inline** — :class:`repro.distributed.transport.InlineTransport`
  executes shards in the coordinator's own process (the zero-worker
  special case, and the fallback when every worker has died).
"""

from __future__ import annotations

import hashlib
import logging
import pickle
import signal
import socket
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaign import SamplingCampaign, draw_rng
from repro.core.errors import FailingSequenceError
from repro.distributed.chaos import FailpointError, failpoint
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.deadline import Deadline, DeadlineExpired
from repro.distributed.protocol import (
    CAPABILITIES,
    MAGIC,
    ConnectionClosed,
    FrameIntegrityError,
    ProtocolError,
    intern_outcomes,
    negotiated_caps,
    recv_message,
    send_message,
)

log = logging.getLogger("repro.distributed.worker")

#: Exception types a worker reports as *fatal*: re-leasing the shard
#: would deterministically fail the same way, so the coordinator should
#: re-raise instead of retrying.
FATAL_EXCEPTIONS: Tuple[type, ...] = (
    FailingSequenceError,
    ValueError,
    TypeError,
    KeyError,
)

#: How many warm campaign contexts one worker keeps (LRU-evicted).
DEFAULT_CONTEXT_LIMIT = 8

#: Shard-executor telemetry lives in :data:`repro.obs.metrics.WORKER_REGISTRY`
#: — the registry a worker pushes to its parent (``metrics`` capability)
#: and serves on its ``--metrics-port`` sidecar.  Keeping it out of the
#: default registry means an in-process worker (tests, local fleets) is
#: counted exactly once on the parent's ``/metrics``: via the push.
_W_SHARDS = obs_metrics.WORKER_REGISTRY.counter(
    "ocqa_worker_shards_total", "Shards executed by this worker process."
)
_W_DRAWS = obs_metrics.WORKER_REGISTRY.counter(
    "ocqa_worker_draws_total", "Draw outcomes computed by this worker process."
)
_W_CONTEXTS_BUILT = obs_metrics.WORKER_REGISTRY.counter(
    "ocqa_worker_contexts_built_total",
    "Warm campaign contexts built (a re-ship after eviction builds again).",
)
_W_CONTEXTS_EVICTED = obs_metrics.WORKER_REGISTRY.counter(
    "ocqa_worker_contexts_evicted_total",
    "Warm campaign contexts closed by LRU pressure.",
)
_W_INFLIGHT = obs_metrics.WORKER_REGISTRY.gauge(
    "ocqa_worker_inflight_shards",
    "Shards currently computing on this worker.",
)


def worker_metrics_snapshot() -> Dict[str, Any]:
    """The cumulative telemetry a worker pushes to its parent."""
    return obs_metrics.WORKER_REGISTRY.snapshot()


class UnknownContextError(KeyError):
    """A shard named a context this executor does not hold (never
    shipped over this hosting mode, or LRU-evicted).  The protocol
    handlers translate exactly this — not arbitrary runtime
    ``KeyError``s — into a ``need_context`` re-ship request."""


@dataclass(frozen=True)
class ShardContext:
    """A self-contained, picklable description of one campaign's draws.

    ``kind`` selects the runtime builder; ``payload`` carries everything
    needed to rebuild the sampling state from scratch on a bare worker:
    the facts, schema/constraints, policy/generator, the query, and the
    campaign seed.  ``context_id`` is a content digest, so a persistent
    worker serving several coordinator runs of the same campaign reuses
    one warm context.
    """

    context_id: str
    kind: str
    payload: Dict[str, Any]

    @staticmethod
    def create(kind: str, payload: Dict[str, Any]) -> "ShardContext":
        try:
            blob = pickle.dumps((kind, payload))
        except Exception as exc:
            raise ValueError(
                f"this campaign cannot be distributed: its {kind} context "
                f"does not pickle ({exc}); run without workers instead"
            ) from exc
        return ShardContext(
            context_id=hashlib.sha256(blob).hexdigest()[:32],
            kind=kind,
            payload=payload,
        )


class _ChainRuntime:
    """Warm runtime for the core estimators (one chain, one query)."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        from repro.db.facts import Database

        self.seed = payload["seed"]
        self.query = payload["query"]
        self.candidate = payload.get("candidate")
        self.allow_failing = bool(payload.get("allow_failing"))
        self.stream_key = payload.get("stream_key", "root")
        self.chain = payload["generator"].chain(Database(payload["facts"]))

    def outcomes(self, start: int, count: int) -> List[Any]:
        from repro.core.sampling import _accept_walk, sample_walk

        outcomes: List[Any] = []
        for index in range(start, start + count):
            walk = sample_walk(
                self.chain, draw_rng(self.seed, self.stream_key, index)
            )
            if not _accept_walk(walk, self.allow_failing):
                outcomes.append(None)
            elif self.candidate is not None:
                outcomes.append(
                    ((),) if self.query.holds(walk.result, self.candidate) else ()
                )
            else:
                outcomes.append(self.query.answers(walk.result))
        return outcomes


class _SamplerRuntime:
    """Warm runtime for the SQL samplers (scratch backend + warm chains).

    The worker always materialises the instance in a local SQLite
    scratch database: draws depend only on the facts and the RNG
    substreams, and query evaluation is backend-agnostic (the
    conformance suite pins sqlite == postgres == memory), so a worker
    needs no connection to the coordinator's database.
    """

    def __init__(self, kind: str, payload: Dict[str, Any]) -> None:
        from repro.db.facts import Database
        from repro.sql.backend import SQLiteBackend

        # check_same_thread=False: the executor runs a context from
        # whichever connection thread holds its per-context lock (one at
        # a time), and closes it from whichever thread evicts it.
        self.backend = SQLiteBackend(check_same_thread=False)
        database = Database(payload["facts"])
        self.backend.load(database, payload["schema"])
        campaign = SamplingCampaign(seed=payload["seed"])
        if kind == "key_sampler":
            from repro.sql.sampler import KeyRepairSampler

            self.sampler = KeyRepairSampler(
                self.backend,
                payload["schema"],
                payload["keys"],
                policy=payload["policy"],
                trust=payload.get("trust") or {},
                reuse_chains=payload.get("reuse_chains", True),
                campaign=campaign,
            )
        else:
            from repro.sql.generic import ConstraintRepairSampler

            generator = payload["generator"]
            self.sampler = ConstraintRepairSampler(
                self.backend,
                payload["schema"],
                payload["constraints"],
                generator_factory=lambda _constraints: generator,
                reuse_chains=payload.get("reuse_chains", True),
                campaign=campaign,
            )
        self.compiled = self.sampler.compile(payload["query"])

    def outcomes(self, start: int, count: int) -> List[Any]:
        return self.sampler.outcomes_for_range(self.compiled, start, count)

    def close(self) -> None:
        self.backend.close()


def _build_runtime(context: ShardContext):
    if context.kind == "chain":
        return _ChainRuntime(context.payload)
    if context.kind in ("key_sampler", "constraint_sampler"):
        return _SamplerRuntime(context.kind, context.payload)
    raise ValueError(f"unknown shard context kind {context.kind!r}")


def worker_cache_stats() -> Dict[str, Dict[str, int]]:
    """This process's shared memo counters (for coordinator aggregation).

    Workers attach these to every ``result`` frame;
    :func:`repro.diagnostics.record_worker_cache_stats` folds them into
    :func:`repro.diagnostics.cache_report`, fixing the long-standing
    blind spot where multiprocess runs reported only the parent's
    counters.
    """
    from repro.diagnostics import _shared_cache_stats

    return _shared_cache_stats()


@dataclass
class _RuntimeSlot:
    """One warm context plus the state needed to share it safely.

    ``lock`` serializes shard execution on the (stateful) runtime;
    ``active`` counts threads currently inside :meth:`ShardExecutor.run_shard`
    so LRU eviction never closes a runtime mid-shard.
    """

    runtime: Any
    lock: Any = field(default_factory=threading.Lock)
    active: int = 0
    #: Connections currently anchored on this context (see
    #: :meth:`ShardExecutor.pin`); pinned slots are never evicted.
    pins: int = 0


class ShardExecutor:
    """Builds, caches, and runs warm shard contexts (all hosting modes).

    Thread-safe: many connection threads share one executor.  The
    warm-context cache is campaign-keyed (a ``context_id`` is a content
    digest of its campaign), with a per-context lock so distinct
    campaigns execute concurrently while same-context shards serialize.
    A context being computed is never LRU-evicted; if every resident
    context is busy the cache temporarily overshoots its limit rather
    than closing a live runtime.
    """

    def __init__(self, context_limit: int = DEFAULT_CONTEXT_LIMIT) -> None:
        self.context_limit = max(1, context_limit)
        self._slots: "OrderedDict[str, _RuntimeSlot]" = OrderedDict()
        #: Builds in flight: waiters block on the event instead of
        #: duplicating an expensive context build.
        self._building: Dict[str, threading.Event] = {}
        self._lock = threading.RLock()
        #: owner (connection token) -> the context it is anchored on.
        self._pinned: Dict[str, str] = {}
        self.shards_run = 0
        self.contexts_built = 0
        #: Contexts closed by LRU pressure (observability).
        self.contexts_evicted = 0

    def has_context(self, context_id: str) -> bool:
        with self._lock:
            return context_id in self._slots

    def ensure_context(self, context: ShardContext) -> None:
        """Build (or refresh the LRU slot of) *context*'s runtime.

        Concurrent calls for the same context build it once: the first
        caller builds, the rest wait on its completion and then re-check
        (re-building themselves only if the first build failed or the
        slot was already evicted again).
        """
        while True:
            with self._lock:
                slot = self._slots.get(context.context_id)
                if slot is not None:
                    self._slots.move_to_end(context.context_id)
                    return
                event = self._building.get(context.context_id)
                if event is None:
                    event = threading.Event()
                    self._building[context.context_id] = event
                    break
            event.wait()
        try:
            failpoint("worker.context_build")
            runtime = _build_runtime(context)
        except BaseException:
            with self._lock:
                del self._building[context.context_id]
            event.set()
            raise
        with self._lock:
            self.contexts_built += 1
            self._slots[context.context_id] = _RuntimeSlot(runtime)
            del self._building[context.context_id]
            self._evict_stale_locked()
        _W_CONTEXTS_BUILT.inc()
        event.set()

    def pin(self, owner: str, context_id: str) -> None:
        """Anchor *owner* (a connection token) on *context_id*.

        A pinned context is exempt from LRU eviction, so the campaign a
        connection is actively driving can never be squeezed out by
        *other* campaigns between its context ship and its run frames —
        without pinning, more concurrent campaigns than the context
        limit would thrash re-ships forever.  Each owner pins at most
        one context (its current campaign); the cache may overshoot its
        limit by up to the number of live connections.
        """
        with self._lock:
            previous = self._pinned.get(owner)
            if previous == context_id:
                return
            if previous is not None:
                stale = self._slots.get(previous)
                if stale is not None:
                    stale.pins -= 1
            slot = self._slots.get(context_id)
            if slot is not None:
                slot.pins += 1
                self._pinned[owner] = context_id
            elif previous is not None:
                del self._pinned[owner]
            self._evict_stale_locked()

    def unpin(self, owner: str) -> None:
        """Release *owner*'s anchor (connection closed)."""
        with self._lock:
            context_id = self._pinned.pop(owner, None)
            if context_id is not None:
                slot = self._slots.get(context_id)
                if slot is not None:
                    slot.pins -= 1
            self._evict_stale_locked()

    def _evict_stale_locked(self) -> None:
        """Close least-recently-used idle contexts beyond the limit.

        Three exemptions keep concurrent campaigns safe and useful: a
        context mid-shard is never closed, a context pinned by a live
        connection is never closed, and the most-recently-used slot is
        never the victim (evicting the context a connection just shipped
        or touched would guarantee an immediate re-ship).  When every
        slot is exempt the cache overshoots its limit until the next
        idle moment.
        """
        while len(self._slots) > self.context_limit:
            newest = next(reversed(self._slots))
            victim_id = next(
                (
                    context_id
                    for context_id, slot in self._slots.items()
                    if slot.active == 0
                    and slot.pins == 0
                    and context_id != newest
                ),
                None,
            )
            if victim_id is None:
                return
            stale = self._slots.pop(victim_id)
            self.contexts_evicted += 1
            _W_CONTEXTS_EVICTED.inc()
            if hasattr(stale.runtime, "close"):
                stale.runtime.close()

    def _abandon_expired(self, start: int, count: int) -> None:
        from repro.diagnostics import record_deadline_expiration

        record_deadline_expiration()
        obs_trace.span("deadline_expired", scope="shard", start=start, count=count)
        raise DeadlineExpired(
            f"abandoning shard [{start}, {start + count}): its deadline "
            "passed before it ran"
        )

    def run_shard(
        self,
        context_id: str,
        start: int,
        count: int,
        deadline: Optional[Deadline] = None,
    ) -> List[Any]:
        """Outcomes for draws ``[start, start + count)`` of a context.

        With a *deadline*, the shard is abandoned (raising
        :class:`repro.service.deadline.DeadlineExpired`) if the budget is
        already gone — checked again after acquiring the context lock,
        since waiting behind another shard on the same warm context can
        consume the whole budget.  Draws nobody will merge are never
        computed.
        """
        if deadline is not None and deadline.expired:
            self._abandon_expired(start, count)
        with self._lock:
            slot = self._slots.get(context_id)
            if slot is None:
                raise UnknownContextError(
                    f"unknown shard context {context_id!r}; the coordinator "
                    "must ship the context before (or with) the first shard"
                )
            self._slots.move_to_end(context_id)
            slot.active += 1
            self.shards_run += 1
        try:
            failpoint("worker.mid_shard")
            failpoint("worker.memory_pressure")
            with slot.lock:
                if deadline is not None and deadline.expired:
                    self._abandon_expired(start, count)
                outcomes = slot.runtime.outcomes(start, count)
            _W_SHARDS.inc()
            _W_DRAWS.inc(len(outcomes))
            return outcomes
        finally:
            with self._lock:
                slot.active -= 1
                self._evict_stale_locked()

    def close(self) -> None:
        with self._lock:
            slots = list(self._slots.values())
            self._slots.clear()
        for slot in slots:
            if hasattr(slot.runtime, "close"):
                slot.runtime.close()


class _Heartbeat:
    """Background thread sending heartbeat frames while a shard computes.

    The coordinator's lease timer treats any frame as liveness, so a
    long shard on a healthy worker never expires its lease, while a
    killed worker stops heartbeating immediately.
    """

    def __init__(
        self, send: Callable[[dict], None], interval: float, header: dict
    ) -> None:
        self._send = send
        self._interval = interval
        self._header = header
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._send(dict(self._header))
            except OSError:
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


class WorkerServer:
    """A socket-serving worker multiplexing many coordinator connections.

    Each accepted connection gets its own thread (and its own negotiated
    capability set), all sharing one :class:`ShardExecutor` — so a single
    ``ocqa worker`` process serves several coordinators/campaigns
    concurrently, with warm contexts shared across connections by
    content id.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: Optional[str] = None,
        heartbeat_interval: float = 2.0,
        context_limit: int = DEFAULT_CONTEXT_LIMIT,
        max_inflight: int = 0,
        drain_timeout: float = 30.0,
    ) -> None:
        self.executor = ShardExecutor(context_limit)
        self.heartbeat_interval = heartbeat_interval
        #: At most this many shards compute at once (0 = unbounded).
        #: Beyond it, run frames are answered with a retriable
        #: ``WorkerBusy`` error instead of queueing without bound —
        #: backpressure the coordinator turns into a short back-off.
        self.max_inflight = max(0, int(max_inflight))
        #: How long a graceful drain waits for in-flight shards before
        #: giving up and shutting down anyway.
        self.drain_timeout = drain_timeout
        self._shutdown = threading.Event()
        self._draining = threading.Event()
        self._drain_started: Optional[float] = None
        self._active_cond = threading.Condition()
        self._active_shards = 0
        self._conn_lock = threading.Lock()
        self._connections: List[socket.socket] = []
        #: Malformed/undecodable frames observed, by kind — mirrored into
        #: the diagnostics fault registry (``cache_report``'s ``faults``
        #: section) so a worker silently shedding connections is visible.
        self.fault_counts: Dict[str, int] = {}
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(16)
        self.host, self.port = self._sock.getsockname()[:2]
        self.name = name or f"worker@{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Accept coordinator connections until a ``shutdown`` frame.

        Connections are served concurrently, one daemon thread each;
        ``shutdown`` (from any coordinator) stops the accept loop, closes
        every open connection, and drains the threads.  A *drain*
        (SIGTERM, SIGINT, or a ``drain`` frame — see
        :meth:`request_drain`) instead stops accepting, finishes the
        shards already in flight, answers new runs with a retriable
        ``draining`` error so the coordinator re-leases them elsewhere,
        and then shuts down cleanly.
        """
        self._sock.settimeout(0.5)
        threads: List[threading.Thread] = []
        try:
            while not self._shutdown.is_set() and not self._draining.is_set():
                try:
                    conn, _addr = self._sock.accept()
                except socket.timeout:
                    continue
                except OSError:
                    break
                with self._conn_lock:
                    self._connections.append(conn)
                thread = threading.Thread(
                    target=self._connection_main, args=(conn,), daemon=True
                )
                thread.start()
                # Prune finished connection threads so a long-lived
                # worker's bookkeeping stays bounded by *live* connections.
                threads = [t for t in threads if t.is_alive()]
                threads.append(thread)
        finally:
            self._sock.close()
            if self._draining.is_set() and not self._shutdown.is_set():
                self._await_drain()
                self._shutdown.set()
            self._close_connections()
            for thread in threads:
                thread.join(timeout=2.0)
            self.executor.close()

    def start(self) -> threading.Thread:
        """Serve on a daemon thread (for tests and embedded workers)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        self._shutdown.set()

    def request_drain(self) -> None:
        """Begin a graceful drain (idempotent, async-signal-safe).

        Sets a flag the serve loop and request handlers observe; the
        actual waiting happens on the serving thread, never here — this
        is callable from a signal handler.
        """
        if not self._draining.is_set():
            self._drain_started = time.monotonic()
            self._draining.set()

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def _await_drain(self) -> None:
        """Wait (bounded) for in-flight shards, then record the drain."""
        give_up = time.monotonic() + self.drain_timeout
        with self._active_cond:
            while self._active_shards and time.monotonic() < give_up:
                self._active_cond.wait(0.2)
            abandoned = self._active_shards
        duration = time.monotonic() - (self._drain_started or time.monotonic())
        from repro.diagnostics import record_drain

        record_drain(duration)
        if abandoned:
            log.warning(
                "%s: drain timed out after %.1fs with %d shard(s) still "
                "in flight",
                self.name,
                duration,
                abandoned,
            )
        else:
            log.info("%s: drained in %.3fs", self.name, duration)

    def _begin_shard(self) -> bool:
        """Claim an in-flight slot; ``False`` means shed (worker busy)."""
        with self._active_cond:
            if self.max_inflight and self._active_shards >= self.max_inflight:
                return False
            self._active_shards += 1
            _W_INFLIGHT.set(self._active_shards)
            return True

    def _end_shard(self) -> None:
        with self._active_cond:
            self._active_shards -= 1
            _W_INFLIGHT.set(self._active_shards)
            self._active_cond.notify_all()

    def _record_fault(self, kind: str) -> None:
        from repro.diagnostics import record_fault

        with self._conn_lock:
            self.fault_counts[kind] = self.fault_counts.get(kind, 0) + 1
        record_fault(kind)
        obs_trace.span("worker_fault", worker=self.name, kind=kind)

    def _close_connections(self) -> None:
        with self._conn_lock:
            connections, self._connections = self._connections, []
        for conn in connections:
            try:
                conn.close()
            except OSError:
                pass

    def _connection_main(self, conn: socket.socket) -> None:
        try:
            self._serve_connection(conn)
        finally:
            with self._conn_lock:
                if conn in self._connections:
                    self._connections.remove(conn)
            try:
                conn.close()
            except OSError:
                pass

    def _recv_request(self, conn: socket.socket):
        """One request frame, polling for shutdown while the line is idle.

        The 1s timeout applies only *between* frames (a one-byte peek):
        once a frame starts arriving the read blocks until it is whole,
        so a slow coordinator can never be cut off mid-frame.
        """
        while True:
            if self._shutdown.is_set():
                raise ConnectionClosed("worker shutting down")
            conn.settimeout(1.0)
            try:
                first = conn.recv(1, socket.MSG_PEEK)
            except socket.timeout:
                continue
            if not first:
                raise ConnectionClosed("coordinator closed the connection")
            conn.settimeout(None)
            return recv_message(conn)

    def _serve_connection(self, conn: socket.socket) -> None:
        send_lock = threading.Lock()
        #: This connection's pin token: the campaign it is actively
        #: driving stays anchored in the executor's cache until the
        #: connection moves to another campaign or closes.
        owner = f"conn-{id(conn)}"
        #: Negotiated per connection by the hello frame; empty (the PR 4
        #: wire format) until then.
        caps = frozenset()

        def send(header: dict, payload: Any = None) -> None:
            # Sends must never inherit the 1s shutdown-poll timeout the
            # receive side uses: a large result frame over a slow link
            # may legitimately take longer than that to transmit.
            with send_lock:
                conn.settimeout(None)
                send_message(
                    conn,
                    header,
                    payload,
                    compress="zlib" in caps,
                    crc="crc" in caps,
                    arrow="arrow" in caps,
                )

        frames_served = 0
        try:
            while not self._shutdown.is_set():
                try:
                    header, payload = self._recv_request(conn)
                except ConnectionClosed:
                    return
                except (ProtocolError, OSError) as exc:
                    # A malformed/undecodable frame leaves the byte stream
                    # unsynchronized, so the connection must close — but
                    # *silently*: answering with a fatal error frame would
                    # kill a campaign mid-await, whereas a plain close is
                    # the transient WorkerUnavailable the coordinator
                    # re-leases and reconnects through.  Count and log it
                    # instead of letting the thread die unobserved.
                    if isinstance(exc, FrameIntegrityError):
                        kind = "crc_failures"
                    elif isinstance(exc, ProtocolError):
                        kind = "malformed_frames"
                    else:
                        kind = "connection_errors"
                    self._record_fault(kind)
                    log.warning(
                        "%s: dropping connection %s after %d good frame(s): "
                        "%s (%s)",
                        self.name,
                        owner,
                        frames_served,
                        exc,
                        kind,
                    )
                    return
                frames_served += 1
                if header["type"] == "hello":
                    caps = negotiated_caps(header)
                try:
                    if not self._handle(header, payload, send, caps, owner):
                        return
                except FailpointError as exc:
                    # Injected crash (e.g. after-result-before-ack): die
                    # the way a real crash would — connection dropped, no
                    # ack — so the coordinator re-leases and reconnects.
                    self._record_fault("injected_crashes")
                    log.warning(
                        "%s: connection %s crashed by %s", self.name, owner, exc
                    )
                    return
                except OSError:
                    return
                except (ProtocolError, KeyError, TypeError) as exc:
                    # A request frame that parsed but is structurally
                    # wrong (corrupted-in-flight header on a legacy
                    # connection, missing/mistyped fields): malformed,
                    # not a campaign error — drop the connection silently
                    # so the coordinator re-leases, exactly like an
                    # undecodable frame above.
                    self._record_fault("malformed_frames")
                    log.warning(
                        "%s: dropping connection %s after a malformed "
                        "request frame: %s",
                        self.name,
                        owner,
                        exc,
                    )
                    return
        finally:
            self.executor.unpin(owner)

    def _handle(
        self,
        header: dict,
        payload: Any,
        send: Callable[..., None],
        caps: frozenset,
        owner: str = "",
    ) -> bool:
        kind = header["type"]
        #: Echoed on every frame answering a campaign-tagged request, so
        #: the coordinator can attribute heartbeats/results per campaign.
        campaign = header.get("campaign")

        def tagged(reply: dict) -> dict:
            if campaign is not None and "campaign" in caps:
                reply["campaign"] = campaign
            return reply

        if kind == "hello":
            send(
                {
                    "type": "welcome",
                    "name": self.name,
                    "magic": MAGIC.decode("ascii"),
                    "caps": list(CAPABILITIES),
                }
            )
            return True
        if kind == "ping":
            send(tagged({"type": "pong", "name": self.name}))
            return True
        if kind in ("context", "run") and self._draining.is_set():
            # Draining: hand the shard back instead of starting new work.
            # The transports turn a ``draining`` error into
            # ``WorkerUnavailable`` — the coordinator re-leases the shard
            # on another worker and retries this one through its
            # reconnect ladder, which is exactly how a rolling restart
            # rejoins the fleet.
            send(
                tagged(
                    {
                        "type": "error",
                        "message": f"worker {self.name} is draining",
                        "exception": "WorkerDraining",
                        "fatal": False,
                        "retriable": True,
                        "draining": True,
                    }
                )
            )
            return True
        if kind == "context":
            try:
                self.executor.ensure_context(payload)
                if owner:
                    self.executor.pin(owner, payload.context_id)
                send(tagged({"type": "context_ok", "context": payload.context_id}))
            except Exception as exc:  # report, keep serving
                send(
                    tagged(
                        {
                            "type": "error",
                            "message": f"context build failed: {exc}",
                            "exception": type(exc).__name__,
                            # A context that cannot build here cannot
                            # build anywhere (deterministic payload) —
                            # except an injected crash, which re-shipping
                            # heals.
                            "fatal": not isinstance(exc, FailpointError),
                        }
                    )
                )
            return True
        if kind == "run":
            shard_id = header.get("shard", -1)
            # Extract the required fields up front: a run frame missing
            # one (header corrupted in flight but still valid JSON) is a
            # malformed frame — the KeyError propagates to the connection
            # loop's malformed-frame handler instead of masquerading as a
            # fatal campaign error.
            context_id = header["context"]
            start = header["start"]
            count = header["count"]
            if owner:
                # Anchor the campaign this connection is driving, so
                # other campaigns' builds cannot evict it mid-run.
                self.executor.pin(owner, context_id)
            if not self.executor.has_context(context_id):
                # The context was LRU-evicted (or never shipped over this
                # connection): ask the coordinator to re-ship instead of
                # failing the shard.
                send(tagged({"type": "need_context", "context": context_id}))
                return True
            # The shard's remaining wall-clock budget, negotiated via the
            # "deadline" capability.  A non-positive budget is an
            # already-expired deadline: the executor abandons the shard
            # before computing a single draw.
            budget = header.get("deadline")
            deadline: Optional[Deadline] = None
            if budget is not None:
                deadline = (
                    Deadline.after(budget) if budget > 0 else Deadline(0.0)
                )
            if not self._begin_shard():
                from repro.diagnostics import record_shed

                record_shed("worker_busy")
                send(
                    tagged(
                        {
                            "type": "error",
                            "message": (
                                f"worker {self.name} at its in-flight limit "
                                f"({self.max_inflight} shard(s))"
                            ),
                            "exception": "WorkerBusy",
                            "fatal": False,
                            "retriable": True,
                            "retry_after": 0.25,
                        }
                    )
                )
                return True
            try:
                heartbeat = tagged({"type": "heartbeat", "shard": shard_id})
                if "metrics" in caps and obs_metrics.metrics_enabled():
                    # A cumulative snapshot rides every heartbeat, so a
                    # parent scraped mid-shard shows live fleet counters.
                    # Keep-latest on the parent makes re-sends harmless.
                    heartbeat["metrics"] = worker_metrics_snapshot()
                with _Heartbeat(send, self.heartbeat_interval, heartbeat):
                    try:
                        outcomes = self.executor.run_shard(
                            context_id, start, count, deadline=deadline
                        )
                    except UnknownContextError:
                        # Evicted between has_context and run_shard
                        # (another campaign's build squeezed it out): same
                        # recovery.  Application KeyErrors from the
                        # runtime fall through to the error frame below
                        # instead.
                        send(
                            tagged(
                                {"type": "need_context", "context": context_id}
                            )
                        )
                        return True
                    except DeadlineExpired as exc:
                        send(
                            tagged(
                                {
                                    "type": "error",
                                    "message": str(exc),
                                    "exception": "DeadlineExpired",
                                    "fatal": False,
                                    "deadline_expired": True,
                                }
                            )
                        )
                        return True
                    except Exception as exc:
                        send(
                            tagged(
                                {
                                    "type": "error",
                                    "message": f"{type(exc).__name__}: {exc}",
                                    "exception": type(exc).__name__,
                                    "fatal": isinstance(exc, FATAL_EXCEPTIONS),
                                }
                            )
                        )
                        return True
                # The after-result-before-ack crash window: outcomes
                # computed but never sent.  Re-leasing recomputes them
                # byte-identically.
                failpoint("worker.after_result")
                body: Dict[str, Any]
                if "intern" in caps:
                    body = {
                        "outcomes_interned": intern_outcomes(outcomes),
                        "cache_stats": worker_cache_stats(),
                    }
                else:
                    body = {
                        "outcomes": outcomes,
                        "cache_stats": worker_cache_stats(),
                    }
                if "metrics" in caps and obs_metrics.metrics_enabled():
                    # Attached only when the coordinator advertised the
                    # capability: a non-advertising peer's result frames
                    # stay bit-identical to a non-metrics build.
                    body["metrics"] = worker_metrics_snapshot()
                send(
                    tagged(
                        {
                            "type": "result",
                            "shard": shard_id,
                            "count": len(outcomes),
                            "worker": self.name,
                        }
                    ),
                    body,
                )
            finally:
                self._end_shard()
            return True
        if kind == "drain":
            self.request_drain()
            send(tagged({"type": "drain_ok", "name": self.name}))
            return True
        if kind == "shutdown":
            self.shutdown()
            return False
        send(
            tagged(
                {
                    "type": "error",
                    "message": f"unknown message type {kind!r}",
                    "fatal": True,
                }
            )
        )
        return True


def serve(
    host: str,
    port: int,
    *,
    name: Optional[str] = None,
    announce: bool = True,
    context_limit: int = DEFAULT_CONTEXT_LIMIT,
    max_inflight: int = 0,
    drain_timeout: float = 30.0,
    metrics_port: Optional[int] = None,
) -> None:
    """Run a blocking socket worker (the ``ocqa worker`` entry point).

    SIGTERM and SIGINT are routed into the graceful-drain path: the
    worker stops accepting, finishes (or hands back) the shards in
    flight, and returns — so the process exits 0 instead of dying with
    a traceback mid-shard.  Handlers are installed only when running on
    the main thread (``signal.signal`` refuses elsewhere).

    With *metrics_port*, a sidecar HTTP listener on the same host serves
    ``GET /metrics`` (Prometheus text) — the worker's control socket
    speaks the framed shard protocol, so scrapes need their own port.
    """
    server = WorkerServer(
        host,
        port,
        name=name,
        context_limit=context_limit,
        max_inflight=max_inflight,
        drain_timeout=drain_timeout,
    )
    sidecar = None
    if metrics_port is not None:
        from repro.obs.httpd import MetricsServer

        sidecar = MetricsServer(host, metrics_port).start()

    def _drain_signal(signum: int, frame: Any) -> None:
        server.request_drain()

    # Handlers go in BEFORE the announce line: supervisors treat the
    # announce as "ready" and may SIGTERM any moment after it.
    installed = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            installed.append((sig, signal.signal(sig, _drain_signal)))
        except ValueError:  # not the main thread (embedded/test use)
            break
    if announce:
        print(
            f"repro worker {server.name} listening on "
            f"{server.host}:{server.port}",
            flush=True,
        )
        if sidecar is not None:
            metrics_host, bound_port = sidecar.address
            print(
                f"repro worker {server.name} metrics on "
                f"http://{metrics_host}:{bound_port}/metrics",
                flush=True,
            )
    try:
        server.serve_forever()
    finally:
        for sig, previous in installed:
            signal.signal(sig, previous)
        if sidecar is not None:
            sidecar.close()
    if announce and server.draining:
        print(f"repro worker {server.name} drained", flush=True)


def pool_worker_main(conn) -> None:
    """Serve shard requests over a :mod:`multiprocessing` pipe.

    The persistent local-pool counterpart of the socket server: one
    message in, one message out, same :class:`ShardExecutor` underneath.
    Messages are ``(kind, data)`` tuples; see
    :class:`repro.distributed.pool.LocalPoolTransport` for the sender.
    """
    executor = ShardExecutor()
    try:
        while True:
            try:
                kind, data = conn.recv()
            except (EOFError, OSError):
                return
            if kind == "shutdown":
                conn.send(("bye", None))
                return
            try:
                if kind == "context":
                    executor.ensure_context(data)
                    conn.send(("context_ok", data.context_id))
                elif kind == "run":
                    if not executor.has_context(data["context"]):
                        # LRU-evicted context: request a re-ship rather
                        # than failing the shard.
                        conn.send(("need_context", data["context"]))
                        continue
                    budget = data.get("deadline")
                    deadline = None
                    if budget is not None:
                        deadline = (
                            Deadline.after(budget)
                            if budget > 0
                            else Deadline(0.0)
                        )
                    outcomes = executor.run_shard(
                        data["context"],
                        data["start"],
                        data["count"],
                        deadline=deadline,
                    )
                    result = {
                        "shard": data["shard"],
                        "outcomes": outcomes,
                        "cache_stats": worker_cache_stats(),
                    }
                    if obs_metrics.metrics_enabled():
                        result["metrics"] = worker_metrics_snapshot()
                    conn.send(("result", result))
                elif kind == "ping":
                    conn.send(("pong", None))
                else:
                    conn.send(
                        ("error", {"message": f"unknown request {kind!r}", "fatal": True})
                    )
            except DeadlineExpired as exc:
                conn.send(
                    (
                        "error",
                        {
                            "message": str(exc),
                            "exception": "DeadlineExpired",
                            "fatal": False,
                            "deadline_expired": True,
                        },
                    )
                )
            except Exception as exc:
                conn.send(
                    (
                        "error",
                        {
                            "message": f"{type(exc).__name__}: {exc}",
                            "exception": type(exc).__name__,
                            "fatal": isinstance(exc, FATAL_EXCEPTIONS),
                        },
                    )
                )
    finally:
        executor.close()
