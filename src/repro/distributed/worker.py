"""Worker side of the distributed sampling service.

A worker holds *warm sampling contexts*: for each campaign shipped to it
(a :class:`ShardContext`), it builds the full sampling runtime **once**
— loaded instance in a local scratch backend, violation/conflict
indexes, per-group repairing chains, compiled query — and keeps it
across every shard of that campaign.  This is the persistent-pool
answer to the PR 3 fork fan-out, which re-spawned workers (and rebuilt
nothing-shared state) on every batch.

Draw determinism: a shard is a contiguous range of global draw indices,
and every draw is computed from
:func:`repro.campaign.draw_rng`'s ``(seed, group, index)`` substreams —
so the same shard computed by any worker (or by the coordinator inline)
yields byte-identical outcomes.

Three hosting modes share the same :class:`ShardExecutor`:

- **socket service** — ``ocqa worker --listen host:port`` runs
  :func:`serve`, speaking :mod:`repro.distributed.protocol` to a remote
  coordinator (heartbeat frames flow while a shard computes);
- **local pool** — :mod:`repro.distributed.pool` forks persistent
  processes that run :func:`pool_worker_main` over a pipe;
- **inline** — :class:`repro.distributed.transport.InlineTransport`
  executes shards in the coordinator's own process (the zero-worker
  special case, and the fallback when every worker has died).
"""

from __future__ import annotations

import hashlib
import pickle
import socket
import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.campaign import SamplingCampaign, draw_rng
from repro.core.errors import FailingSequenceError
from repro.distributed.protocol import (
    MAGIC,
    ConnectionClosed,
    ProtocolError,
    recv_message,
    send_message,
)

#: Exception types a worker reports as *fatal*: re-leasing the shard
#: would deterministically fail the same way, so the coordinator should
#: re-raise instead of retrying.
FATAL_EXCEPTIONS: Tuple[type, ...] = (
    FailingSequenceError,
    ValueError,
    TypeError,
    KeyError,
)

#: How many warm campaign contexts one worker keeps (LRU-evicted).
DEFAULT_CONTEXT_LIMIT = 8


@dataclass(frozen=True)
class ShardContext:
    """A self-contained, picklable description of one campaign's draws.

    ``kind`` selects the runtime builder; ``payload`` carries everything
    needed to rebuild the sampling state from scratch on a bare worker:
    the facts, schema/constraints, policy/generator, the query, and the
    campaign seed.  ``context_id`` is a content digest, so a persistent
    worker serving several coordinator runs of the same campaign reuses
    one warm context.
    """

    context_id: str
    kind: str
    payload: Dict[str, Any]

    @staticmethod
    def create(kind: str, payload: Dict[str, Any]) -> "ShardContext":
        try:
            blob = pickle.dumps((kind, payload))
        except Exception as exc:
            raise ValueError(
                f"this campaign cannot be distributed: its {kind} context "
                f"does not pickle ({exc}); run without workers instead"
            ) from exc
        return ShardContext(
            context_id=hashlib.sha256(blob).hexdigest()[:32],
            kind=kind,
            payload=payload,
        )


class _ChainRuntime:
    """Warm runtime for the core estimators (one chain, one query)."""

    def __init__(self, payload: Dict[str, Any]) -> None:
        from repro.db.facts import Database

        self.seed = payload["seed"]
        self.query = payload["query"]
        self.candidate = payload.get("candidate")
        self.allow_failing = bool(payload.get("allow_failing"))
        self.stream_key = payload.get("stream_key", "root")
        self.chain = payload["generator"].chain(Database(payload["facts"]))

    def outcomes(self, start: int, count: int) -> List[Any]:
        from repro.core.sampling import _accept_walk, sample_walk

        outcomes: List[Any] = []
        for index in range(start, start + count):
            walk = sample_walk(
                self.chain, draw_rng(self.seed, self.stream_key, index)
            )
            if not _accept_walk(walk, self.allow_failing):
                outcomes.append(None)
            elif self.candidate is not None:
                outcomes.append(
                    ((),) if self.query.holds(walk.result, self.candidate) else ()
                )
            else:
                outcomes.append(self.query.answers(walk.result))
        return outcomes


class _SamplerRuntime:
    """Warm runtime for the SQL samplers (scratch backend + warm chains).

    The worker always materialises the instance in a local SQLite
    scratch database: draws depend only on the facts and the RNG
    substreams, and query evaluation is backend-agnostic (the
    conformance suite pins sqlite == postgres == memory), so a worker
    needs no connection to the coordinator's database.
    """

    def __init__(self, kind: str, payload: Dict[str, Any]) -> None:
        from repro.db.facts import Database
        from repro.sql.backend import SQLiteBackend

        # check_same_thread=False: inline executors run inside whichever
        # coordinator driver thread holds the shard (one at a time), and
        # close from the main thread.
        self.backend = SQLiteBackend(check_same_thread=False)
        database = Database(payload["facts"])
        self.backend.load(database, payload["schema"])
        campaign = SamplingCampaign(seed=payload["seed"])
        if kind == "key_sampler":
            from repro.sql.sampler import KeyRepairSampler

            self.sampler = KeyRepairSampler(
                self.backend,
                payload["schema"],
                payload["keys"],
                policy=payload["policy"],
                trust=payload.get("trust") or {},
                reuse_chains=payload.get("reuse_chains", True),
                campaign=campaign,
            )
        else:
            from repro.sql.generic import ConstraintRepairSampler

            generator = payload["generator"]
            self.sampler = ConstraintRepairSampler(
                self.backend,
                payload["schema"],
                payload["constraints"],
                generator_factory=lambda _constraints: generator,
                reuse_chains=payload.get("reuse_chains", True),
                campaign=campaign,
            )
        self.compiled = self.sampler.compile(payload["query"])

    def outcomes(self, start: int, count: int) -> List[Any]:
        return self.sampler.outcomes_for_range(self.compiled, start, count)

    def close(self) -> None:
        self.backend.close()


def _build_runtime(context: ShardContext):
    if context.kind == "chain":
        return _ChainRuntime(context.payload)
    if context.kind in ("key_sampler", "constraint_sampler"):
        return _SamplerRuntime(context.kind, context.payload)
    raise ValueError(f"unknown shard context kind {context.kind!r}")


def worker_cache_stats() -> Dict[str, Dict[str, int]]:
    """This process's shared memo counters (for coordinator aggregation).

    Workers attach these to every ``result`` frame;
    :func:`repro.diagnostics.record_worker_cache_stats` folds them into
    :func:`repro.diagnostics.cache_report`, fixing the long-standing
    blind spot where multiprocess runs reported only the parent's
    counters.
    """
    from repro.diagnostics import _shared_cache_stats

    return _shared_cache_stats()


class ShardExecutor:
    """Builds, caches, and runs warm shard contexts (all hosting modes)."""

    def __init__(self, context_limit: int = DEFAULT_CONTEXT_LIMIT) -> None:
        self.context_limit = max(1, context_limit)
        self._runtimes: "OrderedDict[str, Any]" = OrderedDict()
        self.shards_run = 0
        self.contexts_built = 0

    def has_context(self, context_id: str) -> bool:
        return context_id in self._runtimes

    def ensure_context(self, context: ShardContext) -> None:
        """Build (or refresh the LRU slot of) *context*'s runtime."""
        runtime = self._runtimes.get(context.context_id)
        if runtime is not None:
            self._runtimes.move_to_end(context.context_id)
            return
        runtime = _build_runtime(context)
        self.contexts_built += 1
        self._runtimes[context.context_id] = runtime
        while len(self._runtimes) > self.context_limit:
            _, stale = self._runtimes.popitem(last=False)
            if hasattr(stale, "close"):
                stale.close()

    def run_shard(self, context_id: str, start: int, count: int) -> List[Any]:
        """Outcomes for draws ``[start, start + count)`` of a context."""
        runtime = self._runtimes.get(context_id)
        if runtime is None:
            raise KeyError(
                f"unknown shard context {context_id!r}; the coordinator must "
                "ship the context before (or with) the first shard"
            )
        self._runtimes.move_to_end(context_id)
        self.shards_run += 1
        return runtime.outcomes(start, count)

    def close(self) -> None:
        for runtime in self._runtimes.values():
            if hasattr(runtime, "close"):
                runtime.close()
        self._runtimes.clear()


class _Heartbeat:
    """Background thread sending heartbeat frames while a shard computes.

    The coordinator's lease timer treats any frame as liveness, so a
    long shard on a healthy worker never expires its lease, while a
    killed worker stops heartbeating immediately.
    """

    def __init__(
        self, send: Callable[[dict], None], interval: float, shard_id: int
    ) -> None:
        self._send = send
        self._interval = interval
        self._shard_id = shard_id
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        while not self._stop.wait(self._interval):
            try:
                self._send({"type": "heartbeat", "shard": self._shard_id})
            except OSError:
                return

    def __enter__(self) -> "_Heartbeat":
        self._thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self._stop.set()
        self._thread.join()


class WorkerServer:
    """A socket-serving worker (one coordinator connection at a time)."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        name: Optional[str] = None,
        heartbeat_interval: float = 2.0,
        context_limit: int = DEFAULT_CONTEXT_LIMIT,
    ) -> None:
        self.executor = ShardExecutor(context_limit)
        self.heartbeat_interval = heartbeat_interval
        self._shutdown = threading.Event()
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(8)
        self.host, self.port = self._sock.getsockname()[:2]
        self.name = name or f"worker@{self.host}:{self.port}"

    # ------------------------------------------------------------------
    # Serving
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Accept coordinator connections until a ``shutdown`` frame."""
        self._sock.settimeout(0.5)
        try:
            while not self._shutdown.is_set():
                try:
                    conn, _addr = self._sock.accept()
                except socket.timeout:
                    continue
                try:
                    self._serve_connection(conn)
                finally:
                    conn.close()
        finally:
            self._sock.close()
            self.executor.close()

    def start(self) -> threading.Thread:
        """Serve on a daemon thread (for tests and embedded workers)."""
        thread = threading.Thread(target=self.serve_forever, daemon=True)
        thread.start()
        return thread

    def shutdown(self) -> None:
        self._shutdown.set()

    def _serve_connection(self, conn: socket.socket) -> None:
        conn.settimeout(None)
        send_lock = threading.Lock()

        def send(header: dict, payload: Any = None) -> None:
            with send_lock:
                send_message(conn, header, payload)

        while not self._shutdown.is_set():
            try:
                header, payload = recv_message(conn)
            except ConnectionClosed:
                return
            except ProtocolError as exc:
                try:
                    send({"type": "error", "message": str(exc), "fatal": True})
                except OSError:
                    pass
                return
            try:
                if not self._handle(header, payload, send):
                    return
            except OSError:
                return

    def _handle(
        self, header: dict, payload: Any, send: Callable[..., None]
    ) -> bool:
        kind = header["type"]
        if kind == "hello":
            send(
                {
                    "type": "welcome",
                    "name": self.name,
                    "magic": MAGIC.decode("ascii"),
                }
            )
            return True
        if kind == "ping":
            send({"type": "pong", "name": self.name})
            return True
        if kind == "context":
            try:
                self.executor.ensure_context(payload)
                send({"type": "context_ok", "context": payload.context_id})
            except Exception as exc:  # report, keep serving
                send(
                    {
                        "type": "error",
                        "message": f"context build failed: {exc}",
                        "exception": type(exc).__name__,
                        "fatal": True,
                    }
                )
            return True
        if kind == "run":
            shard_id = header.get("shard", -1)
            if not self.executor.has_context(header["context"]):
                # The context was LRU-evicted (or never shipped over this
                # connection): ask the coordinator to re-ship instead of
                # failing the shard.
                send({"type": "need_context", "context": header["context"]})
                return True
            with _Heartbeat(send, self.heartbeat_interval, shard_id):
                try:
                    outcomes = self.executor.run_shard(
                        header["context"], header["start"], header["count"]
                    )
                except Exception as exc:
                    send(
                        {
                            "type": "error",
                            "message": f"{type(exc).__name__}: {exc}",
                            "exception": type(exc).__name__,
                            "fatal": isinstance(exc, FATAL_EXCEPTIONS),
                        }
                    )
                    return True
            send(
                {
                    "type": "result",
                    "shard": shard_id,
                    "count": len(outcomes),
                    "worker": self.name,
                },
                {"outcomes": outcomes, "cache_stats": worker_cache_stats()},
            )
            return True
        if kind == "shutdown":
            self.shutdown()
            return False
        send(
            {
                "type": "error",
                "message": f"unknown message type {kind!r}",
                "fatal": True,
            }
        )
        return True


def serve(
    host: str,
    port: int,
    *,
    name: Optional[str] = None,
    announce: bool = True,
) -> None:
    """Run a blocking socket worker (the ``ocqa worker`` entry point)."""
    server = WorkerServer(host, port, name=name)
    if announce:
        print(
            f"repro worker {server.name} listening on "
            f"{server.host}:{server.port}",
            flush=True,
        )
    server.serve_forever()


def pool_worker_main(conn) -> None:
    """Serve shard requests over a :mod:`multiprocessing` pipe.

    The persistent local-pool counterpart of the socket server: one
    message in, one message out, same :class:`ShardExecutor` underneath.
    Messages are ``(kind, data)`` tuples; see
    :class:`repro.distributed.pool.LocalPoolTransport` for the sender.
    """
    executor = ShardExecutor()
    try:
        while True:
            try:
                kind, data = conn.recv()
            except (EOFError, OSError):
                return
            if kind == "shutdown":
                conn.send(("bye", None))
                return
            try:
                if kind == "context":
                    executor.ensure_context(data)
                    conn.send(("context_ok", data.context_id))
                elif kind == "run":
                    if not executor.has_context(data["context"]):
                        # LRU-evicted context: request a re-ship rather
                        # than failing the shard.
                        conn.send(("need_context", data["context"]))
                        continue
                    outcomes = executor.run_shard(
                        data["context"], data["start"], data["count"]
                    )
                    conn.send(
                        (
                            "result",
                            {
                                "shard": data["shard"],
                                "outcomes": outcomes,
                                "cache_stats": worker_cache_stats(),
                            },
                        )
                    )
                elif kind == "ping":
                    conn.send(("pong", None))
                else:
                    conn.send(
                        ("error", {"message": f"unknown request {kind!r}", "fatal": True})
                    )
            except Exception as exc:
                conn.send(
                    (
                        "error",
                        {
                            "message": f"{type(exc).__name__}: {exc}",
                            "exception": type(exc).__name__,
                            "fatal": isinstance(exc, FATAL_EXCEPTIONS),
                        },
                    )
                )
    finally:
        executor.close()
