"""Persistent local worker pool (the fork fan-out, made resident).

PR 1's ``sample_many`` fanned batches across a fresh ``fork`` pool on
*every* batch: each batch paid process spawn, chain re-pickling, and
cold caches.  A :class:`LocalPoolTransport` instead forks one worker
process per slot **once per campaign** and keeps it serving shards over
a pipe — warm chains, warm violation indexes, warm memo caches — which
is exactly the "per-group persistent worker pools" item from the
roadmap.  The processes run
:func:`repro.distributed.worker.pool_worker_main`, the same
:class:`~repro.distributed.worker.ShardExecutor` as the socket service,
so local-pool, remote, and inline execution are byte-identical.

Liveness: a pool worker that dies mid-shard (killed, OOM, crashed) is
detected by ``Process.is_alive`` inside the result wait loop and
reported as :class:`~repro.distributed.transport.WorkerUnavailable`, so
the coordinator re-leases its shard — the distributed failure semantics,
at local scale.  A dead pool worker stays dead (``reconnect`` is the
base class's ``False``): its process is gone, so the coordinator's
degradation ladder steps past it rather than backing off on it.
"""

from __future__ import annotations

import multiprocessing
import time
from typing import Any, Dict, List, Optional, Tuple

from repro.distributed.protocol import WorkerError
from repro.distributed.transport import (
    WorkerTransport,
    WorkerUnavailable,
    _record_pushed_metrics,
)
from repro.distributed.worker import ShardContext, pool_worker_main
from repro.service.deadline import Deadline, DeadlineExpired


def _pool_context():
    """The multiprocessing start context (fork where available).

    ``fork`` keeps the pool cheap to start and lets workers inherit the
    imported modules; platforms without it (or sandboxes that refuse to
    fork) make :meth:`LocalPoolTransport.spawn` raise
    :class:`WorkerUnavailable`, and callers fall back to inline
    execution.
    """
    try:
        return multiprocessing.get_context("fork")
    except ValueError as exc:  # pragma: no cover - platform-dependent
        raise WorkerUnavailable(f"no fork start method: {exc}") from exc


class LocalPoolTransport(WorkerTransport):
    """One persistent local worker process, driven over a pipe."""

    def __init__(self, index: int = 0) -> None:
        context = _pool_context()
        self._conn, child_conn = context.Pipe(duplex=True)
        try:
            self._process = context.Process(
                target=pool_worker_main,
                args=(child_conn,),
                daemon=True,
                name=f"repro-pool-{index}",
            )
            self._process.start()
        except OSError as exc:
            raise WorkerUnavailable(f"cannot fork a pool worker: {exc}") from exc
        finally:
            child_conn.close()
        self.name = f"pool-{index}(pid={self._process.pid})"
        self._shipped: set = set()

    @classmethod
    def spawn(cls, workers: int) -> List["LocalPoolTransport"]:
        """Start *workers* persistent pool processes."""
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        pool: List[LocalPoolTransport] = []
        try:
            for index in range(workers):
                pool.append(cls(index))
        except WorkerUnavailable:
            for transport in pool:
                transport.close()
            raise
        return pool

    @property
    def pid(self) -> Optional[int]:
        """The worker process id (tests kill it to exercise re-leasing)."""
        return self._process.pid

    # ------------------------------------------------------------------
    # Request/response over the pipe
    # ------------------------------------------------------------------
    def _request(
        self, kind: str, data: Any, timeout: Optional[float]
    ) -> Tuple[str, Any]:
        if not self.alive:
            raise WorkerUnavailable(f"pool worker {self.name} already dead")
        try:
            self._conn.send((kind, data))
        except (OSError, ValueError) as exc:
            self._mark_dead()
            raise WorkerUnavailable(
                f"pool worker {self.name} pipe broken: {exc}"
            ) from exc
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            try:
                if self._conn.poll(0.2):
                    return self._conn.recv()
            except (EOFError, OSError) as exc:
                self._mark_dead()
                raise WorkerUnavailable(
                    f"pool worker {self.name} died mid-request: {exc}"
                ) from exc
            if not self._process.is_alive():
                self._mark_dead()
                raise WorkerUnavailable(
                    f"pool worker {self.name} exited mid-request "
                    f"(exitcode {self._process.exitcode})"
                )
            if deadline is not None and time.monotonic() > deadline:
                self._mark_dead()
                raise WorkerUnavailable(
                    f"pool worker {self.name} silent past the "
                    f"{timeout}s lease timeout; assuming it hung"
                )

    def _mark_dead(self) -> None:
        self.alive = False
        try:
            self._conn.close()
        except OSError:
            pass
        if self._process.is_alive():
            self._process.terminate()

    # ------------------------------------------------------------------
    # WorkerTransport protocol
    # ------------------------------------------------------------------
    def ensure_context(
        self, context: ShardContext, timeout: Optional[float] = None
    ) -> None:
        if context.context_id in self._shipped:
            return
        kind, data = self._request("context", context, timeout=None)
        if kind == "error":
            raise WorkerError(
                data.get("message", "context build failed"),
                exception_type=data.get("exception"),
                fatal=bool(data.get("fatal", True)),
            )
        if kind != "context_ok":
            self._mark_dead()
            raise WorkerUnavailable(
                f"pool worker {self.name} answered a context with {kind!r}"
            )
        self._shipped.add(context.context_id)

    def run_shard(
        self, context: ShardContext, shard_id: int, start: int, count: int,
        timeout: Optional[float] = None,
        deadline: Optional[Deadline] = None,
    ):
        self.ensure_context(context)
        request = {
            "context": context.context_id,
            "shard": shard_id,
            "start": start,
            "count": count,
        }
        if deadline is not None:
            request["deadline"] = round(deadline.remaining(), 6)
        kind, data = self._request("run", request, timeout=timeout)
        if kind == "need_context":
            # The worker's LRU evicted this (previously shipped) context;
            # re-ship once and retry.
            self._shipped.discard(context.context_id)
            self.ensure_context(context)
            if deadline is not None:
                request["deadline"] = round(deadline.remaining(), 6)
            kind, data = self._request("run", request, timeout=timeout)
        if kind == "error":
            if data.get("deadline_expired"):
                raise DeadlineExpired(data.get("message", "deadline expired"))
            raise WorkerError(
                data.get("message", "worker error"),
                exception_type=data.get("exception"),
                fatal=bool(data.get("fatal")),
            )
        if kind != "result":
            self._mark_dead()
            raise WorkerUnavailable(
                f"pool worker {self.name} answered a shard with {kind!r}"
            )
        _record_pushed_metrics(self.name, data.get("metrics"))
        return data["outcomes"], data.get("cache_stats", {})

    def close(self) -> None:
        if self.alive and self._process.is_alive():
            try:
                self._conn.send(("shutdown", None))
                self._process.join(timeout=2.0)
            except (OSError, ValueError):
                pass
        if self._process.is_alive():
            self._process.terminate()
            self._process.join(timeout=2.0)
        self.alive = False
        try:
            self._conn.close()
        except OSError:
            pass
