"""Deterministic fault injection for the distributed sampling service.

Chaos engineering, reproducibly: every fault this module injects —
dropped/delayed/duplicated/truncated/bit-flipped frames, stalled
heartbeats, crashes at the nastiest code points — is driven by a seeded
:class:`FaultPlan`, so a red soak run is a *seed*, not an anecdote.
Re-run with the same seed and the same faults hit the same frames.

Three layers:

- **Failpoints** — named crash sites compiled into the production code
  (``worker.mid_shard``, ``worker.after_result``,
  ``worker.context_build``, ``campaign.save_checkpoint``, and the
  overload sites ``worker.memory_pressure``, ``service.queue_flood``,
  ``service.slow_consumer``).  Armed via the ``REPRO_FAILPOINTS``
  environment variable (inherited by pool forks and worker
  subprocesses) or :func:`set_failpoint`; a triggered failpoint raises
  :class:`FailpointError`, hard-exits the process, or (``sleep``)
  stalls the call site — exercising exactly the recovery paths
  (re-lease, reconnect, checkpoint quarantine, load shedding,
  deadline expiry) that clean unit tests cannot reach.
- **:class:`ChaosProxy`** — a frame-aware TCP proxy between a
  coordinator and a worker.  It parses protocol frames off the wire and,
  per the plan's schedule, passes, delays, duplicates, truncates,
  bit-flips, or drops them — or stalls the stream long enough to expire
  a heartbeat lease.  The hostile-network simulator behind the chaos
  soak.
- **:class:`ChaosTransport`** — an in-process transport wrapper
  injecting transport-level faults (:class:`WorkerUnavailable`, delays)
  on the plan's schedule, for socket-free coordinator tests.

The invariant all of this exists to prove: a campaign's estimates are
byte-identical to the serial run under *any* fault schedule — the
``(eps, delta)`` guarantee holds through a hostile network, not just on
the happy path.
"""

from __future__ import annotations

import logging
import os
import random
import socket
import struct
import threading
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

log = logging.getLogger(__name__)

#: Environment variable arming failpoints in workers and subprocesses.
#: Comma-separated ``name[:hit][=action]`` specs — ``hit`` is the 1-based
#: invocation that triggers (default 1), ``action`` is ``raise``
#: (default), ``exit`` (hard ``os._exit``, a real crash), or
#: ``sleepN`` (stall the call site for ``N`` seconds — default 1 — the
#: slow-consumer/memory-pressure simulator that turns a failpoint into
#: an overload fault instead of a crash).
FAILPOINTS_ENV_VAR = "REPRO_FAILPOINTS"


class FailpointError(RuntimeError):
    """An armed failpoint fired (the injected, *transient* crash)."""


@dataclass
class _Failpoint:
    """One armed crash site: fires on invocation number *hit*."""

    name: str
    hit: int = 1
    action: str = "raise"
    calls: int = 0
    fired: bool = False


_FAILPOINTS: Dict[str, _Failpoint] = {}
_FAILPOINT_LOCK = threading.Lock()


def parse_failpoints(spec: str) -> Dict[str, _Failpoint]:
    """Parse a ``REPRO_FAILPOINTS`` spec string.

    ``"worker.mid_shard,campaign.save_checkpoint:2=exit"`` arms
    ``worker.mid_shard`` to raise on its first invocation and
    ``campaign.save_checkpoint`` to hard-exit on its second.
    """
    out: Dict[str, _Failpoint] = {}
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        action = "raise"
        if "=" in part:
            part, action = part.rsplit("=", 1)
        hit = 1
        if ":" in part:
            part, hit_str = part.rsplit(":", 1)
            hit = int(hit_str)
        if action not in ("raise", "exit") and not _parse_sleep_action(action):
            raise ValueError(
                f"failpoint action must be 'raise', 'exit', or 'sleep[N]', "
                f"got {action!r}"
            )
        out[part] = _Failpoint(name=part, hit=max(1, hit), action=action)
    return out


def _parse_sleep_action(action: str) -> Optional[float]:
    """``sleep`` / ``sleepN`` -> the stall duration (None if not a sleep)."""
    if not action.startswith("sleep"):
        return None
    suffix = action[len("sleep"):]
    if not suffix:
        return 1.0
    try:
        seconds = float(suffix)
    except ValueError:
        return None
    return seconds if seconds > 0 else None


def set_failpoint(name: str, hit: int = 1, action: str = "raise") -> None:
    """Arm *name* to fire on its *hit*-th invocation (test/chaos API)."""
    if action not in ("raise", "exit") and not _parse_sleep_action(action):
        raise ValueError(
            f"failpoint action must be 'raise', 'exit', or 'sleep[N]', "
            f"got {action!r}"
        )
    with _FAILPOINT_LOCK:
        _FAILPOINTS[name] = _Failpoint(name=name, hit=max(1, hit), action=action)


def clear_failpoints() -> None:
    """Disarm every failpoint (test isolation)."""
    with _FAILPOINT_LOCK:
        _FAILPOINTS.clear()


def failpoint_fired(name: str) -> bool:
    """Whether the armed failpoint *name* has fired (test assertion)."""
    with _FAILPOINT_LOCK:
        point = _FAILPOINTS.get(name)
        return bool(point and point.fired)


def failpoint(name: str) -> None:
    """The crash site: a no-op unless *name* is armed.

    Compiled into the nasty moments of worker/executor/campaign code; the
    empty-registry fast path is one dict lookup, cheap enough for per-shard
    and per-checkpoint call sites (measured by ``scenario_chaos_overhead``).
    """
    if not _FAILPOINTS:
        return
    with _FAILPOINT_LOCK:
        point = _FAILPOINTS.get(name)
        if point is None:
            return
        point.calls += 1
        if point.fired or point.calls != point.hit:
            return
        point.fired = True
        action = point.action
    log.warning("failpoint %s firing (action=%s)", name, action)
    if action == "exit":
        os._exit(23)
    stall = _parse_sleep_action(action)
    if stall is not None:
        time.sleep(stall)
        return
    raise FailpointError(f"injected failpoint {name!r} fired")


def _arm_from_env() -> None:
    spec = os.environ.get(FAILPOINTS_ENV_VAR, "")
    if not spec:
        return
    with _FAILPOINT_LOCK:
        for name, point in parse_failpoints(spec).items():
            _FAILPOINTS.setdefault(name, point)


_arm_from_env()


# ----------------------------------------------------------------------
# The fault plan
# ----------------------------------------------------------------------

#: Frame-level fault classes a :class:`ChaosProxy` can inject.
FAULT_KINDS = (
    "corrupt",  # flip one bit in the frame (CRC/parse must catch it)
    "truncate",  # ship a partial frame, then cut the connection
    "flap",  # drop the connection without forwarding
    "delay",  # hold the frame briefly, then forward
    "duplicate",  # forward the frame twice
    "stall",  # go silent past the heartbeat lease, then resume
)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible schedule of injected faults.

    ``rates`` maps fault kinds (:data:`FAULT_KINDS`) to per-frame
    probabilities; unlisted kinds never fire.  Every consumer derives a
    named :class:`FaultStream` via :meth:`stream` — two runs with the
    same seed draw identical schedules stream by stream, which is what
    makes a failing chaos run reproducible from its printed seed.
    """

    seed: int
    rates: Tuple[Tuple[str, float], ...] = ()
    delay_seconds: float = 0.05
    stall_seconds: float = 3.0

    @classmethod
    def create(
        cls,
        seed: int,
        rates: Optional[Dict[str, float]] = None,
        delay_seconds: float = 0.05,
        stall_seconds: float = 3.0,
    ) -> "FaultPlan":
        """Build a plan from a ``{kind: probability}`` mapping."""
        chosen = dict(rates if rates is not None else DEFAULT_FAULT_RATES)
        unknown = set(chosen) - set(FAULT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown fault kind(s) {sorted(unknown)}; "
                f"expected a subset of {FAULT_KINDS}"
            )
        return cls(
            seed=seed,
            rates=tuple(sorted(chosen.items())),
            delay_seconds=delay_seconds,
            stall_seconds=stall_seconds,
        )

    def stream(self, name: str) -> "FaultStream":
        """The deterministic fault stream owned by *name*."""
        return FaultStream(self, name)

    def describe(self) -> str:
        """One line identifying this plan (printed for red-run repro)."""
        rates = ", ".join(f"{kind}={rate}" for kind, rate in self.rates)
        return f"FaultPlan(seed={self.seed}, {rates})"


#: A moderately hostile network: most frames pass, every class fires.
DEFAULT_FAULT_RATES: Dict[str, float] = {
    "corrupt": 0.04,
    "truncate": 0.02,
    "flap": 0.02,
    "delay": 0.06,
    "duplicate": 0.04,
    "stall": 0.01,
}


class FaultStream:
    """One named consumer's deterministic sequence of fault decisions."""

    def __init__(self, plan: FaultPlan, name: str) -> None:
        self.plan = plan
        self.name = name
        self._rng = random.Random(f"{plan.seed}:{name}")

    def next_fault(self) -> Optional[str]:
        """The fault to inject on the next frame (``None`` = pass)."""
        roll = self._rng.random()
        cumulative = 0.0
        for kind, rate in self.plan.rates:
            cumulative += rate
            if roll < cumulative:
                return kind
        return None

    def randrange(self, stop: int) -> int:
        """A deterministic index draw (e.g. which bit to flip)."""
        return self._rng.randrange(stop)


# ----------------------------------------------------------------------
# The chaos socket proxy
# ----------------------------------------------------------------------

_FRAME_HEADER = struct.Struct("!4sII")


class ChaosProxy:
    """A frame-aware TCP proxy injecting a :class:`FaultPlan`'s faults.

    Sits between a coordinator and one worker: coordinators connect to
    :attr:`port` instead of the worker's, and every protocol frame in
    either direction is individually passed, delayed, duplicated,
    truncated, bit-flipped, or dropped per the plan — with connection
    flaps and heartbeat stalls thrown in.  Fault decisions come from a
    per-connection-per-direction :class:`FaultStream`, so the schedule
    is reproducible from the plan seed alone.

    Injected-fault counts accumulate in :attr:`injected` (by kind) —
    the chaos soak asserts every class actually fired.
    """

    def __init__(
        self,
        upstream_host: str,
        upstream_port: int,
        plan: FaultPlan,
        name: str = "chaos",
    ) -> None:
        self.upstream = (upstream_host, int(upstream_port))
        self.plan = plan
        self.name = name
        self.injected: Dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._count_lock = threading.Lock()
        self._shutdown = threading.Event()
        self._conn_count = 0
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind(("127.0.0.1", 0))
        self._sock.listen(16)
        self.host, self.port = self._sock.getsockname()[:2]
        self._accept_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ChaosProxy":
        self._accept_thread = threading.Thread(
            target=self._accept_loop, daemon=True
        )
        self._accept_thread.start()
        return self

    def close(self) -> None:
        self._shutdown.set()
        try:
            self._sock.close()
        except OSError:
            pass
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "ChaosProxy":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def injected_total(self) -> int:
        with self._count_lock:
            return sum(self.injected.values())

    def injected_kinds(self) -> List[str]:
        """Fault classes that actually fired at least once."""
        with self._count_lock:
            return sorted(kind for kind, n in self.injected.items() if n)

    def _record(self, kind: str) -> None:
        with self._count_lock:
            self.injected[kind] = self.injected.get(kind, 0) + 1

    # ------------------------------------------------------------------
    # Pumping
    # ------------------------------------------------------------------
    def _accept_loop(self) -> None:
        self._sock.settimeout(0.5)
        while not self._shutdown.is_set():
            try:
                downstream, _addr = self._sock.accept()
            except socket.timeout:
                continue
            except OSError:
                return
            try:
                upstream = socket.create_connection(self.upstream, timeout=10)
            except OSError:
                downstream.close()
                continue
            index = self._conn_count
            self._conn_count += 1
            for direction, source, sink in (
                ("c2w", downstream, upstream),
                ("w2c", upstream, downstream),
            ):
                stream = self.plan.stream(f"conn{index}:{direction}")
                threading.Thread(
                    target=self._pump,
                    args=(source, sink, stream),
                    daemon=True,
                ).start()

    def _read_frame(self, source: socket.socket) -> Optional[bytes]:
        """One whole protocol frame off *source* (None on EOF/teardown)."""
        try:
            prefix = self._recv_exact(source, _FRAME_HEADER.size)
            if prefix is None:
                return None
            _magic, header_len, blob_len = _FRAME_HEADER.unpack(prefix)
            body = self._recv_exact(source, header_len + blob_len)
            if body is None:
                return None
            return prefix + body
        except OSError:
            return None

    @staticmethod
    def _recv_exact(source: socket.socket, count: int) -> Optional[bytes]:
        chunks = []
        remaining = count
        while remaining:
            chunk = source.recv(remaining)
            if not chunk:
                return None
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _pump(
        self, source: socket.socket, sink: socket.socket, stream: FaultStream
    ) -> None:
        try:
            while not self._shutdown.is_set():
                frame = self._read_frame(source)
                if frame is None:
                    return
                fault = stream.next_fault()
                if fault is None:
                    sink.sendall(frame)
                    continue
                self._record(fault)
                if fault == "corrupt":
                    # Flip one bit past the fixed prefix: the header JSON
                    # or the blob — CRC/parse validation must catch it.
                    mutable = bytearray(frame)
                    span = len(mutable) - _FRAME_HEADER.size
                    offset = _FRAME_HEADER.size + stream.randrange(max(span, 1))
                    mutable[offset] ^= 1 << stream.randrange(8)
                    sink.sendall(bytes(mutable))
                elif fault == "truncate":
                    sink.sendall(frame[: max(1, len(frame) // 2)])
                    return
                elif fault == "flap":
                    return
                elif fault == "delay":
                    time.sleep(self.plan.delay_seconds)
                    sink.sendall(frame)
                elif fault == "duplicate":
                    sink.sendall(frame)
                    sink.sendall(frame)
                elif fault == "stall":
                    # Heartbeat stall: go silent long enough for the
                    # coordinator's lease timer to expire, then resume.
                    time.sleep(self.plan.stall_seconds)
                    sink.sendall(frame)
        except OSError:
            return
        finally:
            for peer in (source, sink):
                try:
                    peer.close()
                except OSError:
                    pass


# ----------------------------------------------------------------------
# The in-process chaos transport
# ----------------------------------------------------------------------


@dataclass
class _ChaosCounters:
    failures: int = 0
    delays: int = 0
    reconnects: int = 0


class ChaosTransport:
    """A :class:`~repro.distributed.transport.WorkerTransport` wrapper
    injecting transport-level faults on the plan's schedule.

    Per shard the plan's ``flap`` rate raises
    :class:`~repro.distributed.transport.WorkerUnavailable` (before the
    inner transport computes anything) and ``delay`` sleeps briefly —
    exercising the coordinator's re-lease, reconnect/backoff, and
    degradation paths without a socket in sight.  ``reconnect`` always
    succeeds (the inner transport never actually died), so a
    chaos-wrapped fleet heals on the coordinator's schedule.
    """

    def __init__(self, inner: Any, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan
        self.name = f"chaos({inner.name})"
        self.alive = True
        self.campaign_id: Optional[str] = None
        self.counters = _ChaosCounters()
        self._stream = plan.stream(f"transport:{inner.name}")

    def bind_campaign(self, campaign_id: str) -> None:
        self.campaign_id = campaign_id
        self.inner.bind_campaign(campaign_id)

    def ensure_context(self, context: Any, timeout: Optional[float] = None) -> None:
        self.inner.ensure_context(context, timeout=timeout)

    def run_shard(
        self,
        context: Any,
        shard_id: int,
        start: int,
        count: int,
        timeout: Optional[float] = None,
        deadline: Any = None,
    ) -> Any:
        from repro.distributed.transport import WorkerUnavailable

        fault = self._stream.next_fault()
        if fault in ("flap", "truncate", "corrupt", "stall"):
            self.counters.failures += 1
            self.alive = False
            raise WorkerUnavailable(
                f"chaos transport {self.name} injected a {fault} fault on "
                f"shard {shard_id}"
            )
        if fault == "delay":
            self.counters.delays += 1
            time.sleep(self.plan.delay_seconds)
        return self.inner.run_shard(
            context, shard_id, start, count, timeout=timeout, deadline=deadline
        )

    def reconnect(self) -> bool:
        self.counters.reconnects += 1
        self.alive = True
        return True

    @property
    def stats(self) -> Dict[str, int]:
        stats = dict(getattr(self.inner, "stats", None) or {})
        stats["reconnects"] = stats.get("reconnects", 0) + self.counters.reconnects
        return stats

    def close(self) -> None:
        self.inner.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ChaosTransport {self.name} faults={self.counters.failures}>"


__all__ = [
    "ChaosProxy",
    "ChaosTransport",
    "DEFAULT_FAULT_RATES",
    "FAILPOINTS_ENV_VAR",
    "FAULT_KINDS",
    "FailpointError",
    "FaultPlan",
    "FaultStream",
    "clear_failpoints",
    "failpoint",
    "failpoint_fired",
    "parse_failpoints",
    "set_failpoint",
]
