"""First-order queries ``Q(x) = {x | phi}``.

A :class:`Query` pairs a tuple of head (free) variables with a formula and
evaluates to the set of head-variable bindings that satisfy the formula —
the paper's ``Q(D) = {c in dom(D)^|x| : D |= phi(c)}``.
"""

from __future__ import annotations

from itertools import product
from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.db.facts import Database
from repro.db.terms import Term, Var
from repro.queries.ast import Formula
from repro.queries.eval import evaluate_formula


class Query:
    """A first-order query with an explicit head-variable tuple.

    The head may repeat variables and may omit some free variables only if
    the formula has no other free variables — i.e. every free variable of
    the formula must appear in the head, as in the paper's definition.
    """

    def __init__(self, head: Sequence[Var], formula: Formula, name: str = "Q") -> None:
        self.head: Tuple[Var, ...] = tuple(head)
        self.formula = formula
        self.name = name
        uncovered = formula.free_variables() - frozenset(self.head)
        if uncovered:
            names = ", ".join(sorted(v.name for v in uncovered))
            raise ValueError(
                f"free variables not in query head: {names}"
            )

    @property
    def arity(self) -> int:
        """Number of head positions (0 for boolean queries)."""
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        """Whether the query has an empty head (a sentence)."""
        return not self.head

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def answers(
        self,
        database: Database,
        domain: Optional[Iterable[Term]] = None,
    ) -> FrozenSet[Tuple[Term, ...]]:
        """All answer tuples ``Q(D)`` over *domain* (default ``dom(D)``).

        For a boolean query the result is ``{()}`` if the sentence holds
        and ``frozenset()`` otherwise.
        """
        if domain is None:
            dom: Tuple[Term, ...] = tuple(
                sorted(
                    set(database.dom) | set(self.formula.constants()),
                    key=lambda c: (type(c).__name__, str(c)),
                )
            )
        else:
            dom = tuple(dict.fromkeys(domain))
        if self.is_boolean:
            holds = evaluate_formula(self.formula, database, {}, dom)
            return frozenset([()]) if holds else frozenset()
        distinct = tuple(dict.fromkeys(self.head))
        answers = set()
        for values in product(dom, repeat=len(distinct)):
            assignment = dict(zip(distinct, values))
            if evaluate_formula(self.formula, database, assignment, dom):
                answers.add(tuple(assignment[v] for v in self.head))
        return frozenset(answers)

    def holds(
        self,
        database: Database,
        candidate: Tuple[Term, ...],
        domain: Optional[Iterable[Term]] = None,
    ) -> bool:
        """Whether a single candidate tuple is an answer on *database*.

        This is the membership test used by OCQA: ``t in Q(s(D))``.  It is
        much cheaper than :meth:`answers` because only one assignment is
        evaluated.
        """
        if len(candidate) != self.arity:
            raise ValueError(
                f"candidate arity {len(candidate)} does not match query arity {self.arity}"
            )
        assignment = {}
        for var, value in zip(self.head, candidate):
            bound = assignment.get(var)
            if bound is not None and bound != value:
                return False
            assignment[var] = value
        if domain is None:
            dom: Tuple[Term, ...] = tuple(
                sorted(
                    set(database.dom)
                    | set(self.formula.constants())
                    | set(candidate),
                    key=lambda c: (type(c).__name__, str(c)),
                )
            )
        else:
            dom = tuple(dict.fromkeys(domain))
        return evaluate_formula(self.formula, database, assignment, dom)

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.head)
        return f"{self.name}({names}) :- {self.formula}"

    def __repr__(self) -> str:
        return f"Query({self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Query):
            return NotImplemented
        return self.head == other.head and self.formula == other.formula

    def __hash__(self) -> int:
        return hash((self.head, self.formula))
