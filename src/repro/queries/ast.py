"""Abstract syntax of first-order formulas.

Formulas are immutable value objects.  Free variables are computed
structurally; evaluation (active-domain semantics) lives in
:mod:`repro.queries.eval`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import FrozenSet, Tuple

from repro.db.atoms import Atom
from repro.db.terms import Term, Var, is_var, term_str


class Formula(ABC):
    """Base class of all first-order formulas."""

    @abstractmethod
    def free_variables(self) -> FrozenSet[Var]:
        """The free variables of the formula."""

    @abstractmethod
    def constants(self) -> FrozenSet[Term]:
        """All constants mentioned anywhere in the formula."""

    @abstractmethod
    def __str__(self) -> str:
        ...

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"

    # Operator sugar --------------------------------------------------
    def __and__(self, other: "Formula") -> "And":
        return And((self, other))

    def __or__(self, other: "Formula") -> "Or":
        return Or((self, other))

    def __invert__(self) -> "Not":
        return Not(self)


@dataclass(frozen=True, repr=False)
class AtomFormula(Formula):
    """A relational atom ``R(t1, ..., tn)`` used as a formula."""

    atom: Atom

    def free_variables(self) -> FrozenSet[Var]:
        return self.atom.variables

    def constants(self) -> FrozenSet[Term]:
        return self.atom.constants

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True, repr=False)
class Equality(Formula):
    """``left = right`` over terms."""

    left: Term
    right: Term

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset(t for t in (self.left, self.right) if is_var(t))

    def constants(self) -> FrozenSet[Term]:
        return frozenset(t for t in (self.left, self.right) if not is_var(t))

    def __str__(self) -> str:
        return f"{term_str(self.left)} = {term_str(self.right)}"


@dataclass(frozen=True, repr=False)
class Not(Formula):
    """Negation."""

    operand: Formula

    def free_variables(self) -> FrozenSet[Var]:
        return self.operand.free_variables()

    def constants(self) -> FrozenSet[Term]:
        return self.operand.constants()

    def __str__(self) -> str:
        return f"!({self.operand})"


@dataclass(frozen=True, repr=False)
class And(Formula):
    """Conjunction of one or more formulas."""

    operands: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        if not self.operands:
            raise ValueError("And needs at least one operand")

    def free_variables(self) -> FrozenSet[Var]:
        out: frozenset = frozenset()
        for op in self.operands:
            out |= op.free_variables()
        return out

    def constants(self) -> FrozenSet[Term]:
        out: frozenset = frozenset()
        for op in self.operands:
            out |= op.constants()
        return out

    def __str__(self) -> str:
        return "(" + " & ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True, repr=False)
class Or(Formula):
    """Disjunction of one or more formulas."""

    operands: Tuple[Formula, ...]

    def __post_init__(self) -> None:
        if not self.operands:
            raise ValueError("Or needs at least one operand")

    def free_variables(self) -> FrozenSet[Var]:
        out: frozenset = frozenset()
        for op in self.operands:
            out |= op.free_variables()
        return out

    def constants(self) -> FrozenSet[Term]:
        out: frozenset = frozenset()
        for op in self.operands:
            out |= op.constants()
        return out

    def __str__(self) -> str:
        return "(" + " | ".join(str(op) for op in self.operands) + ")"


@dataclass(frozen=True, repr=False)
class Implies(Formula):
    """Material implication ``premise -> conclusion``."""

    premise: Formula
    conclusion: Formula

    def free_variables(self) -> FrozenSet[Var]:
        return self.premise.free_variables() | self.conclusion.free_variables()

    def constants(self) -> FrozenSet[Term]:
        return self.premise.constants() | self.conclusion.constants()

    def __str__(self) -> str:
        return f"({self.premise} -> {self.conclusion})"


@dataclass(frozen=True, repr=False)
class Exists(Formula):
    """Existential quantification over one or more variables."""

    variables: Tuple[Var, ...]
    operand: Formula

    def __post_init__(self) -> None:
        if not self.variables:
            raise ValueError("Exists needs at least one variable")

    def free_variables(self) -> FrozenSet[Var]:
        return self.operand.free_variables() - frozenset(self.variables)

    def constants(self) -> FrozenSet[Term]:
        return self.operand.constants()

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"exists {names} ({self.operand})"


@dataclass(frozen=True, repr=False)
class Forall(Formula):
    """Universal quantification over one or more variables."""

    variables: Tuple[Var, ...]
    operand: Formula

    def __post_init__(self) -> None:
        if not self.variables:
            raise ValueError("Forall needs at least one variable")

    def free_variables(self) -> FrozenSet[Var]:
        return self.operand.free_variables() - frozenset(self.variables)

    def constants(self) -> FrozenSet[Term]:
        return self.operand.constants()

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"forall {names} ({self.operand})"


@dataclass(frozen=True, repr=False)
class TrueFormula(Formula):
    """The constant ``true``."""

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset()

    def constants(self) -> FrozenSet[Term]:
        return frozenset()

    def __str__(self) -> str:
        return "true"


@dataclass(frozen=True, repr=False)
class FalseFormula(Formula):
    """The constant ``false``."""

    def free_variables(self) -> FrozenSet[Var]:
        return frozenset()

    def constants(self) -> FrozenSet[Term]:
        return frozenset()

    def __str__(self) -> str:
        return "false"
