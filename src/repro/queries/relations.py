"""Which relations a query's answer can depend on.

The result cache migrates a cached answer across a base-table delta
only when it can *prove* the answer never looked at anything the delta
touched.  Two ingredients:

- :func:`query_relations` — every relation the query mentions
  syntactically (always computable);
- :func:`dependency_relations` — the relation set usable as a
  *dependency footprint*, or ``None`` when no sound footprint exists.

The footprint is only sound for domain-independent queries: the
samplers evaluate full first-order queries under the active-domain
translation, so a universal quantifier, a negation, or an unguarded
equality makes the answer depend on ``dom(D)`` — which *every* fact in
the instance extends, regardless of relation.  Rather than reimplement
safe-range analysis, we accept exactly the conjunctive fragment
(atoms composed with conjunction and existential quantification, the
shape ``parse_query`` produces for Datalog-style bodies) and return
``None`` for anything else; the cache then falls back to conservative
invalidation for those entries.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Union

from repro.queries.ast import And, AtomFormula, Exists, Formula
from repro.queries.cq import ConjunctiveQuery
from repro.queries.query import Query

__all__ = ["dependency_relations", "query_relations"]

AnyQuery = Union[Query, ConjunctiveQuery]


def _formula_relations(formula: Formula) -> FrozenSet[str]:
    if isinstance(formula, AtomFormula):
        return frozenset((formula.atom.relation,))
    out: set = set()
    for attr in ("operand", "premise", "conclusion", "operands"):
        value = getattr(formula, attr, None)
        if value is None:
            continue
        if isinstance(value, Formula):
            out |= _formula_relations(value)
        else:
            for part in value:
                out |= _formula_relations(part)
    return frozenset(out)


def query_relations(query: AnyQuery) -> FrozenSet[str]:
    """Every relation the query mentions."""
    if isinstance(query, ConjunctiveQuery):
        return frozenset(atom.relation for atom in query.body)
    return _formula_relations(query.formula)


def _conjunctive_fragment(formula: Formula) -> bool:
    """True when *formula* is atoms under only ``And`` / ``Exists``."""
    if isinstance(formula, AtomFormula):
        return True
    if isinstance(formula, Exists):
        return _conjunctive_fragment(formula.operand)
    if isinstance(formula, And):
        return all(_conjunctive_fragment(part) for part in formula.operands)
    return False


def dependency_relations(query: AnyQuery) -> Optional[FrozenSet[str]]:
    """The sound dependency footprint, or ``None`` if none exists.

    ``None`` means "may depend on the whole instance": the caller must
    treat any delta as touching this query.
    """
    if isinstance(query, ConjunctiveQuery):
        return query_relations(query)
    if _conjunctive_fragment(query.formula):
        return _formula_relations(query.formula)
    return None
