"""Conjunctive queries.

A conjunctive query ``Q(x) :- R1(..), ..., Rk(..)`` is evaluated through
homomorphism search (Section 2), which is far cheaper than the generic
active-domain evaluator for the common case.  A CQ converts losslessly to
a general :class:`repro.queries.Query` via :meth:`to_query`.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Optional, Sequence, Tuple

from repro.db.atoms import Atom, atoms_variables
from repro.db.facts import Database
from repro.db.homomorphism import find_homomorphisms
from repro.db.terms import Term, Var, is_var
from repro.queries.ast import And, AtomFormula, Exists, Formula
from repro.queries.query import Query


class ConjunctiveQuery:
    """``Q(head) :- body`` where the body is a conjunction of atoms.

    Body variables outside the head are existentially quantified.  The
    head may also contain constants (returned verbatim in each answer).
    """

    def __init__(
        self, head: Sequence[Term], body: Sequence[Atom], name: str = "Q"
    ) -> None:
        self.head: Tuple[Term, ...] = tuple(head)
        self.body: Tuple[Atom, ...] = tuple(body)
        self.name = name
        if not self.body:
            raise ValueError("conjunctive query bodies must be non-empty")
        body_vars = atoms_variables(self.body)
        missing = {t for t in self.head if is_var(t)} - set(body_vars)
        if missing:
            names = ", ".join(sorted(v.name for v in missing))
            raise ValueError(f"head variables not in body: {names}")

    @property
    def arity(self) -> int:
        """Number of head positions."""
        return len(self.head)

    @property
    def is_boolean(self) -> bool:
        """Whether the query has an empty head."""
        return not self.head

    @property
    def head_variables(self) -> Tuple[Var, ...]:
        """Head positions that are variables, in order, without duplicates."""
        seen = dict.fromkeys(t for t in self.head if is_var(t))
        return tuple(seen)

    @property
    def existential_variables(self) -> FrozenSet[Var]:
        """Body variables that are not head variables."""
        return atoms_variables(self.body) - frozenset(self.head_variables)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def answers(
        self,
        database: Database,
        domain: Optional[Iterable[Term]] = None,
    ) -> FrozenSet[Tuple[Term, ...]]:
        """All answers, via homomorphism search.

        *domain* is accepted for interface parity with
        :class:`repro.queries.Query` but is irrelevant: CQ answers always
        consist of database constants.
        """
        del domain  # CQs are domain-independent
        out = set()
        for hom in find_homomorphisms(self.body, database):
            out.add(tuple(hom[t] if is_var(t) else t for t in self.head))
        return frozenset(out)

    def holds(
        self,
        database: Database,
        candidate: Tuple[Term, ...],
        domain: Optional[Iterable[Term]] = None,
    ) -> bool:
        """Whether *candidate* is an answer (single membership test)."""
        del domain
        if len(candidate) != self.arity:
            raise ValueError(
                f"candidate arity {len(candidate)} does not match query arity {self.arity}"
            )
        partial = {}
        for term, value in zip(self.head, candidate):
            if is_var(term):
                bound = partial.get(term)
                if bound is not None and bound != value:
                    return False
                partial[term] = value
            elif term != value:
                return False
        for _ in find_homomorphisms(self.body, database, partial):
            return True
        return False

    # ------------------------------------------------------------------
    # Conversion
    # ------------------------------------------------------------------
    def to_formula(self) -> Formula:
        """The CQ as a first-order formula (existential conjunction)."""
        conjunction: Formula = (
            AtomFormula(self.body[0])
            if len(self.body) == 1
            else And(tuple(AtomFormula(a) for a in self.body))
        )
        existentials = tuple(
            sorted(self.existential_variables, key=lambda v: v.name)
        )
        if existentials:
            return Exists(existentials, conjunction)
        return conjunction

    def to_query(self) -> Query:
        """The CQ as a general :class:`repro.queries.Query`.

        Head constants are not expressible in a general query head, so
        they must be absent (use variables plus equality atoms instead).
        """
        if any(not is_var(t) for t in self.head):
            raise ValueError("cannot convert a CQ with head constants to a Query")
        return Query(tuple(self.head), self.to_formula(), name=self.name)

    def __str__(self) -> str:
        from repro.db.terms import term_str

        head = ", ".join(term_str(t) for t in self.head)
        body = ", ".join(str(a) for a in self.body)
        return f"{self.name}({head}) :- {body}"

    def __repr__(self) -> str:
        return f"ConjunctiveQuery({self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ConjunctiveQuery):
            return NotImplemented
        return self.head == other.head and self.body == other.body

    def __hash__(self) -> int:
        return hash((self.head, self.body))
