"""First-order queries over databases (Section 2).

A query ``Q(x) = {x | phi}`` returns the tuples of active-domain constants
satisfying the first-order formula ``phi``.  The package provides:

- a formula AST (:mod:`repro.queries.ast`);
- an active-domain evaluator (:mod:`repro.queries.eval`);
- a textual parser (:func:`parse_query`, :func:`parse_formula`);
- conjunctive queries with a homomorphism-based fast path
  (:class:`ConjunctiveQuery`).
"""

from repro.queries.ast import (
    Formula,
    AtomFormula,
    Equality,
    Not,
    And,
    Or,
    Implies,
    Exists,
    Forall,
    TrueFormula,
    FalseFormula,
)
from repro.queries.eval import evaluate_formula
from repro.queries.query import Query
from repro.queries.cq import ConjunctiveQuery
from repro.queries.parser import parse_cq, parse_formula, parse_query
from repro.queries.relations import dependency_relations, query_relations

__all__ = [
    "Formula",
    "AtomFormula",
    "Equality",
    "Not",
    "And",
    "Or",
    "Implies",
    "Exists",
    "Forall",
    "TrueFormula",
    "FalseFormula",
    "evaluate_formula",
    "Query",
    "ConjunctiveQuery",
    "parse_formula",
    "parse_query",
    "parse_cq",
    "dependency_relations",
    "query_relations",
]
