"""Active-domain evaluation of first-order formulas.

Quantifiers range over a finite evaluation domain — by default the active
domain ``dom(D)`` of the database, optionally widened to the constants of
the base ``B(D, Sigma)`` so that queries see constants introduced by
constraints.  This is the standard finite-model semantics used by the
paper's query definition ``Q(D) = {c in dom(D)^|x| : D |= phi(c)}``.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Mapping, Optional, Tuple

from repro.db.facts import Database, Fact
from repro.db.terms import Term, Var, is_var
from repro.queries.ast import (
    And,
    AtomFormula,
    Equality,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    TrueFormula,
)


class EvaluationError(ValueError):
    """Raised when a formula is evaluated with unbound free variables."""


def evaluate_formula(
    formula: Formula,
    database: Database,
    assignment: Optional[Mapping[Var, Term]] = None,
    domain: Optional[Iterable[Term]] = None,
) -> bool:
    """Whether ``D |= phi`` under *assignment*.

    *assignment* must bind every free variable of *formula*.  *domain* is
    the range of quantified variables; it defaults to ``dom(D)`` united
    with the constants appearing in the formula itself (so sentences over
    an empty database still make sense).
    """
    bound: Dict[Var, Term] = dict(assignment) if assignment else {}
    missing = formula.free_variables() - frozenset(bound)
    if missing:
        names = ", ".join(sorted(v.name for v in missing))
        raise EvaluationError(f"unbound free variables: {names}")
    if domain is None:
        dom: Tuple[Term, ...] = tuple(
            sorted(
                set(database.dom) | set(formula.constants()),
                key=lambda c: (type(c).__name__, str(c)),
            )
        )
    else:
        dom = tuple(domain)
    return _eval(formula, database, bound, dom)


def _eval(
    formula: Formula,
    database: Database,
    assignment: Dict[Var, Term],
    domain: Tuple[Term, ...],
) -> bool:
    if isinstance(formula, TrueFormula):
        return True
    if isinstance(formula, FalseFormula):
        return False
    if isinstance(formula, AtomFormula):
        values = tuple(
            assignment[t] if is_var(t) else t for t in formula.atom.terms
        )
        return Fact(formula.atom.relation, values) in database
    if isinstance(formula, Equality):
        left = assignment[formula.left] if is_var(formula.left) else formula.left
        right = assignment[formula.right] if is_var(formula.right) else formula.right
        return left == right
    if isinstance(formula, Not):
        return not _eval(formula.operand, database, assignment, domain)
    if isinstance(formula, And):
        return all(_eval(op, database, assignment, domain) for op in formula.operands)
    if isinstance(formula, Or):
        return any(_eval(op, database, assignment, domain) for op in formula.operands)
    if isinstance(formula, Implies):
        if not _eval(formula.premise, database, assignment, domain):
            return True
        return _eval(formula.conclusion, database, assignment, domain)
    if isinstance(formula, Exists):
        return _eval_quantifier(formula.variables, formula.operand, database, assignment, domain, existential=True)
    if isinstance(formula, Forall):
        return _eval_quantifier(formula.variables, formula.operand, database, assignment, domain, existential=False)
    raise TypeError(f"unknown formula node {type(formula).__name__}")


_MISSING = object()


def _eval_quantifier(
    variables: Tuple[Var, ...],
    operand: Formula,
    database: Database,
    assignment: Dict[Var, Term],
    domain: Tuple[Term, ...],
    existential: bool,
) -> bool:
    var, rest = variables[0], variables[1:]
    saved = assignment.get(var, _MISSING)
    answer = not existential
    for value in domain:
        assignment[var] = value
        if rest:
            result = _eval_quantifier(
                rest, operand, database, assignment, domain, existential
            )
        else:
            result = _eval(operand, database, assignment, domain)
        if result == existential:
            answer = existential
            break
    if saved is _MISSING:
        assignment.pop(var, None)
    else:
        assignment[var] = saved  # type: ignore[assignment]
    return answer
