"""Parser for first-order formulas and queries.

Syntax (binding strength, loosest first): ``->`` (right associative),
``|`` / ``or``, ``&`` / ``and``, ``!`` / ``not``, quantifiers
(``exists x, y ...`` / ``forall x ...``, scoping as far right as
possible), atoms ``R(x, 'a')``, equalities ``x = y`` / ``x != y``, and the
constants ``true`` / ``false``.  Example — the paper's "most preferred
product" query (Example 7)::

    Q(x) :- forall y (Pref(x, y) | x = y)

Bare identifiers are variables; quoted strings and integers are constants.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.db.atoms import Atom
from repro.db.terms import Term, Var, is_var
from repro.parsing import ParseError, Token, TokenStream, parse_term_token
from repro.queries.ast import (
    And,
    AtomFormula,
    Equality,
    Exists,
    FalseFormula,
    Forall,
    Formula,
    Implies,
    Not,
    Or,
    TrueFormula,
)
from repro.queries.cq import ConjunctiveQuery
from repro.queries.query import Query

_TERM_KINDS = ("IDENT", "STRING", "NUMBER")


def parse_formula(text: str) -> Formula:
    """Parse a first-order formula from text."""
    stream = TokenStream(text)
    formula = _parse_implication(stream)
    stream.expect_end()
    return formula


def _parse_implication(stream: TokenStream) -> Formula:
    left = _parse_disjunction(stream)
    if stream.accept("ARROW") or stream.accept("IMPLIES"):
        right = _parse_implication(stream)
        return Implies(left, right)
    return left


def _parse_disjunction(stream: TokenStream) -> Formula:
    operands = [_parse_conjunction(stream)]
    while stream.accept("OR"):
        operands.append(_parse_conjunction(stream))
    return operands[0] if len(operands) == 1 else Or(tuple(operands))


def _parse_conjunction(stream: TokenStream) -> Formula:
    operands = [_parse_unary(stream)]
    while stream.accept("AND"):
        operands.append(_parse_unary(stream))
    return operands[0] if len(operands) == 1 else And(tuple(operands))


def _parse_unary(stream: TokenStream) -> Formula:
    if stream.accept("NOT"):
        return Not(_parse_unary(stream))
    token = stream.peek()
    if token is not None and token.kind in ("EXISTS", "FORALL"):
        stream.next()
        variables = _parse_quantified_variables(stream)
        operand = _parse_implication(stream)
        if token.kind == "EXISTS":
            return Exists(variables, operand)
        return Forall(variables, operand)
    return _parse_atomic(stream)


def _parse_quantified_variables(stream: TokenStream) -> Tuple[Var, ...]:
    """Variables after ``exists``/``forall``.

    ``exists y, z (phi)`` is disambiguated from an atom start using the
    paper's capitalization convention: relation names start uppercase, so
    a lowercase ``IDENT (`` is a quantified variable followed by a
    parenthesised formula, not an atom.
    """
    variables = [Var(stream.expect("IDENT").value)]
    while True:
        mark = stream.index
        if stream.accept("COMMA"):
            token = stream.peek()
            follow = (
                stream.tokens[stream.index + 1].kind
                if stream.index + 1 < len(stream.tokens)
                else None
            )
            looks_like_atom = (
                token is not None
                and token.kind == "IDENT"
                and follow == "LPAREN"
                and token.value[:1].isupper()
            )
            if token is not None and token.kind == "IDENT" and not looks_like_atom:
                variables.append(Var(stream.expect("IDENT").value))
                continue
        stream.index = mark
        break
    return tuple(variables)


def _parse_atomic(stream: TokenStream) -> Formula:
    token = stream.peek()
    if token is None:
        raise ParseError("unexpected end of formula", stream.text, len(stream.text))
    if token.kind == "LPAREN":
        stream.next()
        inner = _parse_implication(stream)
        stream.expect("RPAREN")
        return _maybe_equality_chain(stream, inner)
    if token.kind == "TRUE":
        stream.next()
        return TrueFormula()
    if token.kind == "FALSE" or token.kind == "BOTTOM":
        stream.next()
        return FalseFormula()
    if token.kind == "IDENT":
        follow = (
            stream.tokens[stream.index + 1].kind
            if stream.index + 1 < len(stream.tokens)
            else None
        )
        if follow == "LPAREN":
            return AtomFormula(_parse_atom(stream))
    if token.kind in _TERM_KINDS:
        left = parse_term_token(stream.next())
        if stream.accept("EQ"):
            right = parse_term_token(stream.next())
            return Equality(left, right)
        if stream.accept("NEQ"):
            right = parse_term_token(stream.next())
            return Not(Equality(left, right))
        raise ParseError("expected '=' or '!=' after term", stream.text, token.pos)
    raise ParseError(f"unexpected token {token.value!r}", stream.text, token.pos)


def _maybe_equality_chain(stream: TokenStream, inner: Formula) -> Formula:
    """Parenthesised formulas are returned unchanged; hook for extensions."""
    return inner


def _parse_atom(stream: TokenStream) -> Atom:
    name = stream.expect("IDENT")
    stream.expect("LPAREN")
    terms: List[Term] = []
    while True:
        terms.append(parse_term_token(stream.next()))
        if stream.accept("COMMA"):
            continue
        stream.expect("RPAREN")
        break
    return Atom(name.value, tuple(terms))


def _parse_query_head(stream: TokenStream) -> Tuple[str, Tuple[Var, ...]]:
    name = "Q"
    token = stream.peek()
    if token is not None and token.kind == "IDENT":
        name = stream.next().value
    stream.expect("LPAREN")
    variables: List[Var] = []
    if not stream.accept("RPAREN"):
        while True:
            variables.append(Var(stream.expect("IDENT").value))
            if stream.accept("COMMA"):
                continue
            stream.expect("RPAREN")
            break
    return name, tuple(variables)


def parse_query(text: str) -> Query:
    """Parse ``Name(x, y) :- formula`` into a :class:`Query`.

    The head name is optional (``(x) :- ...``) and ``:=`` is accepted in
    place of ``:-``.  A boolean query has an empty head: ``Q() :- ...``.
    Free variables of the body that do not appear in the head are
    existentially quantified, as in Datalog: ``Q(y) :- R(x, y)`` means
    ``{y | exists x R(x, y)}``.
    """
    stream = TokenStream(text)
    name, head = _parse_query_head(stream)
    stream.expect("DEFINE")
    formula = _parse_implication(stream)
    stream.expect_end()
    dangling = tuple(
        sorted(formula.free_variables() - frozenset(head), key=lambda v: v.name)
    )
    if dangling:
        formula = Exists(dangling, formula)
    return Query(head, formula, name=name)


def parse_cq(text: str) -> ConjunctiveQuery:
    """Parse ``Name(x, y) :- R(x, z), S(z, y)`` into a :class:`ConjunctiveQuery`."""
    stream = TokenStream(text)
    name = "Q"
    token = stream.peek()
    if token is not None and token.kind == "IDENT":
        name = stream.next().value
    stream.expect("LPAREN")
    head: List[Term] = []
    if not stream.accept("RPAREN"):
        while True:
            head.append(parse_term_token(stream.next()))
            if stream.accept("COMMA"):
                continue
            stream.expect("RPAREN")
            break
    stream.expect("DEFINE")
    body = [_parse_atom(stream)]
    while stream.accept("COMMA"):
        body.append(_parse_atom(stream))
    stream.expect_end()
    return ConjunctiveQuery(tuple(head), tuple(body), name=name)
