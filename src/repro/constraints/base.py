"""The abstract constraint interface and constraint sets.

Every constraint has the shape ``phi(x) -> psi(x)`` where ``phi`` (the
*body*) is a non-empty conjunction of atoms.  A *violation* of a
constraint in a database ``D`` is a homomorphism ``h`` from the body into
``D`` such that ``D`` does not satisfy ``h(kappa)`` (Definition 2).  The
concrete subclasses (:class:`repro.constraints.TGD`,
:class:`repro.constraints.EGD`, :class:`repro.constraints.DC`) implement
the head check.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import FrozenSet, Iterable, Iterator, List, Mapping, Sequence, Tuple

from repro.db.atoms import Atom, atoms_constants, atoms_variables
from repro.db.facts import Database, Fact
from repro.db.homomorphism import Assignment, find_homomorphisms
from repro.db.schema import Schema
from repro.db.terms import Term, Var


class Constraint(ABC):
    """Base class for TGDs, EGDs and denial constraints."""

    #: conjunction of body atoms ``phi``
    body: Tuple[Atom, ...]

    def __init__(self, body: Sequence[Atom]) -> None:
        body = tuple(body)
        if not body:
            raise ValueError("constraint bodies must be non-empty")
        self.body = body

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def body_variables(self) -> FrozenSet[Var]:
        """Variables occurring in the body."""
        return atoms_variables(self.body)

    @property
    def variables(self) -> FrozenSet[Var]:
        """All (universally and existentially quantified) variables."""
        return self.body_variables

    @property
    def constants(self) -> FrozenSet[Term]:
        """All constants mentioned by the constraint (contributes to the base)."""
        return atoms_constants(self.body)

    @property
    def body_relations(self) -> FrozenSet[str]:
        """Relation names mentioned by the body atoms.

        The incremental violation engine uses this to skip constraints
        whose body cannot possibly gain or lose a match under a
        single-fact update.
        """
        cached = self.__dict__.get("_body_relations")
        if cached is None:
            cached = frozenset(a.relation for a in self.body)
            self.__dict__["_body_relations"] = cached
        return cached

    @property
    @abstractmethod
    def head_relations(self) -> FrozenSet[str]:
        """Relation names whose facts the head check inspects.

        The incremental engine skips head re-checks for updates not
        touching these relations, so every subclass must state its
        dependency explicitly: an empty set asserts the head is
        database-independent (EGDs compare terms, DC heads are
        ``false``), while :class:`repro.constraints.TGD` returns its
        head atoms' relations.  Deliberately abstract — inheriting a
        silently-empty default would make a future database-inspecting
        head produce stale violation sets instead of an error.
        """

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    @abstractmethod
    def head_holds(self, assignment: Assignment, database: Database) -> bool:
        """Whether the head ``psi`` holds in *database* under *assignment*.

        *assignment* binds every body variable.
        """

    def violating_assignments(self, database: Database) -> Iterator[Assignment]:
        """Yield every body homomorphism under which the head fails."""
        for assignment in find_homomorphisms(self.body, database):
            if not self.head_holds(assignment, database):
                yield assignment

    def is_satisfied(self, database: Database) -> bool:
        """``D |= kappa``: no violating assignment exists."""
        for _ in self.violating_assignments(database):
            return False
        return True

    def body_image(self, assignment: Mapping[Var, Term]) -> FrozenSet[Fact]:
        """The set of facts ``h(phi)`` for a body homomorphism ``h``."""
        return frozenset(atom.substitute(assignment).to_fact() for atom in self.body)

    # ------------------------------------------------------------------
    # Schema
    # ------------------------------------------------------------------
    def schema(self) -> Schema:
        """The minimal schema covering this constraint's atoms."""
        from repro.db.schema import Relation

        return Schema(Relation(a.relation, a.arity) for a in self.body)

    # ------------------------------------------------------------------
    # Identity: constraints are value objects keyed by their rendering.
    # ------------------------------------------------------------------
    @abstractmethod
    def __str__(self) -> str:
        ...

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return type(self) is type(other) and self._key() == other._key()

    def __hash__(self) -> int:
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((type(self).__name__, self._key()))
            self.__dict__["_hash"] = cached
        return cached

    def __getstate__(self):
        # Never pickle the cached hash: it is per-process (randomized
        # str hashing) and a stale value breaks dict/set lookups after
        # cross-process unpickling (see repro.db.facts.Fact.__getstate__).
        state = dict(self.__dict__)
        state.pop("_hash", None)
        return state

    @abstractmethod
    def _key(self) -> Tuple:
        ...


class ConstraintSet:
    """An ordered, duplicate-free collection of constraints (``Sigma``)."""

    def __init__(self, constraints: Iterable[Constraint] = ()) -> None:
        seen: List[Constraint] = []
        for constraint in constraints:
            if not isinstance(constraint, Constraint):
                raise TypeError(
                    f"ConstraintSet holds Constraint objects, got {type(constraint).__name__}"
                )
            if constraint not in seen:
                seen.append(constraint)
        self._constraints: Tuple[Constraint, ...] = tuple(seen)

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        """The constraints, in insertion order."""
        return self._constraints

    def __iter__(self) -> Iterator[Constraint]:
        return iter(self._constraints)

    def __len__(self) -> int:
        return len(self._constraints)

    def __contains__(self, constraint: object) -> bool:
        return constraint in self._constraints

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConstraintSet):
            return set(self._constraints) == set(other._constraints)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(frozenset(self._constraints))

    @property
    def constants(self) -> FrozenSet[Term]:
        """All constants appearing in the constraint set."""
        out: set = set()
        for constraint in self._constraints:
            out.update(constraint.constants)
        return frozenset(out)

    def is_satisfied(self, database: Database) -> bool:
        """``D |= Sigma``: every constraint is satisfied."""
        return all(c.is_satisfied(database) for c in self._constraints)

    def schema(self) -> Schema:
        """The minimal schema covering every constraint."""
        merged = Schema()
        for constraint in self._constraints:
            merged = merged.extend(constraint.schema())
        return merged

    def deletion_only(self) -> bool:
        """Whether no constraint can require additions (i.e. no TGDs).

        For TGD-free constraint sets, every justified operation is a
        deletion, so every repairing Markov chain generator over them
        supports only deletions and is non-failing (Proposition 8).
        """
        from repro.constraints.tgd import TGD

        return not any(isinstance(c, TGD) for c in self._constraints)

    def __repr__(self) -> str:
        inner = "; ".join(str(c) for c in self._constraints)
        return f"ConstraintSet({inner})"
