"""Textual constraint parser.

Supported forms (whitespace-insensitive)::

    R(x, y), R(x, z) -> y = z               # EGD
    R(x, y) -> exists z S(z, x)             # TGD, explicit existentials
    R(x, y) -> S(y, x)                      # TGD, full (no existentials)
    Pref(x, y), Pref(y, x) -> false         # DC

Bare identifiers in term positions are variables; quoted strings
(``'a'``) and integers are constants.  The ``exists`` keyword is optional:
head variables absent from the body are treated as existential either way
(matching the paper's convention of omitting quantifiers).
"""

from __future__ import annotations

from typing import List, Tuple

from repro.constraints.base import Constraint
from repro.constraints.dc import DC
from repro.constraints.egd import EGD
from repro.constraints.tgd import TGD
from repro.db.atoms import Atom
from repro.db.terms import Term, Var
from repro.parsing import ParseError, TokenStream, parse_term_token


def _parse_atom(stream: TokenStream) -> Atom:
    name = stream.expect("IDENT")
    stream.expect("LPAREN")
    terms: List[Term] = []
    while True:
        token = stream.next()
        terms.append(parse_term_token(token))
        if stream.accept("COMMA"):
            continue
        stream.expect("RPAREN")
        break
    return Atom(name.value, tuple(terms))


def _parse_atom_list(stream: TokenStream) -> List[Atom]:
    atoms = [_parse_atom(stream)]
    while True:
        mark = stream.index
        if stream.accept("COMMA") and stream.peek() is not None:
            token = stream.peek()
            if token is not None and token.kind == "IDENT":
                atoms.append(_parse_atom(stream))
                continue
        stream.index = mark
        break
    return atoms


def parse_constraint(text: str) -> Constraint:
    """Parse a single constraint from its textual form."""
    stream = TokenStream(text)
    body = _parse_atom_list(stream)
    stream.expect("ARROW")

    token = stream.peek()
    if token is None:
        raise ParseError("missing constraint head", text, len(text))

    # Denial constraint: "-> false" / "-> ⊥".
    if token.kind in ("FALSE", "BOTTOM"):
        stream.next()
        stream.expect_end()
        return DC(body)

    # TGD with explicit existentials: "-> exists z1, z2 S(...), T(...)".
    if token.kind == "EXISTS":
        stream.next()
        declared: List[Var] = [Var(stream.expect("IDENT").value)]
        while stream.accept("COMMA"):
            nxt = stream.peek()
            if nxt is not None and nxt.kind == "IDENT":
                after = (
                    stream.tokens[stream.index + 1].kind
                    if stream.index + 1 < len(stream.tokens)
                    else None
                )
                if after == "LPAREN":
                    # start of the head atom list, not another variable
                    stream.index -= 1
                    break
                declared.append(Var(stream.expect("IDENT").value))
            else:
                raise ParseError("expected variable after 'exists'", text)
        head = _parse_atom_list(stream)
        stream.expect_end()
        tgd = TGD(body, head)
        undeclared = tgd.existential_variables - frozenset(declared)
        if undeclared:
            names = ", ".join(sorted(v.name for v in undeclared))
            raise ParseError(f"undeclared existential variables: {names}", text)
        return tgd

    # Either an EGD ("-> y = z") or a TGD head atom list.  Disambiguate by
    # looking one token ahead: "IDENT (" starts an atom; "IDENT =" or
    # term-EQ starts an equality.
    after = (
        stream.tokens[stream.index + 1].kind
        if stream.index + 1 < len(stream.tokens)
        else None
    )
    if token.kind == "IDENT" and after == "LPAREN":
        head = _parse_atom_list(stream)
        stream.expect_end()
        return TGD(body, head)

    left = parse_term_token(stream.next())
    stream.expect("EQ")
    right = parse_term_token(stream.next())
    stream.expect_end()
    return EGD(body, left, right)


def parse_constraints(text: str) -> Tuple[Constraint, ...]:
    """Parse several constraints separated by newlines or semicolons.

    Blank lines and ``#`` comments are ignored, so constraint files can be
    written like small configuration files.
    """
    constraints: List[Constraint] = []
    for chunk in text.replace(";", "\n").splitlines():
        line = chunk.split("#", 1)[0].strip()
        if line:
            constraints.append(parse_constraint(line))
    return tuple(constraints)
