"""Equality-generating dependencies.

An EGD has the form ``forall x (phi(x) -> xi = xj)`` (equation (2) of the
paper).  Keys and functional dependencies are EGDs; see
:mod:`repro.constraints.shortcuts`.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.constraints.base import Constraint
from repro.db.atoms import Atom
from repro.db.facts import Database
from repro.db.homomorphism import Assignment
from repro.db.terms import Term, Var, is_var, term_str


class EGD(Constraint):
    """``phi(x) -> left = right``.

    ``left`` and ``right`` are usually body variables, but constants are
    accepted too (an EGD with a constant side behaves like a conditional
    domain restriction).
    """

    def __init__(self, body: Sequence[Atom], left: Term, right: Term) -> None:
        super().__init__(body)
        for side in (left, right):
            if is_var(side) and side not in self.body_variables:
                raise ValueError(
                    f"EGD equality variable {side} does not occur in the body"
                )
        self.left = left
        self.right = right

    @property
    def constants(self):
        """Body constants plus any constant equality side."""
        out = set(super().constants)
        for side in (self.left, self.right):
            if not is_var(side):
                out.add(side)
        return frozenset(out)

    @property
    def head_relations(self):
        """An equality head inspects no facts — database-independent."""
        return frozenset()

    def head_holds(self, assignment: Assignment, database: Database) -> bool:
        """Whether ``h(left) = h(right)`` under *assignment*."""
        left = assignment.get(self.left, self.left) if is_var(self.left) else self.left
        right = (
            assignment.get(self.right, self.right) if is_var(self.right) else self.right
        )
        return left == right

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        return f"{body} -> {term_str(self.left)} = {term_str(self.right)}"

    def _key(self) -> Tuple:
        return (self.body, self.left, self.right)
