"""Database constraints: TGDs, EGDs and denial constraints (Section 2).

All constraints have the implication shape ``phi(x) -> psi(x)`` where
``phi`` is a non-empty conjunction of atoms; satisfaction and violations
are defined through homomorphisms.  This package provides:

- the three constraint classes (:class:`TGD`, :class:`EGD`, :class:`DC`);
- a textual parser (:func:`parse_constraint`, :func:`parse_constraints`);
- convenience constructors for keys, functional dependencies and
  inclusion dependencies (:mod:`repro.constraints.shortcuts`).
"""

from repro.constraints.base import Constraint, ConstraintSet
from repro.constraints.tgd import TGD
from repro.constraints.egd import EGD
from repro.constraints.dc import DC
from repro.constraints.parser import parse_constraint, parse_constraints
from repro.constraints.shortcuts import (
    key,
    functional_dependency,
    inclusion_dependency,
    non_symmetric,
)

__all__ = [
    "Constraint",
    "ConstraintSet",
    "TGD",
    "EGD",
    "DC",
    "parse_constraint",
    "parse_constraints",
    "key",
    "functional_dependency",
    "inclusion_dependency",
    "non_symmetric",
]
