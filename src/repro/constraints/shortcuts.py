"""Convenience constructors for common constraint families.

The paper notes that EGDs express keys and functional dependencies, TGDs
express inclusion dependencies, and their combination expresses foreign
keys.  These helpers build those shapes without writing atoms by hand.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, Tuple

from repro.constraints.dc import DC
from repro.constraints.egd import EGD
from repro.constraints.tgd import TGD
from repro.db.atoms import Atom
from repro.db.terms import Var


def _fresh_vars(prefix: str, count: int) -> List[Var]:
    return [Var(f"{prefix}{i}") for i in range(count)]


def key(relation: str, arity: int, key_positions: Sequence[int]) -> Tuple[EGD, ...]:
    """EGDs stating that *key_positions* form a key of ``relation/arity``.

    One EGD per non-key position:  for the first attribute of ``R/2`` as a
    key, this is the paper's ``R(x, y), R(x, z) -> y = z``.
    """
    key_set = set(key_positions)
    if not key_set <= set(range(arity)):
        raise ValueError(f"key positions {sorted(key_set)} out of range for arity {arity}")
    if len(key_set) == arity:
        raise ValueError("key over all positions is vacuous")
    first = _fresh_vars("x", arity)
    second = [
        first[i] if i in key_set else Var(f"y{i}") for i in range(arity)
    ]
    egds = []
    for i in range(arity):
        if i not in key_set:
            egds.append(
                EGD(
                    (Atom(relation, tuple(first)), Atom(relation, tuple(second))),
                    first[i],
                    second[i],
                )
            )
    return tuple(egds)


def primary_key(relation: str, arity: int, width: int = 1) -> Tuple[EGD, ...]:
    """Key on the first *width* attributes of ``relation/arity``."""
    return key(relation, arity, tuple(range(width)))


def functional_dependency(
    relation: str, arity: int, determinants: Sequence[int], dependents: Sequence[int]
) -> Tuple[EGD, ...]:
    """EGDs for the FD ``determinants -> dependents`` on ``relation/arity``."""
    det = set(determinants)
    dep = [d for d in dependents if d not in det]
    if not det <= set(range(arity)) or not set(dependents) <= set(range(arity)):
        raise ValueError("FD positions out of range")
    first = _fresh_vars("x", arity)
    second = [first[i] if i in det else Var(f"y{i}") for i in range(arity)]
    egds = []
    for i in dep:
        egds.append(
            EGD(
                (Atom(relation, tuple(first)), Atom(relation, tuple(second))),
                first[i],
                second[i],
            )
        )
    return tuple(egds)


def inclusion_dependency(
    source: str,
    source_arity: int,
    source_positions: Sequence[int],
    target: str,
    target_arity: int,
    target_positions: Sequence[int],
) -> TGD:
    """The inclusion dependency ``source[positions] <= target[positions]``.

    For example ``inclusion_dependency("R", 2, [0], "S", 2, [1])`` is the
    paper's ``R(x, y) -> exists z S(z, x)``.
    """
    if len(source_positions) != len(target_positions):
        raise ValueError("position lists must have equal length")
    body_vars = _fresh_vars("x", source_arity)
    head_terms: List[Var] = _fresh_vars("z", target_arity)
    for src, tgt in zip(source_positions, target_positions):
        if not (0 <= src < source_arity and 0 <= tgt < target_arity):
            raise ValueError("inclusion dependency positions out of range")
        head_terms[tgt] = body_vars[src]
    return TGD(
        (Atom(source, tuple(body_vars)),),
        (Atom(target, tuple(head_terms)),),
    )


def non_symmetric(relation: str) -> DC:
    """The paper's preference DC: ``Pref(x, y), Pref(y, x) -> false``."""
    x, y = Var("x"), Var("y")
    return DC((Atom(relation, (x, y)), Atom(relation, (y, x))))


def disjoint_positions(relation: str, arity: int, first: int, second: int) -> DC:
    """DC forbidding a constant from appearing in both given positions.

    The paper's example: ``R(x, y), R(z, x) -> false`` says no value is
    both a first and a second attribute of ``R/2``.
    """
    left = _fresh_vars("x", arity)
    right = _fresh_vars("y", arity)
    right[second] = left[first]
    return DC((Atom(relation, tuple(left)), Atom(relation, tuple(right))))
