"""Denial constraints.

A DC has the form ``forall x not phi(x)`` (equation (3) of the paper),
i.e. ``phi(x) -> false``: the body pattern must have no homomorphism into
the database.
"""

from __future__ import annotations

from typing import Sequence, Tuple

from repro.constraints.base import Constraint
from repro.db.atoms import Atom
from repro.db.facts import Database
from repro.db.homomorphism import Assignment


class DC(Constraint):
    """``phi(x) -> false`` — the body must not match at all."""

    def __init__(self, body: Sequence[Atom]) -> None:
        super().__init__(body)

    def head_holds(self, assignment: Assignment, database: Database) -> bool:
        """A DC head is ``false``: every body homomorphism is a violation."""
        return False

    @property
    def head_relations(self):
        """``false`` inspects no facts — database-independent."""
        return frozenset()

    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        return f"{body} -> false"

    def _key(self) -> Tuple:
        return (self.body,)
