"""Tuple-generating dependencies.

A TGD has the form ``forall x, y (phi(x, y) -> exists z psi(x, z))``
(equation (1) of the paper).  It is satisfied when every body
homomorphism extends to a head homomorphism.
"""

from __future__ import annotations

from typing import FrozenSet, Iterator, Sequence, Tuple

from repro.constraints.base import Constraint
from repro.db.atoms import Atom, atoms_constants, atoms_variables
from repro.db.facts import Database, Fact
from repro.db.homomorphism import Assignment, has_homomorphism
from repro.db.terms import Term, Var


class TGD(Constraint):
    """``phi(x, y) -> exists z psi(x, z)``.

    The existential variables are exactly the head variables that do not
    occur in the body; they are inferred, so constructing a TGD only needs
    the two conjunctions of atoms.
    """

    def __init__(self, body: Sequence[Atom], head: Sequence[Atom]) -> None:
        super().__init__(body)
        head = tuple(head)
        if not head:
            raise ValueError("TGD heads must be non-empty")
        self.head: Tuple[Atom, ...] = head

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    @property
    def existential_variables(self) -> FrozenSet[Var]:
        """Head variables not bound by the body (the ``z`` of equation (1))."""
        return atoms_variables(self.head) - self.body_variables

    @property
    def frontier_variables(self) -> FrozenSet[Var]:
        """Variables shared between body and head (the ``x`` of equation (1))."""
        return atoms_variables(self.head) & self.body_variables

    @property
    def variables(self) -> FrozenSet[Var]:
        return self.body_variables | atoms_variables(self.head)

    @property
    def constants(self) -> FrozenSet[Term]:
        return atoms_constants(self.body) | atoms_constants(self.head)

    @property
    def head_relations(self) -> FrozenSet[str]:
        cached = self.__dict__.get("_head_relations")
        if cached is None:
            cached = frozenset(a.relation for a in self.head)
            self.__dict__["_head_relations"] = cached
        return cached

    # ------------------------------------------------------------------
    # Semantics
    # ------------------------------------------------------------------
    def head_holds(self, assignment: Assignment, database: Database) -> bool:
        """Whether some extension of *assignment* maps the head into *database*."""
        partial = {
            var: value
            for var, value in assignment.items()
            if var in self.frontier_variables
        }
        return has_homomorphism(self.head, database, partial)

    def head_images(
        self, assignment: Assignment, constants: FrozenSet[Term]
    ) -> Iterator[Tuple[Assignment, FrozenSet[Fact]]]:
        """Enumerate candidate head instantiations ``h'(psi)``.

        For a body homomorphism *assignment*, yields every extension ``h'``
        assigning the existential variables values from *constants* (the
        base constants of Definition 1), together with the fact set
        ``h'(psi)``.  Proposition 1 says a justified addition for this
        violation adds ``h'(psi) - D'`` for one of these extensions.
        """
        from itertools import product

        existentials = sorted(self.existential_variables, key=lambda v: v.name)
        fixed = {
            var: value
            for var, value in assignment.items()
            if var in self.frontier_variables
        }
        ordered = sorted(constants, key=lambda c: (type(c).__name__, str(c)))
        for choice in product(ordered, repeat=len(existentials)):
            extension = dict(fixed)
            extension.update(zip(existentials, choice))
            facts = frozenset(
                atom.substitute(extension).to_fact() for atom in self.head
            )
            yield extension, facts

    def schema(self):
        from repro.db.schema import Relation, Schema

        return Schema(
            Relation(a.relation, a.arity) for a in (*self.body, *self.head)
        )

    # ------------------------------------------------------------------
    # Rendering / identity
    # ------------------------------------------------------------------
    def __str__(self) -> str:
        body = ", ".join(str(a) for a in self.body)
        head = ", ".join(str(a) for a in self.head)
        existentials = sorted(self.existential_variables, key=lambda v: v.name)
        if existentials:
            names = ", ".join(v.name for v in existentials)
            return f"{body} -> exists {names} {head}"
        return f"{body} -> {head}"

    def _key(self) -> Tuple:
        return (self.body, self.head)
