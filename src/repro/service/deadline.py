"""Wall-clock deadlines that propagate end to end.

A :class:`Deadline` is an absolute point on the *monotonic* clock.  It
is created once at the edge (the service request handler, or a CLI
``--deadline`` flag), handed down through the coordinator into the
transport layer, and shipped over the wire as a *remaining-seconds*
budget (clocks differ between machines; monotonic offsets do not
survive a socket).  The worker rebuilds a local deadline from the
remaining budget and abandons any shard whose deadline has already
passed instead of computing draws nobody will merge.

This module is deliberately dependency-free (stdlib ``time`` only) so
that every layer — ``campaign``, ``distributed``, ``service`` — can
import it without cycles.
"""

from __future__ import annotations

import time
from typing import Optional

__all__ = ["Deadline", "DeadlineExpired"]


class DeadlineExpired(RuntimeError):
    """A deadline passed before the work guarded by it completed.

    Raised by :meth:`Deadline.check` and by any layer that notices
    expiry mid-flight (coordinator dispatch, worker shard execution).
    The error is *retriable only by policy*: the caller decides whether
    a partial (widened ``(eps, delta)``) estimate is acceptable or the
    query should be retried with a larger budget.
    """


class Deadline:
    """An absolute deadline on the monotonic clock.

    Instances are immutable value objects; ``remaining()`` and
    ``expired`` re-read the clock on every call.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline *seconds* from now.  ``seconds`` must be > 0."""
        seconds = float(seconds)
        if seconds <= 0:
            raise ValueError(f"deadline must be positive, got {seconds!r}")
        return cls(time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds left on the budget; negative once expired."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, what: str = "operation") -> None:
        """Raise :class:`DeadlineExpired` if the deadline has passed."""
        if self.expired:
            raise DeadlineExpired(f"{what} exceeded its deadline")

    def clamp(self, timeout: Optional[float]) -> float:
        """*timeout* bounded by the remaining budget.

        The result is never below a small positive floor so callers can
        use it directly as a socket/poll timeout: detecting expiry is
        the caller's job (via :meth:`check`), not the timeout's.
        """
        remaining = max(self.remaining(), 0.001)
        if timeout is None:
            return remaining
        return min(float(timeout), remaining)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(remaining={self.remaining():.3f}s)"
