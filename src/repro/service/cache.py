"""The query-service result cache: bounded, delta-invalidated, guarantee-aware.

``ocqa serve`` recomputes every repeat query from scratch; this module
gives it a thread-safe LRU (+ optional TTL) cache of finished
``/query`` bodies.  Three properties distinguish it from a generic
response cache:

**Keying is semantic, not positional.**  A :class:`CacheKey` folds the
instance digest (:func:`repro.sql.digest.database_digest` — order
independent, delta-rollable), the schema + constraint fingerprint, the
query identity, the backend name, and every knob that changes the drawn
bytes (seed, explicit run count, adaptive mode) through
:func:`repro.campaign.campaign_fingerprint`.  Two requests share an
entry exactly when the sampling machinery would produce byte-identical
estimates for them; a data or schema change can never alias a key.

**Hits respect the paper's guarantees.**  Every entry records the
``(eps, delta)`` level it was computed at and the valid draws behind
it.  A request for a *weaker* level ``(eps', delta')`` may be served
from a stronger entry: either the stored level dominates
(``eps <= eps'`` and ``delta <= delta'``) or the stored draw count
alone certifies ``eps'`` at ``delta'`` via the Hoeffding inversion
(:func:`repro.analysis.bernstein.widened_epsilon`).  Entries keyed by
an explicit run count ignore the level entirely — a fixed-``n``
campaign draws the same bytes whatever ``(eps, delta)`` the client
wrote next to it.

**Invalidation rides the delta path.**  ``apply_update`` on a sampler
returns an :class:`repro.campaign.UpdateReport`; feeding it to
:meth:`ResultCache.apply_update` removes exactly the entries whose
answers the delta could have changed (their dependency footprint meets
the delta's relations or a restructured conflict group) and *migrates*
the provably untouched ones to the post-update instance digest, so they
keep hitting.  When the report cannot prove anything — no pre/post
digests, or an entry with no sound footprint — the cache falls back to
a conservative flush of the affected entries.

Counters ``ocqa_cache_{hits,misses,invalidations,evictions,migrations}_total``
and trace spans ``cache_hit`` / ``cache_invalidate`` surface every
decision; :meth:`ResultCache.stats` feeds ``/status`` and
``diagnostics.cache_report``.
"""

from __future__ import annotations

import copy
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field, replace
from typing import Any, Dict, FrozenSet, List, Optional, Set, Tuple

from repro.analysis.bernstein import widened_epsilon
from repro.campaign import UpdateReport, campaign_fingerprint
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

__all__ = ["CacheHit", "CacheKey", "ResultCache", "request_cache_key"]

_HITS = obs_metrics.REGISTRY.counter(
    "ocqa_cache_hits_total",
    "Result-cache hits, by cache.",
    ("cache",),
)
_MISSES = obs_metrics.REGISTRY.counter(
    "ocqa_cache_misses_total",
    "Result-cache misses, by cache.",
    ("cache",),
)
_INVALIDATIONS = obs_metrics.REGISTRY.counter(
    "ocqa_cache_invalidations_total",
    "Result-cache entries invalidated, by cache and reason "
    "(delta, unproven, flush).",
    ("cache", "reason"),
)
_EVICTIONS = obs_metrics.REGISTRY.counter(
    "ocqa_cache_evictions_total",
    "Result-cache entries evicted, by cache and reason (lru, ttl, replace).",
    ("cache", "reason"),
)
_MIGRATIONS = obs_metrics.REGISTRY.counter(
    "ocqa_cache_migrations_total",
    "Result-cache entries migrated across an update whose delta "
    "provably missed them, by cache.",
    ("cache",),
)


@dataclass(frozen=True)
class CacheKey:
    """Everything (besides the accuracy level) that decides the bytes."""

    instance_digest: str
    constraint_fingerprint: str
    query_identity: str
    backend: str = "sqlite"
    seed: Optional[int] = None
    runs: Optional[int] = None
    adaptive: bool = False

    def base_fingerprint(self) -> str:
        return campaign_fingerprint(
            "result-cache-v1",
            self.instance_digest,
            self.constraint_fingerprint,
            self.query_identity,
            self.backend,
            self.seed,
            self.runs,
            self.adaptive,
        )

    def fingerprint(self, epsilon: float, delta: float) -> str:
        return campaign_fingerprint(
            self.base_fingerprint(), repr(epsilon), repr(delta)
        )


def request_cache_key(
    database: Any,
    constraints: Any,
    query: Any,
    *,
    backend: str = "sqlite",
    seed: Optional[int] = None,
    runs: Optional[int] = None,
    adaptive: bool = False,
) -> CacheKey:
    """Build the :class:`CacheKey` for one service request.

    *database* is a :class:`repro.db.facts.Database`, *constraints* a
    :class:`~repro.constraints.base.ConstraintSet`, *query* a parsed
    query.  The schema folded into the constraint fingerprint is the
    same one the query path builds (``Schema.infer + constraints
    schema``), so schema drift between requests changes the key.
    """
    from repro.db.schema import Schema
    from repro.sql.digest import database_digest

    schema = Schema.infer(database).extend(constraints.schema())
    return CacheKey(
        instance_digest=database_digest(database),
        constraint_fingerprint=campaign_fingerprint(
            schema.fingerprint(),
            tuple(sorted(str(c) for c in constraints)),
        ),
        query_identity=campaign_fingerprint(
            type(query).__name__, str(query)
        ),
        backend=backend,
        seed=seed,
        runs=runs,
        adaptive=adaptive,
    )


@dataclass
class _Entry:
    key: CacheKey
    epsilon: float
    delta: float
    draws: int
    relations: Optional[FrozenSet[str]]
    body: Dict[str, Any]
    created: float


@dataclass(frozen=True)
class CacheHit:
    """What :meth:`ResultCache.get` hands back on a hit."""

    body: Dict[str, Any]
    age_seconds: float
    draws: int
    epsilon: float
    delta: float
    #: The stored level matches the requested one exactly — the body is
    #: byte-identical to a recompute.  ``False`` marks a weaker-level
    #: hit served from a stronger entry (a *better* estimate than a
    #: recompute would produce).
    exact: bool


@dataclass
class _Stats:
    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    evictions: int = 0
    migrations: int = 0
    flushes: int = 0
    updates: int = 0
    lock: threading.Lock = field(default_factory=threading.Lock)


class ResultCache:
    """A bounded LRU/TTL map from :class:`CacheKey` + level to bodies."""

    def __init__(
        self,
        capacity: int = 256,
        ttl: Optional[float] = None,
        *,
        name: str = "service",
        clock=time.monotonic,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"cache capacity must be positive, got {capacity}")
        if ttl is not None and ttl <= 0:
            raise ValueError(f"cache ttl must be positive seconds, got {ttl}")
        self.capacity = int(capacity)
        self.ttl = ttl
        self.name = name
        self._clock = clock
        self._lock = threading.RLock()
        #: Full fingerprint -> entry, most recently used last.
        self._entries: "OrderedDict[str, _Entry]" = OrderedDict()
        #: Base fingerprint -> the full fingerprints of its levels.
        self._levels: Dict[str, Set[str]] = {}
        #: Instance digest -> the full fingerprints keyed under it.
        self._by_digest: Dict[str, Set[str]] = {}
        self._stats = _Stats()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    # ------------------------------------------------------------------
    # Lookup / insert
    # ------------------------------------------------------------------
    def get(
        self, key: CacheKey, epsilon: float, delta: float
    ) -> Optional[CacheHit]:
        """A hit valid at ``(epsilon, delta)``, or ``None`` (a miss).

        Every call counts exactly one hit or one miss — the service
        calls this once per ``cache: "use"`` request, which is what
        lets the soak reconcile the counters against its request log.
        """
        now = self._clock()
        with self._lock:
            entry, exact = self._lookup(key, epsilon, delta, now)
            if entry is None:
                self._count_miss()
                return None
            fingerprint = entry.key.fingerprint(entry.epsilon, entry.delta)
            self._entries.move_to_end(fingerprint)
            self._count_hit()
            age = max(0.0, now - entry.created)
            obs_trace.span(
                "cache_hit",
                cache=self.name,
                key=fingerprint[:16],
                age_seconds=round(age, 3),
                draws=entry.draws,
                exact=exact,
            )
            return CacheHit(
                body=copy.deepcopy(entry.body),
                age_seconds=age,
                draws=entry.draws,
                epsilon=entry.epsilon,
                delta=entry.delta,
                exact=exact,
            )

    def _lookup(
        self, key: CacheKey, epsilon: float, delta: float, now: float
    ) -> Tuple[Optional[_Entry], bool]:
        base = key.base_fingerprint()
        exact_fp = campaign_fingerprint(base, repr(epsilon), repr(delta))
        entry = self._entries.get(exact_fp)
        if entry is not None and self._fresh(entry, now):
            return entry, True
        best: Optional[_Entry] = None
        for fingerprint in list(self._levels.get(base, ())):
            candidate = self._entries.get(fingerprint)
            if candidate is None:
                continue
            if not self._fresh(candidate, now):
                continue
            if not self._serves(candidate, epsilon, delta):
                continue
            if best is None or candidate.draws > best.draws:
                best = candidate
        if best is None:
            return None, False
        # A fixed-run entry redraws the same bytes at any level, so the
        # requested level *is* served exactly.
        return best, key.runs is not None

    @staticmethod
    def _serves(entry: _Entry, epsilon: float, delta: float) -> bool:
        """The weaker-``(eps', delta')`` hit rule."""
        if entry.key.runs is not None:
            # Fixed-run campaigns never look at (eps, delta): the body
            # is byte-identical to a recompute at the requested level.
            return True
        if entry.epsilon <= epsilon and entry.delta <= delta:
            return True
        return widened_epsilon(entry.draws, delta) <= epsilon

    def put(
        self,
        key: CacheKey,
        epsilon: float,
        delta: float,
        *,
        draws: int,
        relations: Optional[FrozenSet[str]],
        body: Dict[str, Any],
    ) -> None:
        """Insert (or refresh) the entry for *key* at ``(eps, delta)``."""
        entry = _Entry(
            key=key,
            epsilon=float(epsilon),
            delta=float(delta),
            draws=int(draws),
            relations=None if relations is None else frozenset(relations),
            body=copy.deepcopy(body),
            created=self._clock(),
        )
        fingerprint = key.fingerprint(entry.epsilon, entry.delta)
        with self._lock:
            if fingerprint in self._entries:
                self._remove(fingerprint)
                self._count_eviction("replace")
            self._entries[fingerprint] = entry
            self._levels.setdefault(key.base_fingerprint(), set()).add(
                fingerprint
            )
            self._by_digest.setdefault(key.instance_digest, set()).add(
                fingerprint
            )
            while len(self._entries) > self.capacity:
                oldest = next(iter(self._entries))
                self._remove(oldest)
                self._count_eviction("lru")

    # ------------------------------------------------------------------
    # Invalidation
    # ------------------------------------------------------------------
    def apply_update(self, report: UpdateReport) -> Dict[str, int]:
        """Invalidate/migrate for one base-table delta.

        Entries keyed under ``report.old_digest`` whose dependency
        footprint meets the delta's unsafe relations (or who have no
        footprint) are invalidated; the rest are *migrated* to
        ``report.new_digest`` — their clean rows, conflict groups, and
        per-group RNG substreams are all provably unchanged, so the
        cached bytes remain exactly what a recompute would produce.
        Without digests the report proves nothing and the whole cache
        is flushed (the conservative fallback).
        """
        with self._lock:
            self._stats.updates += 1
            if report.old_digest is None or report.new_digest is None:
                flushed = self._flush_locked("unproven")
                obs_trace.span(
                    "cache_invalidate",
                    cache=self.name,
                    reason="unproven",
                    invalidated=flushed,
                    migrated=0,
                )
                return {"invalidated": flushed, "migrated": 0, "flushed": flushed}
            if report.old_digest == report.new_digest:
                return {"invalidated": 0, "migrated": 0, "flushed": 0}
            unsafe = report.unsafe_relations
            invalidated = migrated = 0
            for fingerprint in list(self._by_digest.get(report.old_digest, ())):
                entry = self._entries.get(fingerprint)
                if entry is None:
                    continue
                if entry.relations is None or entry.relations & unsafe:
                    self._remove(fingerprint)
                    invalidated += 1
                else:
                    self._migrate(fingerprint, entry, report.new_digest)
                    migrated += 1
            if invalidated:
                _INVALIDATIONS.inc(invalidated, cache=self.name, reason="delta")
                with self._stats.lock:
                    self._stats.invalidations += invalidated
            if migrated:
                _MIGRATIONS.inc(migrated, cache=self.name)
                with self._stats.lock:
                    self._stats.migrations += migrated
            obs_trace.span(
                "cache_invalidate",
                cache=self.name,
                reason="delta",
                invalidated=invalidated,
                migrated=migrated,
                touched_groups=len(report.touched_groups),
            )
            return {
                "invalidated": invalidated,
                "migrated": migrated,
                "flushed": 0,
            }

    def _migrate(self, fingerprint: str, entry: _Entry, new_digest: str) -> None:
        self._remove(fingerprint)
        new_key = replace(entry.key, instance_digest=new_digest)
        new_fp = new_key.fingerprint(entry.epsilon, entry.delta)
        if new_fp in self._entries:
            return
        self._entries[new_fp] = _Entry(
            key=new_key,
            epsilon=entry.epsilon,
            delta=entry.delta,
            draws=entry.draws,
            relations=entry.relations,
            body=entry.body,
            created=entry.created,
        )
        self._levels.setdefault(new_key.base_fingerprint(), set()).add(new_fp)
        self._by_digest.setdefault(new_digest, set()).add(new_fp)

    def flush(self, reason: str = "flush") -> int:
        """Drop everything; returns the number of entries removed."""
        with self._lock:
            flushed = self._flush_locked(reason)
        obs_trace.span(
            "cache_invalidate",
            cache=self.name,
            reason=reason,
            invalidated=flushed,
            migrated=0,
        )
        return flushed

    def _flush_locked(self, reason: str) -> int:
        flushed = len(self._entries)
        self._entries.clear()
        self._levels.clear()
        self._by_digest.clear()
        if flushed:
            _INVALIDATIONS.inc(flushed, cache=self.name, reason=reason)
            with self._stats.lock:
                self._stats.invalidations += flushed
        with self._stats.lock:
            self._stats.flushes += 1
        return flushed

    # ------------------------------------------------------------------
    # Bookkeeping
    # ------------------------------------------------------------------
    def _fresh(self, entry: _Entry, now: float) -> bool:
        if self.ttl is None:
            return True
        if now - entry.created <= self.ttl:
            return True
        self._remove(entry.key.fingerprint(entry.epsilon, entry.delta))
        self._count_eviction("ttl")
        return False

    def _remove(self, fingerprint: str) -> None:
        entry = self._entries.pop(fingerprint, None)
        if entry is None:
            return
        base = entry.key.base_fingerprint()
        level_set = self._levels.get(base)
        if level_set is not None:
            level_set.discard(fingerprint)
            if not level_set:
                del self._levels[base]
        digest_set = self._by_digest.get(entry.key.instance_digest)
        if digest_set is not None:
            digest_set.discard(fingerprint)
            if not digest_set:
                del self._by_digest[entry.key.instance_digest]

    def _count_hit(self) -> None:
        _HITS.inc(cache=self.name)
        with self._stats.lock:
            self._stats.hits += 1

    def _count_miss(self) -> None:
        _MISSES.inc(cache=self.name)
        with self._stats.lock:
            self._stats.misses += 1

    def _count_eviction(self, reason: str) -> None:
        _EVICTIONS.inc(cache=self.name, reason=reason)
        with self._stats.lock:
            self._stats.evictions += 1

    def stats(self) -> Dict[str, Any]:
        """A JSON-able snapshot for ``/status`` and diagnostics."""
        with self._lock:
            size = len(self._entries)
        with self._stats.lock:
            hits = self._stats.hits
            misses = self._stats.misses
            snapshot: Dict[str, Any] = {
                "name": self.name,
                "size": size,
                "capacity": self.capacity,
                "ttl_seconds": self.ttl,
                "hits": hits,
                "misses": misses,
                "hit_rate": round(hits / (hits + misses), 4)
                if hits + misses
                else 0.0,
                "invalidations": self._stats.invalidations,
                "evictions": self._stats.evictions,
                "migrations": self._stats.migrations,
                "flushes": self._stats.flushes,
                "updates": self._stats.updates,
            }
        return snapshot

    def entries(self) -> List[Dict[str, Any]]:
        """Debug view: one dict per live entry (no bodies)."""
        now = self._clock()
        with self._lock:
            return [
                {
                    "key": fp[:16],
                    "instance_digest": entry.key.instance_digest[:16],
                    "epsilon": entry.epsilon,
                    "delta": entry.delta,
                    "draws": entry.draws,
                    "relations": sorted(entry.relations)
                    if entry.relations is not None
                    else None,
                    "age_seconds": round(max(0.0, now - entry.created), 3),
                }
                for fp, entry in self._entries.items()
            ]
