"""The persistent multi-tenant CQA query service (``ocqa serve``).

A thread-pool HTTP/JSON front end over the sampling machinery: clients
POST CP(t)/OCA queries to ``/query`` and the service multiplexes them
onto the coordinator/worker fleet — worker processes already serve many
campaigns concurrently (each coordinator connection carries its own
campaign tag), so one long-lived fleet absorbs every tenant's load.

Three overload rails stand between a request and the samplers:

- :class:`~repro.service.admission.AdmissionController` — a bounded run
  queue with per-tenant concurrency and draw-budget quotas.  A request
  the service cannot take *now* is **shed**, not queued forever: the
  client gets HTTP 429 with a ``Retry-After`` header and a typed,
  retriable error body (``Overloaded`` / ``BudgetExhausted``).
- :class:`~repro.service.deadline.Deadline` — every admitted query
  carries a wall-clock budget that propagates end-to-end (service ->
  coordinator -> wire frames -> worker shard executor).  A query that
  cannot finish in time returns a *best-effort* estimate over the draws
  completed, with the widened ``(eps, delta)`` accounting
  (``achieved_epsilon``) instead of silently overrunning.
- **Graceful drain** — on SIGTERM the service stops accepting, answers
  new queries with a retriable 503, lets admitted queries finish
  (bounded by ``drain_timeout``), records the drain duration, and exits
  0.  Paired with the worker-side drain in
  :mod:`repro.distributed.worker`, a rolling restart of the whole
  deployment loses no campaign state and changes no estimate.

In front of the rails sits the **result cache**
(:mod:`repro.service.cache`): repeat queries are answered from memory
without consuming admission budget, ``POST /query`` takes ``cache:
"use" | "bypass" | "refresh"``, and ``POST /update`` applies base-table
deltas to a named instance through the samplers' incremental path —
whose :class:`~repro.campaign.UpdateReport` invalidates exactly the
cached answers the delta could have changed.

Failpoints ``service.queue_flood`` (inside the admission wait) and
``service.slow_consumer`` (in the response write path) hook the chaos
harness into the service layer; see :mod:`repro.distributed.chaos`.

Deployment note: the *service* speaks JSON over HTTP and is safe to
front with ordinary ingress, but the coordinator<->worker protocol
behind it still ships pickled campaign contexts — keep worker ports on
trusted networks only (see the README's "Failure semantics").
"""

from __future__ import annotations

import json
import logging
import random
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs.httpd import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.service.admission import (
    AdmissionController,
    RetriableServiceError,
    TenantQuota,
)
from repro.service.cache import CacheHit, ResultCache, request_cache_key
from repro.service.deadline import Deadline

log = logging.getLogger(__name__)

#: Wall-clock budget for queries that do not send their own.
DEFAULT_QUERY_DEADLINE = 30.0

#: Result-cache entries a service keeps by default (0 disables).
DEFAULT_CACHE_SIZE = 256

#: Named instances one service will hold for the update path.
MAX_INSTANCES = 64

_QUERY_LATENCY = obs_metrics.REGISTRY.histogram(
    "ocqa_query_latency_seconds",
    "End-to-end latency of executed /query requests, by tenant.",
    ("tenant",),
)
_QUERIES = obs_metrics.REGISTRY.counter(
    "ocqa_queries_total",
    "/query outcomes, by tenant and status "
    "(ok, error, invalid, shed, draining).",
    ("tenant", "status"),
)
_SERVICE_UPTIME = obs_metrics.REGISTRY.gauge(
    "ocqa_service_uptime_seconds", "Seconds since the query service started."
)
_QUERIES_SERVED = obs_metrics.REGISTRY.gauge(
    "ocqa_queries_served", "Queries answered 200 since service start."
)
_UPDATES = obs_metrics.REGISTRY.counter(
    "ocqa_updates_total",
    "/update outcomes, by status (ok, invalid, draining, error).",
    ("status",),
)


class ServiceUnavailable(RetriableServiceError):
    """The service is draining; retry against a healthy replica."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message, reason="draining", retry_after=retry_after)


def _bad_request(message: str) -> Tuple[int, Dict[str, Any]]:
    return 400, {"ok": False, "error": message, "retriable": False}


class _ServiceInstance:
    """A named, updatable database the service holds between requests.

    Registered by a ``/query`` payload carrying both ``instance`` and
    ``database``; later queries may name the instance instead of
    re-shipping the database, and ``/update`` applies base-table deltas
    through the sampler's incremental path — which is what feeds the
    result cache's delta-driven invalidation.
    """

    __slots__ = ("name", "database", "constraints_text", "digest", "lock")

    def __init__(self, name: str, database: Any, constraints_text: str) -> None:
        from repro.sql.digest import database_digest

        self.name = name
        self.database = database
        self.constraints_text = constraints_text
        self.digest = database_digest(database)
        self.lock = threading.Lock()


class QueryService:
    """The query front end: admission, deadlines, drain — then sampling.

    *worker_addresses* / *workers* describe the sampling fleet every
    admitted query is sharded onto (empty means serial, in-process
    sampling — still admission-controlled and deadline-bounded).
    Request handling lives in :meth:`handle_query` so tests can drive
    the full admission/deadline/shedding logic without a socket.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        admission: Optional[AdmissionController] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        worker_addresses: Sequence[str] = (),
        workers: Optional[int] = None,
        lease_timeout: Optional[float] = None,
        compress: Optional[bool] = None,
        default_deadline: float = DEFAULT_QUERY_DEADLINE,
        max_deadline: float = 300.0,
        drain_timeout: float = 30.0,
        name: Optional[str] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
        cache_ttl: Optional[float] = None,
    ) -> None:
        if cache_size < 0:
            raise ValueError(f"cache_size must be >= 0, got {cache_size}")
        if default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive, got {default_deadline}"
            )
        if max_deadline < default_deadline:
            raise ValueError(
                f"max_deadline ({max_deadline}) must be >= default_deadline "
                f"({default_deadline})"
            )
        if drain_timeout <= 0:
            raise ValueError(f"drain_timeout must be positive, got {drain_timeout}")
        self.admission = admission or AdmissionController(quotas=quotas)
        self.worker_addresses = tuple(worker_addresses)
        self.workers = workers
        self.lease_timeout = lease_timeout
        self.compress = compress
        self.default_deadline = default_deadline
        self.max_deadline = max_deadline
        self.drain_timeout = drain_timeout
        self.name = name or "ocqa-service"
        self.result_cache: Optional[ResultCache] = (
            ResultCache(cache_size, cache_ttl, name=self.name)
            if cache_size > 0
            else None
        )
        if self.result_cache is not None:
            from repro.diagnostics import register_result_cache

            register_result_cache(self.result_cache)
        self._instances: Dict[str, _ServiceInstance] = {}
        self._instances_lock = threading.Lock()
        self.queries_served = 0
        self.started_at = time.monotonic()
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._active_cond = threading.Condition()
        self._active_requests = 0
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._host, self._port = host, int(port)

        def _publish_service_gauges() -> None:
            _SERVICE_UPTIME.set(round(time.monotonic() - self.started_at, 3))
            _QUERIES_SERVED.set(self.queries_served)

        self._gauge_collector = _publish_service_gauges

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryService":
        """Bind and serve in a background thread (port 0 picks a port)."""
        service = self

        class _Handler(_ServiceHandler):
            pass

        _Handler.service = service
        self._httpd = ThreadingHTTPServer(
            (self._host, self._port), _Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            daemon=True,
            name=f"{self.name}-http",
        )
        self._thread.start()
        obs_metrics.REGISTRY.add_collector(self._gauge_collector)
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("service not started")
        return self._httpd.server_address[:2]

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def request_drain(self) -> None:
        """Start a graceful drain (idempotent, signal-handler safe)."""
        self._draining.set()

    def drain(self) -> float:
        """Drain and stop: refuse new queries, finish admitted ones.

        Blocks until in-flight requests hit zero or *drain_timeout*
        elapses; returns the drain duration (recorded via
        :func:`repro.diagnostics.record_drain` either way).
        """
        self.request_drain()
        started = time.monotonic()
        deadline = started + self.drain_timeout
        with self._active_cond:
            while self._active_requests > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    log.warning(
                        "%s: drain timed out with %d request(s) in flight",
                        self.name,
                        self._active_requests,
                    )
                    break
                self._active_cond.wait(timeout=min(remaining, 0.2))
        duration = time.monotonic() - started
        from repro.diagnostics import record_drain

        record_drain(duration)
        self._drained.set()
        self.close()
        return duration

    def close(self) -> None:
        if self.result_cache is not None:
            from repro.diagnostics import unregister_result_cache

            unregister_result_cache(self.result_cache)
        obs_metrics.REGISTRY.remove_collector(self._gauge_collector)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until a requested drain completes (for ``serve_service``)."""
        return self._drained.wait(timeout)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle_query(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Admit, run, and answer one query; returns ``(status, body)``.

        Typed refusals: 503 + ``draining`` while draining, 429 +
        ``reason``/``retry_after`` for admission sheds — both marked
        ``retriable`` so clients back off and retry instead of failing.
        """
        tenant = (
            str(payload.get("tenant", "default"))
            if isinstance(payload, dict)
            else "default"
        )
        if self._draining.is_set():
            exc = ServiceUnavailable(f"{self.name} is draining")
            _QUERIES.inc(tenant=tenant, status="draining")
            return 503, self._refusal_body(exc)
        try:
            request = _QueryRequest.parse(payload, self)
        except ValueError as exc:
            _QUERIES.inc(tenant=tenant, status="invalid")
            return _bad_request(str(exc))
        started = time.monotonic()
        cache_key = None
        if self.result_cache is not None and request.cache_mode != "bypass":
            cache_key = request_cache_key(
                request.database,
                request.constraints,
                request.query,
                seed=request.seed,
                runs=request.runs,
                adaptive=request.adaptive,
            )
            if request.cache_mode == "use":
                hit = self.result_cache.get(
                    cache_key, request.epsilon, request.delta
                )
                if hit is not None:
                    # A hit costs no draws, so it bypasses admission:
                    # serving from memory must keep working exactly when
                    # the service is too loaded to recompute.
                    body = self._cached_body(request, hit)
                    self.queries_served += 1
                    _QUERY_LATENCY.observe(
                        time.monotonic() - started, tenant=request.tenant
                    )
                    _QUERIES.inc(tenant=request.tenant, status="ok")
                    return 200, body
        try:
            ticket = self.admission.admit(request.tenant, draws=request.planned_draws)
        except RetriableServiceError as exc:
            _QUERIES.inc(tenant=request.tenant, status="shed")
            return 429, self._refusal_body(exc)
        token = obs_metrics.set_tenant(request.tenant)
        try:
            with ticket:
                body = self._run_admitted(request)
            if cache_key is not None:
                self._store_result(cache_key, request, body)
            body["cached"] = False
            self.queries_served += 1
            _QUERY_LATENCY.observe(
                time.monotonic() - started, tenant=request.tenant
            )
            _QUERIES.inc(tenant=request.tenant, status="ok")
            return 200, body
        except ValueError as exc:
            _QUERIES.inc(tenant=request.tenant, status="invalid")
            return _bad_request(str(exc))
        except Exception as exc:  # noqa: BLE001 - service boundary
            log.exception("%s: query failed", self.name)
            _QUERY_LATENCY.observe(
                time.monotonic() - started, tenant=request.tenant
            )
            _QUERIES.inc(tenant=request.tenant, status="error")
            return 500, {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "retriable": False,
            }
        finally:
            obs_metrics.reset_tenant(token)

    @staticmethod
    def _refusal_body(exc: RetriableServiceError) -> Dict[str, Any]:
        return {
            "ok": False,
            "error": str(exc),
            "reason": exc.reason,
            "retriable": True,
            "retry_after": exc.retry_after,
            "draining": exc.reason == "draining",
        }

    def _run_admitted(self, request: "_QueryRequest") -> Dict[str, Any]:
        """Run one admitted query against a fresh sampler + coordinator.

        Each query gets its own coordinator (dispatch is single-threaded
        per coordinator); the *workers* behind it are shared — their
        servers multiplex campaigns per connection — which is what makes
        concurrent tenants cheap.
        """
        from repro.db.schema import Schema
        from repro.distributed import Coordinator
        from repro.sql import ConstraintRepairSampler, create_backend

        deadline = Deadline.after(request.deadline_seconds)
        started = time.monotonic()
        coordinator = Coordinator.from_options(
            workers=self.workers,
            worker_addresses=self.worker_addresses,
            compress=self.compress,
            **({"lease_timeout": self.lease_timeout}
               if self.lease_timeout is not None else {}),
        )
        try:
            schema = Schema.infer(request.database).extend(
                request.constraints.schema()
            )
            with create_backend("sqlite") as backend:
                backend.load(request.database, schema)
                sampler = ConstraintRepairSampler(
                    backend,
                    schema,
                    request.constraints,
                    rng=random.Random(request.seed),
                    adaptive=request.adaptive,
                    coordinator=coordinator,
                )
                report = sampler.run(
                    request.query,
                    runs=request.runs,
                    epsilon=request.epsilon,
                    delta=request.delta,
                    deadline=deadline,
                )
        finally:
            if coordinator is not None:
                coordinator.close()
        frequencies: List[List[Any]] = [
            [[str(term) for term in candidate], frequency]
            for candidate, frequency in report.items()
        ]
        return {
            "ok": True,
            "tenant": request.tenant,
            "frequencies": frequencies,
            "runs": report.runs,
            "epsilon": request.epsilon,
            "delta": request.delta,
            "adaptive": report.adaptive,
            "stopped_early": report.stopped_early,
            "deadline_expired": report.deadline_expired,
            "achieved_epsilon": report.achieved_epsilon,
            "elapsed_seconds": round(time.monotonic() - started, 6),
        }

    # ------------------------------------------------------------------
    # Result cache
    # ------------------------------------------------------------------
    def _cached_body(
        self, request: "_QueryRequest", hit: CacheHit
    ) -> Dict[str, Any]:
        """Assemble the response for a cache hit.

        The stored core is byte-identical to what a recompute would
        return for an exact-level hit; a weaker-level hit keeps the
        stronger entry's frequencies (a strictly better estimate, still
        valid at the requested level) and reports the level actually
        achieved in ``cache_epsilon``/``cache_delta``.
        """
        body = hit.body
        body["tenant"] = request.tenant
        body["cached"] = True
        body["cache_age_seconds"] = round(hit.age_seconds, 3)
        if not hit.exact:
            body["cache_epsilon"] = hit.epsilon
            body["cache_delta"] = hit.delta
        body["epsilon"] = request.epsilon
        body["delta"] = request.delta
        return body

    def _store_result(
        self,
        cache_key: Any,
        request: "_QueryRequest",
        body: Dict[str, Any],
    ) -> None:
        """Cache one finished ``/query`` body (``use`` misses + ``refresh``).

        Best-effort results are never cached: a deadline-expired body
        certifies a *wider* epsilon than requested, and byte-identity
        with an unhurried recompute would be broken.
        """
        if self.result_cache is None:
            return
        if not body.get("ok") or body.get("deadline_expired"):
            return
        from repro.queries.relations import dependency_relations

        core = {
            key: value
            for key, value in body.items()
            if key != "elapsed_seconds"
        }
        self.result_cache.put(
            cache_key,
            request.epsilon,
            request.delta,
            draws=int(body.get("runs") or 0),
            relations=dependency_relations(request.query),
            body=core,
        )

    # ------------------------------------------------------------------
    # Instance registry + the update path
    # ------------------------------------------------------------------
    def register_instance(
        self, name: str, database: Any, constraints_text: str
    ) -> "_ServiceInstance":
        """Create or replace the named instance (``/query`` side effect)."""
        with self._instances_lock:
            existing = self._instances.get(name)
            if (
                existing is None
                and len(self._instances) >= MAX_INSTANCES
            ):
                raise ValueError(
                    f"instance limit reached ({MAX_INSTANCES}); "
                    f"re-use or update an existing instance"
                )
            instance = _ServiceInstance(name, database, constraints_text)
            self._instances[name] = instance
            return instance

    def get_instance(self, name: str) -> Optional["_ServiceInstance"]:
        with self._instances_lock:
            return self._instances.get(name)

    def handle_update(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Apply a base-table delta to a named instance; returns ``(status, body)``.

        The delta runs through ``ConstraintRepairSampler.apply_update``
        — the same incremental violation-index path every sampler uses —
        and the resulting :class:`~repro.campaign.UpdateReport` drives
        the result cache: entries the delta could have changed are
        invalidated, provably untouched ones are migrated to the
        post-update instance digest and keep hitting.
        """
        if self._draining.is_set():
            _UPDATES.inc(status="draining")
            return 503, self._refusal_body(
                ServiceUnavailable(f"{self.name} is draining")
            )
        try:
            return self._apply_update(payload)
        except ValueError as exc:
            _UPDATES.inc(status="invalid")
            return _bad_request(str(exc))
        except Exception as exc:  # noqa: BLE001 - service boundary
            log.exception("%s: update failed", self.name)
            _UPDATES.inc(status="error")
            return 500, {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "retriable": False,
            }

    def _apply_update(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        import dataclasses

        from repro.constraints import ConstraintSet
        from repro.constraints.parser import parse_constraints
        from repro.db.facts import Database, Fact
        from repro.db.schema import Schema
        from repro.sql import ConstraintRepairSampler, create_backend
        from repro.sql.digest import database_digest

        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        name = payload.get("instance")
        if not name:
            raise ValueError("missing required field 'instance'")
        instance = self.get_instance(str(name))
        if instance is None:
            raise ValueError(
                f"unknown instance {name!r}; register it with a /query "
                f"carrying both 'instance' and 'database'"
            )

        def _facts(field: str) -> List[Fact]:
            spec = payload.get(field) or {}
            if not isinstance(spec, dict):
                raise ValueError(
                    f"'{field}' must be a {{relation: [rows]}} object"
                )
            out = []
            for relation, rows in spec.items():
                if not isinstance(rows, list):
                    raise ValueError(f"'{field}.{relation}' must be a list of rows")
                for row in rows:
                    if not isinstance(row, (list, tuple)):
                        raise ValueError(
                            f"'{field}.{relation}' rows must be arrays"
                        )
                    out.append(Fact(str(relation), tuple(row)))
            return out

        add = _facts("add")
        remove = _facts("remove")
        if not add and not remove:
            raise ValueError("update must add or remove at least one fact")
        with instance.lock:
            old_db = instance.database
            # Normalize the delta against what is actually there so the
            # rolled digest stays truthful under duplicate adds/removes.
            added = [f for f in add if f not in old_db]
            removed = [f for f in remove if f in old_db]
            constraints = ConstraintSet(
                parse_constraints(instance.constraints_text)
            )
            schema = Schema.infer(old_db).extend(constraints.schema())
            known = {rel.name: rel.arity for rel in schema}
            for fact in added:
                arity = known.get(fact.relation)
                if arity is None or arity != fact.arity:
                    raise ValueError(
                        f"added fact {fact} does not fit the instance "
                        f"schema (known relations: {sorted(known)})"
                    )
            report = None
            if added or removed:
                with create_backend("sqlite") as backend:
                    backend.load(old_db, schema)
                    sampler = ConstraintRepairSampler(
                        backend, schema, constraints
                    )
                    report = sampler.apply_update(added, removed)
                new_db = Database((old_db.facts - set(removed)) | set(added))
                old_digest = instance.digest
                new_digest = database_digest(new_db)
                instance.database = new_db
                instance.digest = new_digest
                report = dataclasses.replace(
                    report, old_digest=old_digest, new_digest=new_digest
                )
            cache_outcome = {"invalidated": 0, "migrated": 0, "flushed": 0}
            if report is not None and self.result_cache is not None:
                cache_outcome = self.result_cache.apply_update(report)
        _UPDATES.inc(status="ok")
        return 200, {
            "ok": True,
            "instance": instance.name,
            "digest": instance.digest,
            "added": len(added),
            "removed": len(removed),
            "touched_groups": len(report.touched_groups) if report else 0,
            "touched_relations": sorted(report.unsafe_relations)
            if report
            else [],
            "cache": cache_outcome,
        }

    def status(self) -> Dict[str, Any]:
        """The ``/status`` body: admission occupancy + overload counters."""
        from repro.diagnostics import aggregated_overload_stats

        with self._instances_lock:
            instances = sorted(self._instances)
        return {
            "name": self.name,
            "draining": self.draining,
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "queries_served": self.queries_served,
            "admission": self.admission.snapshot(),
            "overload": aggregated_overload_stats(),
            "workers": list(self.worker_addresses),
            "local_pool": self.workers or 0,
            "result_cache": self.result_cache.stats()
            if self.result_cache is not None
            else None,
            "instances": instances,
        }

    # ------------------------------------------------------------------
    # In-flight accounting (for drain)
    # ------------------------------------------------------------------
    def _enter_request(self) -> None:
        with self._active_cond:
            self._active_requests += 1

    def _exit_request(self) -> None:
        with self._active_cond:
            self._active_requests -= 1
            self._active_cond.notify_all()


class _QueryRequest:
    """A validated ``/query`` payload."""

    __slots__ = (
        "tenant",
        "database",
        "constraints",
        "query",
        "epsilon",
        "delta",
        "runs",
        "adaptive",
        "seed",
        "deadline_seconds",
        "planned_draws",
        "cache_mode",
        "instance",
    )

    @classmethod
    def parse(cls, payload: Dict[str, Any], service: QueryService) -> "_QueryRequest":
        from repro.analysis.hoeffding import sample_size
        from repro.constraints import ConstraintSet
        from repro.constraints.parser import parse_constraints
        from repro.io import database_from_json
        from repro.queries.parser import parse_query

        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        self = cls()
        self.tenant = str(payload.get("tenant", "default"))
        cache_mode = str(payload.get("cache", "use"))
        if cache_mode not in ("use", "bypass", "refresh"):
            raise ValueError(
                f"'cache' must be 'use', 'bypass', or 'refresh', "
                f"got {cache_mode!r}"
            )
        self.cache_mode = cache_mode
        instance = payload.get("instance")
        self.instance = None if instance is None else str(instance)
        stored = None
        if self.instance is not None and "database" not in payload:
            stored = service.get_instance(self.instance)
            if stored is None:
                raise ValueError(
                    f"unknown instance {self.instance!r}; register it by "
                    f"sending 'database' (and 'constraints') along with "
                    f"'instance' once"
                )
        required = ("query",) if stored is not None else (
            "database",
            "constraints",
            "query",
        )
        for field in required:
            if field not in payload:
                raise ValueError(f"missing required field {field!r}")
        if stored is not None:
            self.database = stored.database
            constraints = payload.get("constraints", stored.constraints_text)
        else:
            database = payload["database"]
            if isinstance(database, str):
                self.database = database_from_json(database)
            elif isinstance(database, dict):
                self.database = database_from_json(json.dumps(database))
            else:
                raise ValueError(
                    "'database' must be a {relation: [rows]} object or its "
                    "JSON string"
                )
            constraints = payload["constraints"]
        if isinstance(constraints, list):
            constraints = "\n".join(constraints)
        if not isinstance(constraints, str):
            raise ValueError(
                "'constraints' must be constraint text (string or list "
                "of lines)"
            )
        self.constraints = ConstraintSet(parse_constraints(constraints))
        if self.instance is not None and stored is None:
            service.register_instance(self.instance, self.database, constraints)
        self.query = parse_query(str(payload["query"]))
        self.epsilon = float(payload.get("epsilon", 0.1))
        self.delta = float(payload.get("delta", 0.1))
        if not 0 < self.epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if not 0 < self.delta < 1:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")
        runs = payload.get("runs")
        self.runs = None if runs is None else int(runs)
        if self.runs is not None and self.runs < 1:
            raise ValueError(f"runs must be positive, got {self.runs}")
        self.adaptive = bool(payload.get("adaptive", False))
        seed = payload.get("seed")
        self.seed = None if seed is None else int(seed)
        deadline = payload.get("deadline", service.default_deadline)
        deadline = float(deadline)
        if deadline <= 0:
            raise ValueError(f"deadline must be positive seconds, got {deadline}")
        self.deadline_seconds = min(deadline, service.max_deadline)
        #: The draw budget this query asks the admission controller for:
        #: the explicit run count, or the Hoeffding count implied by
        #: ``(epsilon, delta)`` — the worst case, since adaptive
        #: campaigns never exceed it.
        self.planned_draws = (
            self.runs
            if self.runs is not None
            else sample_size(self.epsilon, self.delta)
        )
        return self


class _ServiceHandler(BaseHTTPRequestHandler):
    """Thin HTTP shim over :meth:`QueryService.handle_query`."""

    service: QueryService
    protocol_version = "HTTP/1.1"

    #: Cap request bodies (a whole database rides in one) at 64 MiB —
    #: a memory-pressure guard, not a protocol limit.
    MAX_BODY = 64 * 1024 * 1024

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path not in ("/query", "/update"):
            self._respond(404, {"ok": False, "error": f"no such path {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._respond(400, {"ok": False, "error": "bad Content-Length"})
            return
        if length <= 0 or length > self.MAX_BODY:
            self._respond(
                413 if length > self.MAX_BODY else 400,
                {"ok": False, "error": f"unacceptable body length {length}"},
            )
            return
        try:
            payload = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._respond(400, {"ok": False, "error": f"bad JSON body: {exc}"})
            return
        self.service._enter_request()
        try:
            if self.path == "/update":
                status, body = self.service.handle_update(payload)
            else:
                status, body = self.service.handle_query(payload)
        finally:
            self.service._exit_request()
        self._respond(status, body)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/status":
            self._respond(200, self.service.status())
        elif self.path == "/metrics":
            # The parent registry merges the service's own series with
            # the worker snapshots pushed over the ``metrics`` capability
            # — one scrape covers the whole fleet this service drives.
            self._respond_text(200, obs_metrics.REGISTRY.render())
        elif self.path == "/healthz":
            self._respond(
                503 if self.service.draining else 200,
                {"ok": not self.service.draining,
                 "draining": self.service.draining},
            )
        else:
            self._respond(404, {"ok": False, "error": f"no such path {self.path}"})

    def _respond_text(self, status: int, text: str) -> None:
        encoded = text.encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", METRICS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(encoded)))
            self.end_headers()
            self.wfile.write(encoded)
        except (BrokenPipeError, ConnectionResetError):
            log.debug("client went away mid-response")

    def _respond(self, status: int, body: Dict[str, Any]) -> None:
        from repro.distributed.chaos import failpoint

        encoded = json.dumps(body).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(encoded)))
            retry_after = body.get("retry_after")
            if status in (429, 503) and retry_after:
                self.send_header("Retry-After", str(max(1, int(retry_after + 0.5))))
            self.end_headers()
            # A slow/stuck client connection must not wedge the service:
            # the chaos harness arms this site (action=sleepN) to prove
            # other requests keep flowing while one response stalls.
            failpoint("service.slow_consumer")
            self.wfile.write(encoded)
        except (BrokenPipeError, ConnectionResetError):
            log.debug("client went away mid-response")

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        log.debug("%s %s", self.address_string(), format % args)


def serve_service(service: QueryService, announce: bool = True) -> int:
    """Run *service* until SIGTERM/SIGINT triggers a graceful drain.

    The ``ocqa serve`` driver: installs signal handlers routing into the
    drain path, blocks, and returns 0 after a clean drain — the process
    exit the supervisor/rolling-restart machinery relies on.
    """
    import signal

    service.start()

    def _drain_signal(_signum: int, _frame: Any) -> None:
        service.request_drain()

    previous = {}
    try:
        # Handlers go in BEFORE the announce line: anything supervising
        # the service treats the announce as "ready" and may SIGTERM at
        # any moment after it.
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, _drain_signal)
            except ValueError:  # pragma: no cover - non-main thread
                break
        if announce:
            host, port = service.address
            print(
                f"repro query service {service.name} listening on "
                f"{host}:{port}",
                flush=True,
            )
        while not service.draining:
            time.sleep(0.2)
        duration = service.drain()
        if announce:
            print(
                f"repro query service {service.name} drained in "
                f"{duration:.2f}s",
                flush=True,
            )
    except KeyboardInterrupt:  # pragma: no cover - belt and braces
        service.drain()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        service.close()
    return 0


__all__ = [
    "DEFAULT_CACHE_SIZE",
    "DEFAULT_QUERY_DEADLINE",
    "MAX_INSTANCES",
    "QueryService",
    "ServiceUnavailable",
    "serve_service",
]
