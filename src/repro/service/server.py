"""The persistent multi-tenant CQA query service (``ocqa serve``).

A thread-pool HTTP/JSON front end over the sampling machinery: clients
POST CP(t)/OCA queries to ``/query`` and the service multiplexes them
onto the coordinator/worker fleet — worker processes already serve many
campaigns concurrently (each coordinator connection carries its own
campaign tag), so one long-lived fleet absorbs every tenant's load.

Three overload rails stand between a request and the samplers:

- :class:`~repro.service.admission.AdmissionController` — a bounded run
  queue with per-tenant concurrency and draw-budget quotas.  A request
  the service cannot take *now* is **shed**, not queued forever: the
  client gets HTTP 429 with a ``Retry-After`` header and a typed,
  retriable error body (``Overloaded`` / ``BudgetExhausted``).
- :class:`~repro.service.deadline.Deadline` — every admitted query
  carries a wall-clock budget that propagates end-to-end (service ->
  coordinator -> wire frames -> worker shard executor).  A query that
  cannot finish in time returns a *best-effort* estimate over the draws
  completed, with the widened ``(eps, delta)`` accounting
  (``achieved_epsilon``) instead of silently overrunning.
- **Graceful drain** — on SIGTERM the service stops accepting, answers
  new queries with a retriable 503, lets admitted queries finish
  (bounded by ``drain_timeout``), records the drain duration, and exits
  0.  Paired with the worker-side drain in
  :mod:`repro.distributed.worker`, a rolling restart of the whole
  deployment loses no campaign state and changes no estimate.

Failpoints ``service.queue_flood`` (inside the admission wait) and
``service.slow_consumer`` (in the response write path) hook the chaos
harness into the service layer; see :mod:`repro.distributed.chaos`.

Deployment note: the *service* speaks JSON over HTTP and is safe to
front with ordinary ingress, but the coordinator<->worker protocol
behind it still ships pickled campaign contexts — keep worker ports on
trusted networks only (see the README's "Failure semantics").
"""

from __future__ import annotations

import json
import logging
import random
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs import metrics as obs_metrics
from repro.obs.httpd import CONTENT_TYPE as METRICS_CONTENT_TYPE
from repro.service.admission import (
    AdmissionController,
    RetriableServiceError,
    TenantQuota,
)
from repro.service.deadline import Deadline

log = logging.getLogger(__name__)

#: Wall-clock budget for queries that do not send their own.
DEFAULT_QUERY_DEADLINE = 30.0

_QUERY_LATENCY = obs_metrics.REGISTRY.histogram(
    "ocqa_query_latency_seconds",
    "End-to-end latency of executed /query requests, by tenant.",
    ("tenant",),
)
_QUERIES = obs_metrics.REGISTRY.counter(
    "ocqa_queries_total",
    "/query outcomes, by tenant and status "
    "(ok, error, invalid, shed, draining).",
    ("tenant", "status"),
)
_SERVICE_UPTIME = obs_metrics.REGISTRY.gauge(
    "ocqa_service_uptime_seconds", "Seconds since the query service started."
)
_QUERIES_SERVED = obs_metrics.REGISTRY.gauge(
    "ocqa_queries_served", "Queries answered 200 since service start."
)


class ServiceUnavailable(RetriableServiceError):
    """The service is draining; retry against a healthy replica."""

    def __init__(self, message: str, retry_after: float = 1.0) -> None:
        super().__init__(message, reason="draining", retry_after=retry_after)


def _bad_request(message: str) -> Tuple[int, Dict[str, Any]]:
    return 400, {"ok": False, "error": message, "retriable": False}


class QueryService:
    """The query front end: admission, deadlines, drain — then sampling.

    *worker_addresses* / *workers* describe the sampling fleet every
    admitted query is sharded onto (empty means serial, in-process
    sampling — still admission-controlled and deadline-bounded).
    Request handling lives in :meth:`handle_query` so tests can drive
    the full admission/deadline/shedding logic without a socket.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        admission: Optional[AdmissionController] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
        worker_addresses: Sequence[str] = (),
        workers: Optional[int] = None,
        lease_timeout: Optional[float] = None,
        compress: Optional[bool] = None,
        default_deadline: float = DEFAULT_QUERY_DEADLINE,
        max_deadline: float = 300.0,
        drain_timeout: float = 30.0,
        name: Optional[str] = None,
    ) -> None:
        if default_deadline <= 0:
            raise ValueError(
                f"default_deadline must be positive, got {default_deadline}"
            )
        if max_deadline < default_deadline:
            raise ValueError(
                f"max_deadline ({max_deadline}) must be >= default_deadline "
                f"({default_deadline})"
            )
        if drain_timeout <= 0:
            raise ValueError(f"drain_timeout must be positive, got {drain_timeout}")
        self.admission = admission or AdmissionController(quotas=quotas)
        self.worker_addresses = tuple(worker_addresses)
        self.workers = workers
        self.lease_timeout = lease_timeout
        self.compress = compress
        self.default_deadline = default_deadline
        self.max_deadline = max_deadline
        self.drain_timeout = drain_timeout
        self.name = name or "ocqa-service"
        self.queries_served = 0
        self.started_at = time.monotonic()
        self._draining = threading.Event()
        self._drained = threading.Event()
        self._active_cond = threading.Condition()
        self._active_requests = 0
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._thread: Optional[threading.Thread] = None
        self._host, self._port = host, int(port)

        def _publish_service_gauges() -> None:
            _SERVICE_UPTIME.set(round(time.monotonic() - self.started_at, 3))
            _QUERIES_SERVED.set(self.queries_served)

        self._gauge_collector = _publish_service_gauges

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "QueryService":
        """Bind and serve in a background thread (port 0 picks a port)."""
        service = self

        class _Handler(_ServiceHandler):
            pass

        _Handler.service = service
        self._httpd = ThreadingHTTPServer(
            (self._host, self._port), _Handler
        )
        self._httpd.daemon_threads = True
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.2},
            daemon=True,
            name=f"{self.name}-http",
        )
        self._thread.start()
        obs_metrics.REGISTRY.add_collector(self._gauge_collector)
        return self

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` (after :meth:`start`)."""
        if self._httpd is None:
            raise RuntimeError("service not started")
        return self._httpd.server_address[:2]

    @property
    def draining(self) -> bool:
        return self._draining.is_set()

    def request_drain(self) -> None:
        """Start a graceful drain (idempotent, signal-handler safe)."""
        self._draining.set()

    def drain(self) -> float:
        """Drain and stop: refuse new queries, finish admitted ones.

        Blocks until in-flight requests hit zero or *drain_timeout*
        elapses; returns the drain duration (recorded via
        :func:`repro.diagnostics.record_drain` either way).
        """
        self.request_drain()
        started = time.monotonic()
        deadline = started + self.drain_timeout
        with self._active_cond:
            while self._active_requests > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    log.warning(
                        "%s: drain timed out with %d request(s) in flight",
                        self.name,
                        self._active_requests,
                    )
                    break
                self._active_cond.wait(timeout=min(remaining, 0.2))
        duration = time.monotonic() - started
        from repro.diagnostics import record_drain

        record_drain(duration)
        self._drained.set()
        self.close()
        return duration

    def close(self) -> None:
        obs_metrics.REGISTRY.remove_collector(self._gauge_collector)
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "QueryService":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    def wait_drained(self, timeout: Optional[float] = None) -> bool:
        """Block until a requested drain completes (for ``serve_service``)."""
        return self._drained.wait(timeout)

    # ------------------------------------------------------------------
    # Request handling
    # ------------------------------------------------------------------
    def handle_query(self, payload: Dict[str, Any]) -> Tuple[int, Dict[str, Any]]:
        """Admit, run, and answer one query; returns ``(status, body)``.

        Typed refusals: 503 + ``draining`` while draining, 429 +
        ``reason``/``retry_after`` for admission sheds — both marked
        ``retriable`` so clients back off and retry instead of failing.
        """
        tenant = (
            str(payload.get("tenant", "default"))
            if isinstance(payload, dict)
            else "default"
        )
        if self._draining.is_set():
            exc = ServiceUnavailable(f"{self.name} is draining")
            _QUERIES.inc(tenant=tenant, status="draining")
            return 503, self._refusal_body(exc)
        try:
            request = _QueryRequest.parse(payload, self)
        except ValueError as exc:
            _QUERIES.inc(tenant=tenant, status="invalid")
            return _bad_request(str(exc))
        try:
            ticket = self.admission.admit(request.tenant, draws=request.planned_draws)
        except RetriableServiceError as exc:
            _QUERIES.inc(tenant=request.tenant, status="shed")
            return 429, self._refusal_body(exc)
        started = time.monotonic()
        token = obs_metrics.set_tenant(request.tenant)
        try:
            with ticket:
                body = self._run_admitted(request)
            self.queries_served += 1
            _QUERY_LATENCY.observe(
                time.monotonic() - started, tenant=request.tenant
            )
            _QUERIES.inc(tenant=request.tenant, status="ok")
            return 200, body
        except ValueError as exc:
            _QUERIES.inc(tenant=request.tenant, status="invalid")
            return _bad_request(str(exc))
        except Exception as exc:  # noqa: BLE001 - service boundary
            log.exception("%s: query failed", self.name)
            _QUERY_LATENCY.observe(
                time.monotonic() - started, tenant=request.tenant
            )
            _QUERIES.inc(tenant=request.tenant, status="error")
            return 500, {
                "ok": False,
                "error": f"{type(exc).__name__}: {exc}",
                "retriable": False,
            }
        finally:
            obs_metrics.reset_tenant(token)

    @staticmethod
    def _refusal_body(exc: RetriableServiceError) -> Dict[str, Any]:
        return {
            "ok": False,
            "error": str(exc),
            "reason": exc.reason,
            "retriable": True,
            "retry_after": exc.retry_after,
            "draining": exc.reason == "draining",
        }

    def _run_admitted(self, request: "_QueryRequest") -> Dict[str, Any]:
        """Run one admitted query against a fresh sampler + coordinator.

        Each query gets its own coordinator (dispatch is single-threaded
        per coordinator); the *workers* behind it are shared — their
        servers multiplex campaigns per connection — which is what makes
        concurrent tenants cheap.
        """
        from repro.db.schema import Schema
        from repro.distributed import Coordinator
        from repro.sql import ConstraintRepairSampler, create_backend

        deadline = Deadline.after(request.deadline_seconds)
        started = time.monotonic()
        coordinator = Coordinator.from_options(
            workers=self.workers,
            worker_addresses=self.worker_addresses,
            compress=self.compress,
            **({"lease_timeout": self.lease_timeout}
               if self.lease_timeout is not None else {}),
        )
        try:
            schema = Schema.infer(request.database).extend(
                request.constraints.schema()
            )
            with create_backend("sqlite") as backend:
                backend.load(request.database, schema)
                sampler = ConstraintRepairSampler(
                    backend,
                    schema,
                    request.constraints,
                    rng=random.Random(request.seed),
                    adaptive=request.adaptive,
                    coordinator=coordinator,
                )
                report = sampler.run(
                    request.query,
                    runs=request.runs,
                    epsilon=request.epsilon,
                    delta=request.delta,
                    deadline=deadline,
                )
        finally:
            if coordinator is not None:
                coordinator.close()
        frequencies: List[List[Any]] = [
            [[str(term) for term in candidate], frequency]
            for candidate, frequency in report.items()
        ]
        return {
            "ok": True,
            "tenant": request.tenant,
            "frequencies": frequencies,
            "runs": report.runs,
            "epsilon": request.epsilon,
            "delta": request.delta,
            "adaptive": report.adaptive,
            "stopped_early": report.stopped_early,
            "deadline_expired": report.deadline_expired,
            "achieved_epsilon": report.achieved_epsilon,
            "elapsed_seconds": round(time.monotonic() - started, 6),
        }

    def status(self) -> Dict[str, Any]:
        """The ``/status`` body: admission occupancy + overload counters."""
        from repro.diagnostics import aggregated_overload_stats

        return {
            "name": self.name,
            "draining": self.draining,
            "uptime_seconds": round(time.monotonic() - self.started_at, 3),
            "queries_served": self.queries_served,
            "admission": self.admission.snapshot(),
            "overload": aggregated_overload_stats(),
            "workers": list(self.worker_addresses),
            "local_pool": self.workers or 0,
        }

    # ------------------------------------------------------------------
    # In-flight accounting (for drain)
    # ------------------------------------------------------------------
    def _enter_request(self) -> None:
        with self._active_cond:
            self._active_requests += 1

    def _exit_request(self) -> None:
        with self._active_cond:
            self._active_requests -= 1
            self._active_cond.notify_all()


class _QueryRequest:
    """A validated ``/query`` payload."""

    __slots__ = (
        "tenant",
        "database",
        "constraints",
        "query",
        "epsilon",
        "delta",
        "runs",
        "adaptive",
        "seed",
        "deadline_seconds",
        "planned_draws",
    )

    @classmethod
    def parse(cls, payload: Dict[str, Any], service: QueryService) -> "_QueryRequest":
        from repro.analysis.hoeffding import sample_size
        from repro.constraints import ConstraintSet
        from repro.constraints.parser import parse_constraints
        from repro.io import database_from_json
        from repro.queries.parser import parse_query

        if not isinstance(payload, dict):
            raise ValueError("request body must be a JSON object")
        self = cls()
        self.tenant = str(payload.get("tenant", "default"))
        for field in ("database", "constraints", "query"):
            if field not in payload:
                raise ValueError(f"missing required field {field!r}")
        database = payload["database"]
        if isinstance(database, str):
            self.database = database_from_json(database)
        elif isinstance(database, dict):
            self.database = database_from_json(json.dumps(database))
        else:
            raise ValueError(
                "'database' must be a {relation: [rows]} object or its "
                "JSON string"
            )
        constraints = payload["constraints"]
        if isinstance(constraints, list):
            constraints = "\n".join(constraints)
        if not isinstance(constraints, str):
            raise ValueError(
                "'constraints' must be constraint text (string or list "
                "of lines)"
            )
        self.constraints = ConstraintSet(parse_constraints(constraints))
        self.query = parse_query(str(payload["query"]))
        self.epsilon = float(payload.get("epsilon", 0.1))
        self.delta = float(payload.get("delta", 0.1))
        if not 0 < self.epsilon < 1:
            raise ValueError(f"epsilon must be in (0, 1), got {self.epsilon}")
        if not 0 < self.delta < 1:
            raise ValueError(f"delta must be in (0, 1), got {self.delta}")
        runs = payload.get("runs")
        self.runs = None if runs is None else int(runs)
        if self.runs is not None and self.runs < 1:
            raise ValueError(f"runs must be positive, got {self.runs}")
        self.adaptive = bool(payload.get("adaptive", False))
        seed = payload.get("seed")
        self.seed = None if seed is None else int(seed)
        deadline = payload.get("deadline", service.default_deadline)
        deadline = float(deadline)
        if deadline <= 0:
            raise ValueError(f"deadline must be positive seconds, got {deadline}")
        self.deadline_seconds = min(deadline, service.max_deadline)
        #: The draw budget this query asks the admission controller for:
        #: the explicit run count, or the Hoeffding count implied by
        #: ``(epsilon, delta)`` — the worst case, since adaptive
        #: campaigns never exceed it.
        self.planned_draws = (
            self.runs
            if self.runs is not None
            else sample_size(self.epsilon, self.delta)
        )
        return self


class _ServiceHandler(BaseHTTPRequestHandler):
    """Thin HTTP shim over :meth:`QueryService.handle_query`."""

    service: QueryService
    protocol_version = "HTTP/1.1"

    #: Cap request bodies (a whole database rides in one) at 64 MiB —
    #: a memory-pressure guard, not a protocol limit.
    MAX_BODY = 64 * 1024 * 1024

    def do_POST(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path != "/query":
            self._respond(404, {"ok": False, "error": f"no such path {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
        except ValueError:
            self._respond(400, {"ok": False, "error": "bad Content-Length"})
            return
        if length <= 0 or length > self.MAX_BODY:
            self._respond(
                413 if length > self.MAX_BODY else 400,
                {"ok": False, "error": f"unacceptable body length {length}"},
            )
            return
        try:
            payload = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            self._respond(400, {"ok": False, "error": f"bad JSON body: {exc}"})
            return
        self.service._enter_request()
        try:
            status, body = self.service.handle_query(payload)
        finally:
            self.service._exit_request()
        self._respond(status, body)

    def do_GET(self) -> None:  # noqa: N802 - BaseHTTPRequestHandler API
        if self.path == "/status":
            self._respond(200, self.service.status())
        elif self.path == "/metrics":
            # The parent registry merges the service's own series with
            # the worker snapshots pushed over the ``metrics`` capability
            # — one scrape covers the whole fleet this service drives.
            self._respond_text(200, obs_metrics.REGISTRY.render())
        elif self.path == "/healthz":
            self._respond(
                503 if self.service.draining else 200,
                {"ok": not self.service.draining,
                 "draining": self.service.draining},
            )
        else:
            self._respond(404, {"ok": False, "error": f"no such path {self.path}"})

    def _respond_text(self, status: int, text: str) -> None:
        encoded = text.encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", METRICS_CONTENT_TYPE)
            self.send_header("Content-Length", str(len(encoded)))
            self.end_headers()
            self.wfile.write(encoded)
        except (BrokenPipeError, ConnectionResetError):
            log.debug("client went away mid-response")

    def _respond(self, status: int, body: Dict[str, Any]) -> None:
        from repro.distributed.chaos import failpoint

        encoded = json.dumps(body).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(encoded)))
            retry_after = body.get("retry_after")
            if status in (429, 503) and retry_after:
                self.send_header("Retry-After", str(max(1, int(retry_after + 0.5))))
            self.end_headers()
            # A slow/stuck client connection must not wedge the service:
            # the chaos harness arms this site (action=sleepN) to prove
            # other requests keep flowing while one response stalls.
            failpoint("service.slow_consumer")
            self.wfile.write(encoded)
        except (BrokenPipeError, ConnectionResetError):
            log.debug("client went away mid-response")

    def log_message(self, format: str, *args: Any) -> None:  # noqa: A002
        log.debug("%s %s", self.address_string(), format % args)


def serve_service(service: QueryService, announce: bool = True) -> int:
    """Run *service* until SIGTERM/SIGINT triggers a graceful drain.

    The ``ocqa serve`` driver: installs signal handlers routing into the
    drain path, blocks, and returns 0 after a clean drain — the process
    exit the supervisor/rolling-restart machinery relies on.
    """
    import signal

    service.start()

    def _drain_signal(_signum: int, _frame: Any) -> None:
        service.request_drain()

    previous = {}
    try:
        # Handlers go in BEFORE the announce line: anything supervising
        # the service treats the announce as "ready" and may SIGTERM at
        # any moment after it.
        for signum in (signal.SIGTERM, signal.SIGINT):
            try:
                previous[signum] = signal.signal(signum, _drain_signal)
            except ValueError:  # pragma: no cover - non-main thread
                break
        if announce:
            host, port = service.address
            print(
                f"repro query service {service.name} listening on "
                f"{host}:{port}",
                flush=True,
            )
        while not service.draining:
            time.sleep(0.2)
        duration = service.drain()
        if announce:
            print(
                f"repro query service {service.name} drained in "
                f"{duration:.2f}s",
                flush=True,
            )
    except KeyboardInterrupt:  # pragma: no cover - belt and braces
        service.drain()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        service.close()
    return 0


__all__ = [
    "DEFAULT_QUERY_DEADLINE",
    "QueryService",
    "ServiceUnavailable",
    "serve_service",
]
