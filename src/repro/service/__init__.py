"""Long-lived CQA service: admission control, deadlines, supervision.

Layout (import layering matters here — lower layers import these
modules, so the package root must stay cheap):

- :mod:`repro.service.deadline` — stdlib-only :class:`Deadline` /
  :class:`DeadlineExpired`; imported by ``campaign`` and the whole
  ``distributed`` stack.
- :mod:`repro.service.admission` — :class:`AdmissionController`,
  tenant quotas, typed :class:`Overloaded` / :class:`BudgetExhausted`
  shed errors.
- :mod:`repro.service.cache` — :class:`ResultCache`, the bounded
  (eps, delta)-aware result cache with delta-driven invalidation
  (loaded lazily: it imports the digest/relations machinery).
- :mod:`repro.service.server` — the ``ocqa serve`` HTTP/JSON front
  (loaded lazily: it imports the SQL sampler stack).
- :mod:`repro.service.supervisor` — worker-fleet lifecycle: health
  probes, graceful drain, rolling restart (loaded lazily: it spawns
  subprocesses).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.service.admission import (
    AdmissionController,
    AdmissionTicket,
    BudgetExhausted,
    Overloaded,
    RetriableServiceError,
    TenantQuota,
)
from repro.service.deadline import Deadline, DeadlineExpired

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.service.cache import CacheHit, CacheKey, ResultCache
    from repro.service.server import QueryService
    from repro.service.supervisor import ManagedWorker, Supervisor

__all__ = [
    "AdmissionController",
    "AdmissionTicket",
    "BudgetExhausted",
    "CacheHit",
    "CacheKey",
    "Deadline",
    "DeadlineExpired",
    "ManagedWorker",
    "Overloaded",
    "QueryService",
    "ResultCache",
    "RetriableServiceError",
    "Supervisor",
    "TenantQuota",
]

_LAZY = {
    "QueryService": "repro.service.server",
    "Supervisor": "repro.service.supervisor",
    "ManagedWorker": "repro.service.supervisor",
    "ResultCache": "repro.service.cache",
    "CacheKey": "repro.service.cache",
    "CacheHit": "repro.service.cache",
}


def __getattr__(name: str):
    module_name = _LAZY.get(name)
    if module_name is None:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
    import importlib

    return getattr(importlib.import_module(module_name), name)
