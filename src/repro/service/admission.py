"""Admission control for the long-lived query service.

The :class:`AdmissionController` is the single gate every query passes
before it touches the coordinator/worker fleet.  It enforces three
independent bounds, shedding load with *typed, retriable* errors
instead of letting saturation show up as stalls or OOM kills:

- a **bounded run queue**: at most ``max_concurrent`` queries execute
  at once and at most ``max_queue_depth`` wait for a slot; beyond that
  the query is shed immediately with :class:`Overloaded` ("queue_full")
  rather than queued into unbounded memory,
- a **per-tenant concurrency quota** (:class:`TenantQuota`
  ``max_concurrent``): one tenant cannot monopolize the run queue,
- a **per-tenant draw budget** — a token bucket refilled at
  ``draws_per_second`` up to ``burst`` draws; a query whose estimated
  draw count exceeds the tenant's remaining tokens is shed with
  :class:`BudgetExhausted` carrying the exact ``retry_after`` at which
  the bucket will cover it.

Both shed errors carry ``retry_after`` (seconds) so well-behaved
clients back off instead of hammering; HTTP callers receive it as a
``Retry-After`` header (see :mod:`repro.service.server`).

Every shed, the queue-depth high-water mark, and drain durations are
recorded in the :mod:`repro.diagnostics` overload registry so
``ocqa status`` can show what the gate did and why.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Dict, Optional

from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace

_ADMISSION_DECISIONS = obs_metrics.REGISTRY.counter(
    "ocqa_admission_decisions_total",
    "Admission gate outcomes, by tenant and decision "
    "(admitted or the shed reason).",
    ("tenant", "decision"),
)
_RUNNING_QUERIES = obs_metrics.REGISTRY.gauge(
    "ocqa_running_queries", "Queries currently holding a run slot."
)

__all__ = [
    "AdmissionController",
    "BudgetExhausted",
    "Overloaded",
    "RetriableServiceError",
    "TenantQuota",
]


class RetriableServiceError(RuntimeError):
    """Base class for typed, retriable service rejections.

    ``retry_after`` is the suggested back-off in seconds; ``reason`` is
    a stable machine-readable tag (also the diagnostics shed key).
    """

    def __init__(
        self, message: str, *, reason: str, retry_after: float = 1.0
    ) -> None:
        super().__init__(message)
        self.reason = reason
        self.retry_after = float(retry_after)
        self.retriable = True


class Overloaded(RetriableServiceError):
    """The service shed this query to protect itself under load."""


class BudgetExhausted(RetriableServiceError):
    """The tenant's draw budget cannot cover this query right now."""


@dataclass(frozen=True)
class TenantQuota:
    """Per-tenant admission limits.

    ``max_concurrent`` bounds queries a tenant may run at once.
    ``draws_per_second`` refills the tenant's draw token bucket, which
    holds at most ``burst`` tokens; ``None`` disables the draw budget
    for the tenant (concurrency is still enforced).
    """

    max_concurrent: int = 4
    draws_per_second: Optional[float] = None
    burst: Optional[float] = None

    def __post_init__(self) -> None:
        if self.max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        if self.draws_per_second is not None and self.draws_per_second <= 0:
            raise ValueError("draws_per_second must be positive")
        if self.burst is not None and self.burst <= 0:
            raise ValueError("burst must be positive")

    @property
    def bucket_size(self) -> Optional[float]:
        if self.draws_per_second is None:
            return None
        return self.burst if self.burst is not None else self.draws_per_second


class _TokenBucket:
    """A draw-budget token bucket (monotonic-clock refill)."""

    __slots__ = ("rate", "size", "tokens", "updated")

    def __init__(self, rate: float, size: float) -> None:
        self.rate = rate
        self.size = size
        self.tokens = size
        self.updated = time.monotonic()

    def _refill(self) -> None:
        now = time.monotonic()
        self.tokens = min(self.size, self.tokens + (now - self.updated) * self.rate)
        self.updated = now

    def take(self, amount: float) -> Optional[float]:
        """Consume *amount* tokens; on deficit return the wait in seconds."""
        self._refill()
        if amount <= self.tokens:
            self.tokens -= amount
            return None
        return (amount - self.tokens) / self.rate


class AdmissionTicket:
    """Handle for one admitted query; release exactly once."""

    __slots__ = ("_controller", "_tenant", "_released")

    def __init__(self, controller: "AdmissionController", tenant: str) -> None:
        self._controller = controller
        self._tenant = tenant
        self._released = False

    @property
    def tenant(self) -> str:
        return self._tenant

    def release(self) -> None:
        if not self._released:
            self._released = True
            self._controller._release(self._tenant)

    def __enter__(self) -> "AdmissionTicket":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.release()


class AdmissionController:
    """The bounded front door to the coordinator/worker fleet.

    Thread-safe; one instance guards one service process.  ``admit``
    either returns an :class:`AdmissionTicket` (use it as a context
    manager) or raises a typed shed error — it never blocks longer
    than ``max_wait`` seconds.
    """

    def __init__(
        self,
        *,
        max_concurrent: int = 8,
        max_queue_depth: int = 16,
        max_wait: float = 5.0,
        default_quota: Optional[TenantQuota] = None,
        quotas: Optional[Dict[str, TenantQuota]] = None,
    ) -> None:
        if max_concurrent <= 0:
            raise ValueError("max_concurrent must be positive")
        if max_queue_depth < 0:
            raise ValueError("max_queue_depth must be >= 0")
        if max_wait < 0:
            raise ValueError("max_wait must be >= 0")
        self.max_concurrent = max_concurrent
        self.max_queue_depth = max_queue_depth
        self.max_wait = max_wait
        self.default_quota = default_quota or TenantQuota()
        self.quotas = dict(quotas or {})
        self._lock = threading.Lock()
        self._slots = threading.Condition(self._lock)
        self._running = 0
        self._queued = 0
        self._tenant_running: Dict[str, int] = {}
        self._buckets: Dict[str, _TokenBucket] = {}

    # -- internals ---------------------------------------------------

    def quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _bucket_for(self, tenant: str, quota: TenantQuota) -> Optional[_TokenBucket]:
        if quota.draws_per_second is None:
            return None
        bucket = self._buckets.get(tenant)
        if bucket is None:
            bucket = _TokenBucket(quota.draws_per_second, float(quota.bucket_size or 0))
            self._buckets[tenant] = bucket
        return bucket

    def _shed(
        self, tenant: str, exc: RetriableServiceError
    ) -> RetriableServiceError:
        from repro.diagnostics import record_shed

        record_shed(exc.reason)
        _ADMISSION_DECISIONS.inc(tenant=tenant, decision=exc.reason)
        obs_trace.span(
            "admission",
            tenant=tenant,
            decision=exc.reason,
            retry_after=round(exc.retry_after, 3),
        )
        return exc

    # -- public API --------------------------------------------------

    def admit(self, tenant: str = "default", *, draws: int = 0) -> AdmissionTicket:
        """Admit one query for *tenant* expecting roughly *draws* draws.

        Raises :class:`Overloaded` (queue full / tenant concurrency /
        wait timeout) or :class:`BudgetExhausted` (draw budget) instead
        of queuing without bound.  The returned ticket must be released
        (use ``with``) when the query finishes, successfully or not.
        """
        from repro.diagnostics import record_queue_depth

        quota = self.quota_for(tenant)
        deadline = time.monotonic() + self.max_wait
        with self._slots:
            if self._tenant_running.get(tenant, 0) >= quota.max_concurrent:
                raise self._shed(
                    tenant,
                    Overloaded(
                        f"tenant {tenant!r} already runs "
                        f"{quota.max_concurrent} concurrent queries",
                        reason="tenant_concurrency",
                        retry_after=1.0,
                    ),
                )
            bucket = self._bucket_for(tenant, quota)
            if bucket is not None and draws > 0:
                wait = bucket.take(float(draws))
                if wait is not None:
                    raise self._shed(
                        tenant,
                        BudgetExhausted(
                            f"tenant {tenant!r} draw budget covers this "
                            f"query in {wait:.2f}s",
                            reason="draw_budget",
                            retry_after=wait,
                        ),
                    )
            if self._running >= self.max_concurrent:
                if self._queued >= self.max_queue_depth:
                    raise self._shed(
                        tenant,
                        Overloaded(
                            f"run queue full ({self._queued} queued, "
                            f"{self._running} running)",
                            reason="queue_full",
                            retry_after=self.max_wait,
                        ),
                    )
                self._queued += 1
                record_queue_depth(self._queued)
                try:
                    from repro.distributed.chaos import failpoint

                    failpoint("service.queue_flood")
                    while self._running >= self.max_concurrent:
                        budget = deadline - time.monotonic()
                        if budget <= 0:
                            raise self._shed(
                                tenant,
                                Overloaded(
                                    f"no run slot freed within "
                                    f"{self.max_wait:.1f}s",
                                    reason="queue_timeout",
                                    retry_after=self.max_wait,
                                ),
                            )
                        self._slots.wait(budget)
                finally:
                    self._queued -= 1
                    record_queue_depth(self._queued)
            self._running += 1
            self._tenant_running[tenant] = self._tenant_running.get(tenant, 0) + 1
            _RUNNING_QUERIES.set(self._running)
        _ADMISSION_DECISIONS.inc(tenant=tenant, decision="admitted")
        obs_trace.span("admission", tenant=tenant, decision="admitted")
        return AdmissionTicket(self, tenant)

    def _release(self, tenant: str) -> None:
        with self._slots:
            self._running -= 1
            count = self._tenant_running.get(tenant, 1) - 1
            if count <= 0:
                self._tenant_running.pop(tenant, None)
            else:
                self._tenant_running[tenant] = count
            _RUNNING_QUERIES.set(self._running)
            self._slots.notify_all()

    def snapshot(self) -> Dict[str, object]:
        """Current occupancy for status reporting."""
        with self._lock:
            return {
                "running": self._running,
                "queued": self._queued,
                "max_concurrent": self.max_concurrent,
                "max_queue_depth": self.max_queue_depth,
                "tenants": dict(self._tenant_running),
            }
