"""Worker lifecycle supervision: spawn, probe, drain, rolling restart.

The :class:`Supervisor` owns a fleet of ``ocqa worker`` subprocesses so
a long-lived service deployment does not: it spawns them, probes their
health over protocol ``ping`` frames, respawns the ones that die, and —
the part that makes deploys boring — performs **rolling restarts** by
draining one worker at a time (SIGTERM, which the worker routes into
its graceful-drain path and answers by exiting 0) while the rest of the
fleet keeps serving.

Campaign determinism across all of this is free by construction: draws
are pure functions of ``(campaign seed, group key, draw index)``, so a
shard handed back by a draining worker is recomputed byte-identically
wherever the coordinator re-leases it, and a restarted worker rejoins
through the coordinator's reconnect ladder with nothing to resync.

The supervisor is deliberately dependency-free (stdlib ``subprocess`` +
the in-repo socket transport) so ``ocqa serve --supervise N`` works on
a bare machine.
"""

from __future__ import annotations

import logging
import os
import re
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, Tuple

log = logging.getLogger(__name__)

_ANNOUNCE = re.compile(r"listening on ([\w.\-]+):(\d+)")

#: Consecutive failed ping probes before a worker is declared unhealthy
#: and restarted (one flaky probe must not bounce a busy worker).
DEFAULT_PROBE_STRIKES = 3


def _worker_environment() -> Dict[str, str]:
    """The child environment, with this checkout importable.

    Failpoint/chaos variables inherit naturally — the chaos soak relies
    on ``REPRO_FAILPOINTS`` reaching supervised workers.
    """
    env = dict(os.environ)
    import repro

    src_root = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    existing = env.get("PYTHONPATH", "")
    if src_root not in existing.split(os.pathsep):
        env["PYTHONPATH"] = (
            src_root + (os.pathsep + existing if existing else "")
        )
    return env


class ManagedWorker:
    """One supervised ``ocqa worker`` subprocess."""

    def __init__(
        self,
        index: int,
        *,
        host: str = "127.0.0.1",
        context_limit: Optional[int] = None,
        max_inflight: int = 0,
        drain_timeout: float = 30.0,
        startup_timeout: float = 20.0,
    ) -> None:
        self.index = index
        self.host = host
        self.context_limit = context_limit
        self.max_inflight = max_inflight
        self.drain_timeout = drain_timeout
        self.startup_timeout = startup_timeout
        self.generation = 0
        self.restarts = 0
        self._proc: Optional[subprocess.Popen] = None
        self._port: Optional[int] = None
        self._announce = threading.Event()
        #: Recent child output (announce lines, drain notices, crash
        #: tracebacks) for post-mortems.
        self.output: Deque[str] = deque(maxlen=64)

    # ------------------------------------------------------------------
    # Process lifecycle
    # ------------------------------------------------------------------
    def spawn(self) -> "ManagedWorker":
        """Start (or replace) the subprocess and wait for its announce."""
        if self.alive:
            raise RuntimeError(f"worker {self.index} already running")
        self.generation += 1
        command = [
            sys.executable,
            "-m",
            "repro.cli",
            "worker",
            "--listen",
            f"{self.host}:0",
            "--name",
            f"supervised-{self.index}g{self.generation}",
        ]
        if self.context_limit is not None:
            command += ["--context-limit", str(self.context_limit)]
        if self.max_inflight:
            command += ["--max-inflight", str(self.max_inflight)]
        self._announce.clear()
        self._port = None
        self._proc = subprocess.Popen(
            command,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_worker_environment(),
        )
        threading.Thread(
            target=self._pump_output, args=(self._proc,), daemon=True
        ).start()
        if not self._announce.wait(self.startup_timeout):
            self.kill()
            raise RuntimeError(
                f"worker {self.index} did not announce within "
                f"{self.startup_timeout}s: {list(self.output)}"
            )
        return self

    def _pump_output(self, proc: subprocess.Popen) -> None:
        assert proc.stdout is not None
        for line in proc.stdout:
            line = line.rstrip("\n")
            self.output.append(line)
            match = _ANNOUNCE.search(line)
            if match and not self._announce.is_set():
                self._port = int(match.group(2))
                self._announce.set()
        proc.stdout.close()

    @property
    def alive(self) -> bool:
        return self._proc is not None and self._proc.poll() is None

    @property
    def pid(self) -> Optional[int]:
        return self._proc.pid if self._proc is not None else None

    @property
    def exitcode(self) -> Optional[int]:
        return self._proc.poll() if self._proc is not None else None

    @property
    def address(self) -> str:
        if self._port is None:
            raise RuntimeError(f"worker {self.index} has not announced yet")
        return f"{self.host}:{self._port}"

    # ------------------------------------------------------------------
    # Health and shutdown
    # ------------------------------------------------------------------
    def probe(self, timeout: float = 5.0) -> bool:
        """One ping-frame health probe (a fresh, short-lived connection)."""
        if not self.alive or self._port is None:
            return False
        from repro.distributed.transport import SocketTransport

        transport = SocketTransport(
            self.host, self._port, connect_timeout=timeout
        )
        try:
            return transport.ping()
        finally:
            transport.close()

    def drain(self, timeout: Optional[float] = None) -> Optional[int]:
        """SIGTERM the worker and wait for its graceful exit.

        The worker's signal handler routes into the drain path: it stops
        accepting, finishes or hands back in-flight shards, and exits 0.
        Returns the exit code (``None`` only if the process refused to
        die and had to be killed).
        """
        if self._proc is None:
            return None
        budget = timeout if timeout is not None else self.drain_timeout + 10.0
        if self.alive and not self._announce.is_set():
            # A still-booting worker has not installed its SIGTERM
            # handler yet (the announce line is printed after it has);
            # terminating now would bypass the drain path entirely.
            self._announce.wait(self.startup_timeout)
        if self.alive:
            self._proc.terminate()
        try:
            return self._proc.wait(timeout=budget)
        except subprocess.TimeoutExpired:
            log.warning(
                "supervised worker %d ignored SIGTERM for %.1fs; killing",
                self.index,
                budget,
            )
            self.kill()
            return self._proc.poll()

    def kill(self) -> None:
        if self._proc is not None and self._proc.poll() is None:
            self._proc.kill()
            try:
                self._proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:  # pragma: no cover
                pass


class Supervisor:
    """Spawn, watch, and restart a fleet of sampling workers.

    ``with Supervisor(workers=3) as sup: ...`` yields a fleet whose
    ``sup.addresses`` plug straight into ``worker_addresses=`` of
    :class:`repro.service.server.QueryService` or the samplers.  A
    monitor thread probes each worker every *probe_interval* seconds
    (process liveness + a protocol ping) and respawns the dead or
    unresponsive, up to *max_restarts* per worker.
    """

    def __init__(
        self,
        workers: int = 2,
        *,
        host: str = "127.0.0.1",
        probe_interval: float = 2.0,
        probe_strikes: int = DEFAULT_PROBE_STRIKES,
        max_restarts: int = 5,
        context_limit: Optional[int] = None,
        max_inflight: int = 0,
        drain_timeout: float = 30.0,
        startup_timeout: float = 20.0,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be positive, got {workers}")
        if probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        self.probe_interval = probe_interval
        self.probe_strikes = max(1, probe_strikes)
        self.max_restarts = max_restarts
        self.workers: List[ManagedWorker] = [
            ManagedWorker(
                index,
                host=host,
                context_limit=context_limit,
                max_inflight=max_inflight,
                drain_timeout=drain_timeout,
                startup_timeout=startup_timeout,
            )
            for index in range(workers)
        ]
        self._strikes: Dict[int, int] = {}
        self._stop = threading.Event()
        self._monitor: Optional[threading.Thread] = None
        self._lock = threading.Lock()
        #: Human-readable lifecycle events (spawn, restart, drain) in
        #: observation order, for status output and tests.
        self.events: List[str] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "Supervisor":
        for worker in self.workers:
            worker.spawn()
            self._event(f"worker {worker.index} up at {worker.address}")
        self._monitor = threading.Thread(
            target=self._monitor_loop, daemon=True, name="repro-supervisor"
        )
        self._monitor.start()
        return self

    def close(self, drain: bool = True) -> None:
        """Stop monitoring and take the fleet down (drained by default)."""
        self._stop.set()
        if self._monitor is not None:
            self._monitor.join(timeout=self.probe_interval + 2.0)
            self._monitor = None
        for worker in self.workers:
            if drain and worker.alive:
                code = worker.drain()
                self._event(f"worker {worker.index} drained (exit {code})")
            else:
                worker.kill()

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    @property
    def addresses(self) -> Tuple[str, ...]:
        """Current ``host:port`` fleet addresses (post-restart aware)."""
        return tuple(worker.address for worker in self.workers)

    def _event(self, message: str) -> None:
        with self._lock:
            self.events.append(message)
        log.info("supervisor: %s", message)

    # ------------------------------------------------------------------
    # Monitoring
    # ------------------------------------------------------------------
    def _monitor_loop(self) -> None:
        while not self._stop.wait(self.probe_interval):
            for worker in self.workers:
                if self._stop.is_set():
                    return
                self._check(worker)

    def _check(self, worker: ManagedWorker) -> None:
        if not worker.alive:
            self._event(
                f"worker {worker.index} exited "
                f"(code {worker.exitcode}); restarting"
            )
            self._restart(worker)
            return
        if worker.probe():
            self._strikes[worker.index] = 0
            return
        strikes = self._strikes.get(worker.index, 0) + 1
        self._strikes[worker.index] = strikes
        if strikes >= self.probe_strikes:
            self._event(
                f"worker {worker.index} failed {strikes} probe(s); restarting"
            )
            worker.kill()
            self._restart(worker)

    def _restart(self, worker: ManagedWorker) -> None:
        if worker.restarts >= self.max_restarts:
            self._event(
                f"worker {worker.index} exhausted its {self.max_restarts} "
                "restart(s); leaving it down"
            )
            return
        worker.restarts += 1
        self._strikes[worker.index] = 0
        try:
            worker.spawn()
            self._event(
                f"worker {worker.index} respawned at {worker.address} "
                f"(restart {worker.restarts}/{self.max_restarts})"
            )
        except RuntimeError as exc:
            self._event(f"worker {worker.index} respawn failed: {exc}")

    # ------------------------------------------------------------------
    # Rolling restart
    # ------------------------------------------------------------------
    def rolling_restart(self, settle_timeout: float = 20.0) -> List[int]:
        """Drain and replace one worker at a time; returns exit codes.

        At every moment all but one worker serve traffic.  Each drain is
        a real SIGTERM (the deploy path, not a simulation): the worker
        finishes or hands back its shards and exits 0, then its
        replacement spawns and must answer a ping before the next worker
        is touched.  Coordinators riding through this re-lease the
        drained worker's shards elsewhere and win the replacement back
        via their reconnect ladder — campaigns complete byte-identically.
        """
        codes: List[int] = []
        for worker in self.workers:
            code = worker.drain()
            codes.append(-1 if code is None else code)
            self._event(f"worker {worker.index} drained for restart (exit {code})")
            worker.spawn()
            settle = time.monotonic() + settle_timeout
            while time.monotonic() < settle:
                if worker.probe():
                    break
                time.sleep(0.2)
            else:
                raise RuntimeError(
                    f"worker {worker.index} replacement at {worker.address} "
                    f"did not answer pings within {settle_timeout}s"
                )
            self._event(
                f"worker {worker.index} replacement up at {worker.address}"
            )
        return codes

    def status(self) -> List[Dict[str, Any]]:
        """Per-worker status for ``ocqa status``/tests."""
        return [
            {
                "index": worker.index,
                "address": worker._port and worker.address,
                "pid": worker.pid,
                "alive": worker.alive,
                "generation": worker.generation,
                "restarts": worker.restarts,
            }
            for worker in self.workers
        ]


__all__ = ["ManagedWorker", "Supervisor", "DEFAULT_PROBE_STRIKES"]
