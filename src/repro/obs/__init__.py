"""Fleet-wide telemetry: metrics registry, trace spans, live top view.

- :mod:`repro.obs.metrics` — dependency-free counters/gauges/histograms
  with Prometheus text exposition, remote push merging, and the
  ``REPRO_METRICS=0`` kill switch.
- :mod:`repro.obs.trace` — ``REPRO_TRACE=path`` JSON-lines span log,
  rotated by size.
- :mod:`repro.obs.httpd` — the worker ``--metrics-port`` sidecar.
- :mod:`repro.obs.top` — the ``ocqa top`` terminal view.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS,
    REGISTRY,
    WORKER_REGISTRY,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    current_tenant,
    histogram_quantile,
    metrics_enabled,
    parse_prometheus_text,
    set_tenant,
)
from .trace import span

__all__ = [
    "DEFAULT_LATENCY_BUCKETS",
    "REGISTRY",
    "WORKER_REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "current_tenant",
    "histogram_quantile",
    "metrics_enabled",
    "parse_prometheus_text",
    "set_tenant",
    "span",
]
