"""Dependency-free metrics registry with Prometheus text exposition.

The fleet needs one vocabulary for "how is it going": counters, gauges
and fixed-bucket histograms, optionally labelled, rendered in the
Prometheus text format (``GET /metrics`` on ``ocqa serve``, the worker
``--metrics-port`` sidecar) and shipped worker->parent inside result
and heartbeat frames under the negotiated ``metrics`` capability.

Design points:

- **Two registries.**  :data:`REGISTRY` is the process-wide default
  (service, admission, coordinator, transport, campaign, sampler and
  the diagnostics counters).  :data:`WORKER_REGISTRY` holds the
  ``ocqa_worker_*`` shard-executor metrics and is the only thing a
  worker pushes to its parent.  Keeping them separate means an
  in-process :class:`~repro.distributed.worker.WorkerServer` (the unit
  tests run whole fleets in one interpreter) never double-counts: the
  parent renders its own registry plus the *pushed* snapshots, and the
  worker-side increments live in a registry the parent never renders
  directly.
- **Keep-latest remote snapshots.**  Pushed snapshots are cumulative
  per worker, so the parent keeps the latest snapshot per source name
  (mirroring ``diagnostics._WORKER_CACHE_STATS``) and sums across
  sources at render time — monotone per source, no discard protocol.
- **``REPRO_METRICS=0`` kill switch.**  Ordinary metrics drop updates
  when disabled (the benchmark gate measures exactly this delta);
  metrics created with ``always=True`` — the diagnostics-backed fault /
  shed / overload counters that existing reports and tests depend on —
  record unconditionally.

No third-party dependencies; threading only.
"""

from __future__ import annotations

import math
import os
import re
import threading
from contextvars import ContextVar
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "REGISTRY",
    "WORKER_REGISTRY",
    "DEFAULT_LATENCY_BUCKETS",
    "metrics_enabled",
    "current_tenant",
    "set_tenant",
    "parse_prometheus_text",
    "histogram_quantile",
]

#: Fixed latency buckets (seconds) for query/drain histograms.  Chosen
#: once so dashboards stay comparable across PRs.
DEFAULT_LATENCY_BUCKETS: Tuple[float, ...] = (
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
    30.0,
    60.0,
    120.0,
    300.0,
)

#: Tenant attribution for per-tenant counters: the service sets this
#: around each admitted query; the campaign draw loop reads it so
#: ``ocqa_draws_total{tenant=...}`` increments live mid-campaign.
_TENANT: ContextVar[str] = ContextVar("ocqa_tenant", default="local")


def current_tenant() -> str:
    return _TENANT.get()


def set_tenant(tenant: str):  # type: ignore[no-untyped-def]
    """Bind the current tenant; returns a token for ``reset_tenant``."""
    return _TENANT.set(tenant)


def reset_tenant(token) -> None:  # type: ignore[no-untyped-def]
    _TENANT.reset(token)


def metrics_enabled() -> bool:
    """True unless ``REPRO_METRICS`` disables instrumentation.

    Read per call (not cached): the overhead benchmark toggles the
    environment between interleaved reps inside one process.
    """
    return os.environ.get("REPRO_METRICS", "1").strip().lower() not in (
        "0",
        "false",
        "no",
        "off",
    )


LabelKey = Tuple[str, ...]


class _Metric:
    """Shared machinery: label validation, per-metric lock, reset."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        *,
        always: bool = False,
    ) -> None:
        self.name = name
        self.help = help_text
        self.labelnames: Tuple[str, ...] = tuple(labelnames)
        self.always = always
        self._lock = threading.Lock()
        self._series: Dict[LabelKey, Any] = {}
        if not self.labelnames:
            # Label-less metrics expose a 0 sample from birth so
            # presence checks (CI scrapes, `ocqa top`) never race the
            # first increment.
            self._series[()] = self._zero()

    def _zero(self) -> Any:
        return 0.0

    def _key(self, labels: Mapping[str, str]) -> LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: got labels {sorted(labels)}, "
                f"expected {sorted(self.labelnames)}"
            )
        return tuple(str(labels[name]) for name in self.labelnames)

    def _recording(self) -> bool:
        return self.always or metrics_enabled()

    def series(self) -> Dict[LabelKey, Any]:
        """A point-in-time copy of every label series."""
        with self._lock:
            return {key: self._copy_value(value) for key, value in self._series.items()}

    @staticmethod
    def _copy_value(value: Any) -> Any:
        return value

    def reset(self) -> None:
        with self._lock:
            self._series.clear()
            if not self.labelnames:
                self._series[()] = self._zero()


class Counter(_Metric):
    kind = "counter"

    def inc(self, amount: float = 1, **labels: str) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up ({amount})")
        if not self._recording():
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))


class Gauge(_Metric):
    kind = "gauge"

    def set(self, value: float, **labels: str) -> None:
        if not self._recording():
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = float(value)

    def inc(self, amount: float = 1, **labels: str) -> None:
        if not self._recording():
            return
        key = self._key(labels)
        with self._lock:
            self._series[key] = self._series.get(key, 0.0) + amount

    def set_max(self, value: float, **labels: str) -> None:
        """Ratchet upward: high-water marks."""
        if not self._recording():
            return
        key = self._key(labels)
        with self._lock:
            if value > self._series.get(key, 0.0):
                self._series[key] = float(value)

    def value(self, **labels: str) -> float:
        key = self._key(labels)
        with self._lock:
            return float(self._series.get(key, 0.0))


class Histogram(_Metric):
    """Fixed-bucket histogram; per-series ``(bucket counts, sum, count)``."""

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        always: bool = False,
    ) -> None:
        self.buckets: Tuple[float, ...] = tuple(sorted(float(b) for b in buckets))
        if not self.buckets:
            raise ValueError(f"{name}: histogram needs at least one bucket")
        super().__init__(name, help_text, labelnames, always=always)

    def _zero(self) -> Dict[str, Any]:
        return {"buckets": [0] * len(self.buckets), "sum": 0.0, "count": 0}

    @staticmethod
    def _copy_value(value: Any) -> Any:
        return {
            "buckets": list(value["buckets"]),
            "sum": value["sum"],
            "count": value["count"],
        }

    def observe(self, value: float, **labels: str) -> None:
        if not self._recording():
            return
        key = self._key(labels)
        with self._lock:
            cell = self._series.get(key)
            if cell is None:
                cell = self._series[key] = self._zero()
            for index, bound in enumerate(self.buckets):
                if value <= bound:
                    cell["buckets"][index] += 1
                    break
            cell["sum"] += value
            cell["count"] += 1

    def count_sum(self, **labels: str) -> Tuple[int, float]:
        key = self._key(labels)
        with self._lock:
            cell = self._series.get(key)
            if cell is None:
                return 0, 0.0
            return int(cell["count"]), float(cell["sum"])


MetricType = Union[Counter, Gauge, Histogram]


def _escape_help(text: str) -> str:
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _labels_text(labelnames: Sequence[str], key: LabelKey, extra: str = "") -> str:
    parts = [
        f'{name}="{_escape_label(value)}"' for name, value in zip(labelnames, key)
    ]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


class MetricsRegistry:
    """Ordered collection of metrics plus remote pushed snapshots."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "Dict[str, MetricType]" = {}
        self._order: List[str] = []
        self._remote: Dict[str, Dict[str, Any]] = {}
        self._collectors: List[Callable[[], None]] = []

    # -- definition ---------------------------------------------------

    def _get_or_create(
        self,
        cls,  # type: ignore[no-untyped-def]
        name: str,
        help_text: str,
        labelnames: Sequence[str],
        **kwargs: Any,
    ) -> Any:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != cls.kind or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name} already registered as "
                        f"{existing.kind}{existing.labelnames}"
                    )
                return existing
            metric = cls(name, help_text, labelnames, **kwargs)
            self._metrics[name] = metric
            self._order.append(name)
            return metric

    def counter(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        *,
        always: bool = False,
    ) -> Counter:
        return self._get_or_create(Counter, name, help_text, labelnames, always=always)

    def gauge(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        *,
        always: bool = False,
    ) -> Gauge:
        return self._get_or_create(Gauge, name, help_text, labelnames, always=always)

    def histogram(
        self,
        name: str,
        help_text: str,
        labelnames: Sequence[str] = (),
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS,
        always: bool = False,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, help_text, labelnames, buckets=buckets, always=always
        )

    def get(self, name: str) -> Optional[MetricType]:
        with self._lock:
            return self._metrics.get(name)

    # -- collectors ---------------------------------------------------

    def add_collector(self, fn: Callable[[], None]) -> Callable[[], None]:
        """Register a callback run before each render/snapshot.

        Collectors publish scrape-time gauges (cache infos, transport
        byte totals, uptime) so hot paths carry no duplicate counting.
        """
        with self._lock:
            if fn not in self._collectors:
                self._collectors.append(fn)
        return fn

    def remove_collector(self, fn: Callable[[], None]) -> None:
        with self._lock:
            if fn in self._collectors:
                self._collectors.remove(fn)

    def _run_collectors(self) -> None:
        with self._lock:
            collectors = list(self._collectors)
        for fn in collectors:
            try:
                fn()
            except Exception:  # pragma: no cover - a collector must not kill a scrape
                pass

    # -- remote pushes ------------------------------------------------

    def record_remote(self, source: str, snapshot: Mapping[str, Any]) -> None:
        """Keep the latest cumulative snapshot pushed by *source*."""
        if not isinstance(snapshot, Mapping):
            return
        cleaned: Dict[str, Any] = {}
        for name, family in snapshot.items():
            if not isinstance(family, Mapping):
                continue
            series = family.get("series")
            if not isinstance(series, (list, tuple)):
                continue
            cleaned[str(name)] = {
                "type": str(family.get("type", "counter")),
                "help": str(family.get("help", "")),
                "labels": [str(x) for x in family.get("labels", ())],
                "buckets": list(family.get("buckets", ())),
                "series": [
                    [list(map(str, key)), value]
                    for key, value in series
                    if isinstance(key, (list, tuple))
                ],
            }
        with self._lock:
            self._remote[source] = cleaned

    def discard_remote(self, source: str) -> None:
        with self._lock:
            self._remote.pop(source, None)

    def remote_sources(self) -> List[str]:
        with self._lock:
            return sorted(self._remote)

    # -- export -------------------------------------------------------

    def snapshot(self, prefix: Optional[str] = None) -> Dict[str, Any]:
        """JSON-safe cumulative snapshot of local metrics (no remotes).

        This is the wire format pushed under the ``metrics`` capability
        and consumed by :meth:`record_remote` on the other side.
        """
        self._run_collectors()
        with self._lock:
            metrics = [self._metrics[name] for name in self._order]
        out: Dict[str, Any] = {}
        for metric in metrics:
            if prefix is not None and not metric.name.startswith(prefix):
                continue
            family: Dict[str, Any] = {
                "type": metric.kind,
                "help": metric.help,
                "labels": list(metric.labelnames),
                "series": [
                    [list(key), value] for key, value in sorted(metric.series().items())
                ],
            }
            if isinstance(metric, Histogram):
                family["buckets"] = list(metric.buckets)
            out[metric.name] = family
        return out

    def _merged_families(self) -> List[Dict[str, Any]]:
        """Local families with remote contributions summed in."""
        local = self.snapshot()
        with self._lock:
            remotes = {name: dict(snap) for name, snap in self._remote.items()}
        order: List[str] = list(local)
        merged: Dict[str, Dict[str, Any]] = {
            name: {
                **family,
                "series": {tuple(k): v for k, v in family["series"]},
            }
            for name, family in local.items()
        }
        for snap in remotes.values():
            for name, family in snap.items():
                target = merged.get(name)
                if target is None:
                    target = merged[name] = {
                        "type": family["type"],
                        "help": family["help"],
                        "labels": list(family["labels"]),
                        "buckets": list(family.get("buckets", ())),
                        "series": {},
                    }
                    order.append(name)
                if target["type"] != family["type"] or list(
                    target["labels"]
                ) != list(family["labels"]):
                    continue  # incompatible push; skip rather than corrupt
                series: Dict[LabelKey, Any] = target["series"]
                for key_list, value in family["series"]:
                    key = tuple(key_list)
                    series[key] = _merge_values(
                        target["type"], series.get(key), value
                    )
        return [{"name": name, **merged[name]} for name in order]

    def render(self) -> str:
        """Prometheus text exposition (local + remote-merged)."""
        lines: List[str] = []
        for family in self._merged_families():
            name = family["name"]
            labelnames = list(family["labels"])
            lines.append(f"# HELP {name} {_escape_help(family['help'])}")
            lines.append(f"# TYPE {name} {family['type']}")
            series = sorted(family["series"].items())
            if family["type"] == "histogram":
                bounds = [float(b) for b in family.get("buckets", ())]
                for key, cell in series:
                    if not isinstance(cell, Mapping):
                        continue
                    cumulative = 0
                    counts = list(cell.get("buckets", ()))
                    for bound, count in zip(bounds, counts):
                        cumulative += int(count)
                        le = _format_value(bound)
                        labels = _labels_text(labelnames, key, f'le="{le}"')
                        lines.append(f"{name}_bucket{labels} {cumulative}")
                    labels = _labels_text(labelnames, key, 'le="+Inf"')
                    lines.append(f"{name}_bucket{labels} {int(cell.get('count', 0))}")
                    plain = _labels_text(labelnames, key)
                    lines.append(
                        f"{name}_sum{plain} {_format_value(float(cell.get('sum', 0.0)))}"
                    )
                    lines.append(f"{name}_count{plain} {int(cell.get('count', 0))}")
            else:
                for key, value in series:
                    labels = _labels_text(labelnames, key)
                    lines.append(f"{name}{labels} {_format_value(float(value))}")
        return "\n".join(lines) + "\n"

    def reset(self) -> None:
        """Zero every series and forget remote snapshots (tests)."""
        with self._lock:
            metrics = [self._metrics[name] for name in self._order]
            self._remote.clear()
        for metric in metrics:
            metric.reset()


def _merge_values(kind: str, current: Any, incoming: Any) -> Any:
    if kind == "histogram":
        if not isinstance(incoming, Mapping):
            return current
        if not isinstance(current, Mapping):
            return {
                "buckets": list(incoming.get("buckets", ())),
                "sum": float(incoming.get("sum", 0.0)),
                "count": int(incoming.get("count", 0)),
            }
        ours = list(current.get("buckets", ()))
        theirs = list(incoming.get("buckets", ()))
        if len(theirs) > len(ours):
            ours.extend([0] * (len(theirs) - len(ours)))
        for index, count in enumerate(theirs):
            ours[index] += int(count)
        return {
            "buckets": ours,
            "sum": float(current.get("sum", 0.0)) + float(incoming.get("sum", 0.0)),
            "count": int(current.get("count", 0)) + int(incoming.get("count", 0)),
        }
    try:
        incoming_value = float(incoming)
    except (TypeError, ValueError):
        return current
    if current is None:
        return incoming_value
    return float(current) + incoming_value


#: Process-wide default registry: service, coordinator, transport,
#: campaign, sampler and diagnostics metrics, plus remote worker pushes.
REGISTRY = MetricsRegistry()

#: Shard-executor metrics (``ocqa_worker_*``): what a worker pushes to
#: its parent, and what the ``--metrics-port`` sidecar serves alongside
#: the default registry.  Separate so in-process workers (unit tests,
#: local fleets) never double-count through the push path.
WORKER_REGISTRY = MetricsRegistry()


# -- scrape-side helpers (ocqa top, CI validation, tests) -------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?\s+(?P<value>\S+)(?:\s+\d+)?$"
)
_LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


def _unescape_label(value: str) -> str:
    # Left-to-right scan: chained str.replace would corrupt sequences
    # like ``\\n`` (an escaped backslash followed by a literal ``n``).
    out: List[str] = []
    index = 0
    while index < len(value):
        ch = value[index]
        if ch == "\\" and index + 1 < len(value):
            nxt = value[index + 1]
            if nxt == "n":
                out.append("\n")
                index += 2
                continue
            if nxt in ('"', "\\"):
                out.append(nxt)
                index += 2
                continue
        out.append(ch)
        index += 1
    return "".join(out)


def parse_prometheus_text(
    text: str,
) -> Dict[str, List[Tuple[Dict[str, str], float]]]:
    """Parse exposition text into ``{sample_name: [(labels, value)]}``.

    Strict on sample lines (raises ``ValueError`` on garbage — CI uses
    this to *validate* the format), tolerant of comments and blanks.
    ``_bucket``/``_sum``/``_count`` samples keep their suffixed names.
    """
    samples: Dict[str, List[Tuple[Dict[str, str], float]]] = {}
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"unparseable exposition line: {raw!r}")
        labels: Dict[str, str] = {}
        label_text = match.group("labels")
        if label_text:
            stripped = _LABEL_RE.sub("", label_text).replace(",", "").strip()
            if stripped:
                raise ValueError(f"unparseable labels in line: {raw!r}")
            for name, value in _LABEL_RE.findall(label_text):
                labels[name] = _unescape_label(value)
        value_text = match.group("value")
        if value_text == "+Inf":
            value = math.inf
        elif value_text == "-Inf":
            value = -math.inf
        else:
            value = float(value_text)
        samples.setdefault(match.group("name"), []).append((labels, value))
    return samples


def histogram_quantile(
    buckets: Iterable[Tuple[float, float]], quantile: float
) -> Optional[float]:
    """Interpolated quantile from cumulative ``(le, count)`` pairs.

    Mirrors PromQL's ``histogram_quantile``: linear within the target
    bucket, clamped to the highest finite bound for the +Inf bucket.
    Returns ``None`` on an empty histogram.
    """
    ordered = sorted(buckets, key=lambda pair: pair[0])
    if not ordered:
        return None
    total = ordered[-1][1]
    if total <= 0:
        return None
    rank = quantile * total
    previous_bound = 0.0
    previous_count = 0.0
    for bound, count in ordered:
        if count >= rank:
            if math.isinf(bound):
                return previous_bound
            if count == previous_count:
                return bound
            fraction = (rank - previous_count) / (count - previous_count)
            return previous_bound + (bound - previous_bound) * fraction
        previous_bound = 0.0 if math.isinf(bound) else bound
        previous_count = count
    return previous_bound
