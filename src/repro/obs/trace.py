"""Structured per-campaign trace spans: JSON lines, size-rotated.

Setting ``REPRO_TRACE=/path/to/trace.jsonl`` turns on span logging
fleet-wide (the environment propagates to worker subprocesses).  Every
span is one JSON object per line::

    {"ts": 1754650000.123456, "pid": 4242, "event": "shard_lease",
     "campaign": "c7", "shard": 3, "worker": "w0", ...}

Events emitted by the instrumented layers (see README "Observability"):
``campaign`` / ``campaign_range``, ``shard_lease`` / ``shard_complete``
/ ``shard_release``, ``context_ship``, ``draw_batch``,
``checkpoint_save``, ``admission``, ``deadline_expired``,
``worker_fault``, ``reconnect``, ``inline_fallback``.

The log rotates once it passes ``REPRO_TRACE_MAX_BYTES`` (default
16 MiB): the current file is renamed to ``<path>.1`` (replacing any
previous generation) and a fresh file is started.  Writes append with
a process-local lock; multiple processes sharing one path interleave
whole lines, which is safe for JSON-lines consumers.

When ``REPRO_TRACE`` is unset, :func:`span` is a cached-boolean no-op.
"""

from __future__ import annotations

import json
import os
import threading
import time
from typing import Any, IO, Optional

__all__ = ["span", "enabled", "configure", "reset", "DEFAULT_MAX_BYTES"]

DEFAULT_MAX_BYTES = 16 * 1024 * 1024

_LOCK = threading.RLock()
_CONFIGURED = False
_PATH: Optional[str] = None
_MAX_BYTES = DEFAULT_MAX_BYTES
_FILE: Optional[IO[str]] = None


def _ensure_configured() -> bool:
    global _CONFIGURED, _PATH, _MAX_BYTES
    if _CONFIGURED:
        return _PATH is not None
    with _LOCK:
        if not _CONFIGURED:
            path = os.environ.get("REPRO_TRACE", "").strip()
            _PATH = path or None
            try:
                _MAX_BYTES = max(
                    4096, int(os.environ.get("REPRO_TRACE_MAX_BYTES", DEFAULT_MAX_BYTES))
                )
            except ValueError:
                _MAX_BYTES = DEFAULT_MAX_BYTES
            _CONFIGURED = True
    return _PATH is not None


def configure(path: Optional[str], max_bytes: int = DEFAULT_MAX_BYTES) -> None:
    """Explicitly (re)configure the trace sink — used by tests."""
    global _CONFIGURED, _PATH, _MAX_BYTES, _FILE
    with _LOCK:
        if _FILE is not None:
            try:
                _FILE.close()
            except OSError:
                pass
            _FILE = None
        _PATH = path or None
        _MAX_BYTES = max(4096, int(max_bytes))
        _CONFIGURED = True


def reset() -> None:
    """Forget configuration so the next span re-reads the environment."""
    global _CONFIGURED, _PATH, _FILE
    with _LOCK:
        if _FILE is not None:
            try:
                _FILE.close()
            except OSError:
                pass
            _FILE = None
        _PATH = None
        _CONFIGURED = False


def enabled() -> bool:
    return _ensure_configured()


def _open_file() -> Optional[IO[str]]:
    global _FILE
    if _FILE is None and _PATH is not None:
        try:
            _FILE = open(_PATH, "a", encoding="utf-8")
        except OSError:
            return None
    return _FILE


def _rotate_locked() -> None:
    global _FILE
    if _FILE is None or _PATH is None:
        return
    try:
        _FILE.close()
    except OSError:
        pass
    _FILE = None
    try:
        os.replace(_PATH, _PATH + ".1")
    except OSError:
        pass


def span(event: str, **fields: Any) -> None:
    """Emit one trace span; silently drops on any I/O trouble."""
    if not _ensure_configured():
        return
    record = {"ts": round(time.time(), 6), "pid": os.getpid(), "event": event}
    record.update(fields)
    try:
        line = json.dumps(record, default=str, separators=(",", ":"))
    except (TypeError, ValueError):
        return
    with _LOCK:
        handle = _open_file()
        if handle is None:
            return
        try:
            handle.write(line + "\n")
            handle.flush()
            if handle.tell() > _MAX_BYTES:
                _rotate_locked()
        except (OSError, ValueError):
            reset()
