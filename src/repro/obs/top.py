"""``ocqa top``: a refreshing terminal view over ``/metrics`` + ``/status``.

Polls the service's HTTP endpoints and renders queue depth, per-tenant
draw throughput (rate between refreshes), lease counts and ages, cache
hit rates and p50/p95/p99 query latency.  Works against ``ocqa serve``
(both endpoints) or a worker ``--metrics-port`` sidecar (``/metrics``
only — the status block is skipped).

Everything is injectable (fetcher, output stream, iteration cap) so the
view is unit-testable without sockets.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Callable, Dict, List, Optional, Tuple

from .metrics import histogram_quantile, parse_prometheus_text

__all__ = ["run_top", "format_screen", "http_fetcher"]

Samples = Dict[str, List[Tuple[Dict[str, str], float]]]

#: label -> sample name for the single-value rows of the queue block.
_QUEUE_ROWS = (
    ("queued", "ocqa_queue_depth"),
    ("high-water", "ocqa_queue_depth_high_water"),
    ("running", "ocqa_running_queries"),
)

_SHARD_ROWS = (
    ("leases", "ocqa_shard_leases_total"),
    ("completions", "ocqa_shard_completions_total"),
    ("re-leases", "ocqa_shard_releases_total"),
    ("reconnects", "ocqa_reconnects_total"),
    ("inline", "ocqa_inline_shards_total"),
    ("ctx ships", "ocqa_context_ships_total"),
)


def http_fetcher(
    service: str, metrics: Optional[str] = None, timeout: float = 2.0
) -> Callable[[str], Optional[str]]:
    """Fetch ``status``/``metrics`` over HTTP; ``None`` when unreachable."""
    metrics = metrics or service

    def fetch(what: str) -> Optional[str]:
        base = metrics if what == "metrics" else service
        url = f"http://{base}/{what}"
        try:
            with urllib.request.urlopen(url, timeout=timeout) as response:
                return response.read().decode("utf-8")
        except (urllib.error.URLError, OSError, ValueError):
            return None

    return fetch


def _scalar(samples: Samples, name: str) -> Optional[float]:
    rows = samples.get(name)
    if not rows:
        return None
    return sum(value for _, value in rows)


def _by_label(samples: Samples, name: str, label: str) -> Dict[str, float]:
    out: Dict[str, float] = {}
    for labels, value in samples.get(name, ()):  # summed across other labels
        key = labels.get(label, "")
        out[key] = out.get(key, 0.0) + value
    return out


def _latency_quantiles(samples: Samples) -> Dict[str, Optional[float]]:
    buckets: Dict[float, float] = {}
    for labels, value in samples.get("ocqa_query_latency_seconds_bucket", ()):
        le = labels.get("le", "")
        bound = float("inf") if le == "+Inf" else float(le)
        buckets[bound] = buckets.get(bound, 0.0) + value
    pairs = list(buckets.items())
    return {
        "p50": histogram_quantile(pairs, 0.50),
        "p95": histogram_quantile(pairs, 0.95),
        "p99": histogram_quantile(pairs, 0.99),
    }


def _cache_rates(samples: Samples) -> List[Tuple[str, float, float]]:
    hits = _by_label(samples, "ocqa_cache_hits", "cache")
    misses = _by_label(samples, "ocqa_cache_misses", "cache")
    rows = []
    for cache in sorted(set(hits) | set(misses)):
        hit = hits.get(cache, 0.0)
        total = hit + misses.get(cache, 0.0)
        rate = hit / total if total else 0.0
        rows.append((cache, rate, total))
    return rows


def _result_cache_line(samples: Samples) -> Optional[str]:
    """The result-cache row, from the ``ocqa_cache_*_total`` counters."""
    hits = _scalar(samples, "ocqa_cache_hits_total")
    misses = _scalar(samples, "ocqa_cache_misses_total")
    if hits is None and misses is None:
        return None
    hit = hits or 0.0
    total = hit + (misses or 0.0)
    rate = hit / total if total else 0.0
    bits = [f"hits {hit:.0f}/{total:.0f} ({rate:.0%})"]
    invalidations = _by_label(samples, "ocqa_cache_invalidations_total", "reason")
    if any(invalidations.values()):
        bits.append(
            "invalidated "
            + ",".join(
                f"{k}={v:.0f}" for k, v in sorted(invalidations.items()) if v
            )
        )
    evictions = _scalar(samples, "ocqa_cache_evictions_total")
    if evictions:
        bits.append(f"evicted {evictions:.0f}")
    migrations = _scalar(samples, "ocqa_cache_migrations_total")
    if migrations:
        bits.append(f"migrated {migrations:.0f}")
    return "  result cache: " + "  ".join(bits)


def _fmt_seconds(value: Optional[float]) -> str:
    if value is None:
        return "-"
    if value < 1:
        return f"{value * 1000:.1f}ms"
    return f"{value:.2f}s"


def format_screen(
    status: Optional[Dict[str, Any]],
    samples: Samples,
    previous: Optional[Samples],
    interval: float,
) -> str:
    """Render one refresh of the top view as plain text."""
    lines: List[str] = []
    if status:
        admission = status.get("admission", {})
        lines.append(
            "ocqa top — service {name}  uptime {uptime:.0f}s  "
            "queries {served}  draining={draining}".format(
                name=status.get("name", "?"),
                uptime=float(status.get("uptime_seconds", 0.0)),
                served=status.get("queries_served", 0),
                draining=status.get("draining", False),
            )
        )
        lines.append(
            "  admission: running {running}/{max_c}  queued {queued}/{max_q}".format(
                running=admission.get("running", 0),
                max_c=admission.get("max_concurrent", "?"),
                queued=admission.get("queued", 0),
                max_q=admission.get("max_queue_depth", "?"),
            )
        )
    else:
        lines.append("ocqa top — /status unavailable (metrics-only endpoint)")

    queue_bits = []
    for label, name in _QUEUE_ROWS:
        value = _scalar(samples, name)
        if value is not None:
            queue_bits.append(f"{label} {value:.0f}")
    sheds = _by_label(samples, "ocqa_sheds_total", "reason")
    shed_total = sum(sheds.values())
    queue_bits.append(
        "sheds "
        + (
            ",".join(f"{k}={v:.0f}" for k, v in sorted(sheds.items()) if v)
            or "0"
        )
        if shed_total
        else "sheds 0"
    )
    lines.append("  queue: " + "  ".join(queue_bits))

    quantiles = _latency_quantiles(samples)
    lines.append(
        "  latency: p50 {p50}  p95 {p95}  p99 {p99}".format(
            p50=_fmt_seconds(quantiles["p50"]),
            p95=_fmt_seconds(quantiles["p95"]),
            p99=_fmt_seconds(quantiles["p99"]),
        )
    )

    draws_now = _by_label(samples, "ocqa_draws_total", "tenant")
    draws_before = (
        _by_label(previous, "ocqa_draws_total", "tenant") if previous else {}
    )
    tenant_rows = []
    for tenant in sorted(draws_now):
        total = draws_now[tenant]
        rate = (
            (total - draws_before.get(tenant, 0.0)) / interval
            if previous and interval > 0
            else None
        )
        rate_text = f"{rate:,.0f}/s" if rate is not None and rate >= 0 else "-"
        tenant_rows.append(f"{tenant}: {total:,.0f} draws ({rate_text})")
    lines.append(
        "  tenants: " + ("  ".join(tenant_rows) if tenant_rows else "(no draws yet)")
    )

    shard_bits = []
    for label, name in _SHARD_ROWS:
        value = _scalar(samples, name)
        if value:
            shard_bits.append(f"{label} {value:.0f}")
    active = _scalar(samples, "ocqa_active_leases") or 0
    age = _scalar(samples, "ocqa_lease_age_seconds_max")
    shard_bits.append(f"active {active:.0f}")
    if age:
        shard_bits.append(f"oldest lease {age:.1f}s")
    lines.append("  shards: " + ("  ".join(shard_bits) if shard_bits else "idle"))

    cache_rows = _cache_rates(samples)
    if cache_rows:
        lines.append(
            "  caches: "
            + "  ".join(
                f"{cache} {rate:.0%} of {total:.0f}"
                for cache, rate, total in cache_rows
            )
        )

    result_line = _result_cache_line(samples)
    if result_line:
        lines.append(result_line)

    faults = _by_label(samples, "ocqa_faults_total", "kind")
    if any(faults.values()):
        lines.append(
            "  faults: "
            + "  ".join(f"{k}={v:.0f}" for k, v in sorted(faults.items()) if v)
        )
    return "\n".join(lines) + "\n"


def run_top(
    fetch: Callable[[str], Optional[str]],
    *,
    interval: float = 2.0,
    iterations: Optional[int] = None,
    clear: bool = True,
    out: Any = None,
    sleep: Callable[[float], None] = time.sleep,
) -> int:
    """Poll and render until interrupted (or *iterations* refreshes).

    Returns 0 on success, 1 when the metrics endpoint never answered.
    """
    import sys

    out = out or sys.stdout
    previous: Optional[Samples] = None
    seen_any = False
    count = 0
    try:
        while iterations is None or count < iterations:
            if count:
                sleep(interval)
            count += 1
            metrics_text = fetch("metrics")
            status_text = fetch("status")
            status: Optional[Dict[str, Any]] = None
            if status_text:
                try:
                    status = json.loads(status_text)
                except json.JSONDecodeError:
                    status = None
            if metrics_text is None:
                out.write("ocqa top — metrics endpoint unreachable\n")
                out.flush()
                continue
            try:
                samples = parse_prometheus_text(metrics_text)
            except ValueError as exc:
                out.write(f"ocqa top — bad exposition: {exc}\n")
                out.flush()
                continue
            seen_any = True
            if clear:
                out.write("\x1b[2J\x1b[H")
            out.write(format_screen(status, samples, previous, interval))
            out.flush()
            previous = samples
    except KeyboardInterrupt:
        pass
    return 0 if seen_any else 1
