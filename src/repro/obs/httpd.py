"""Tiny threaded HTTP listener serving ``/metrics`` (+ ``/healthz``).

Used by ``ocqa worker --metrics-port``: the worker's control socket
speaks the framed shard protocol, so Prometheus needs a sidecar HTTP
port.  Renders one or more registries concatenated (the worker serves
:data:`~repro.obs.metrics.WORKER_REGISTRY` first, then the default
registry for sampler/diagnostics counters accumulated in-process).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Sequence, Tuple

from .metrics import REGISTRY, WORKER_REGISTRY, MetricsRegistry

__all__ = ["MetricsServer", "CONTENT_TYPE"]

CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"


class MetricsServer:
    """Daemon-thread HTTP server exposing registry renders."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        registries: Sequence[MetricsRegistry] = (WORKER_REGISTRY, REGISTRY),
    ) -> None:
        self._registries = tuple(registries)
        outer = self

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 - http.server API
                if self.path.split("?", 1)[0] == "/metrics":
                    body = outer.render().encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", CONTENT_TYPE)
                elif self.path.split("?", 1)[0] == "/healthz":
                    body = json.dumps({"ok": True}).encode("utf-8")
                    self.send_response(200)
                    self.send_header("Content-Type", "application/json")
                else:
                    body = b"not found\n"
                    self.send_response(404)
                    self.send_header("Content-Type", "text/plain")
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args: object) -> None:
                pass  # scrapes are not operator-facing events

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._server.daemon_threads = True
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            name="ocqa-metrics-http",
            daemon=True,
        )

    def render(self) -> str:
        return "".join(registry.render() for registry in self._registries)

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    def start(self) -> "MetricsServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5)
