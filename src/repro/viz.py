"""Rendering of repairing Markov chains.

Reproduces the paper's Section 3 figure: the tree of repairing sequences
with edge probabilities.  Two renderers: Graphviz DOT text (no external
dependency — just the text) and a plain-ASCII tree for terminals.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Tuple

from repro.core.chain import RepairingChain
from repro.core.exact import ChainExploration, Edge, explore_chain
from repro.core.state import RepairState


def _short_label(label: str, relation_to_strip: Optional[str]) -> str:
    if relation_to_strip:
        label = label.replace(relation_to_strip, "")
    return label


def chain_to_dot(
    chain: RepairingChain,
    max_states: Optional[int] = 10_000,
    strip_relation: Optional[str] = None,
) -> str:
    """Render the full chain as Graphviz DOT text.

    *strip_relation* removes a relation name from labels, matching the
    paper's figure which writes ``-(a, b)`` instead of ``-Pref(a, b)``.
    """
    exploration = explore_chain(chain, max_states=max_states, collect_edges=True)
    assert exploration.edges is not None
    lines = ["digraph repairing_chain {", '  rankdir="TB";', '  node [shape=box];']
    seen: Dict[str, str] = {}

    def node_id(label: str) -> str:
        if label not in seen:
            seen[label] = f"n{len(seen)}"
            text = _short_label(label, strip_relation) or "ε"
            lines.append(f'  {seen[label]} [label="{text}"];')
        return seen[label]

    node_id("ε")
    for edge in exploration.edges:
        parent = node_id(edge.parent)
        child = node_id(edge.child)
        lines.append(f'  {parent} -> {child} [label="{edge.probability}"];')
    lines.append("}")
    return "\n".join(lines)


def chain_to_ascii(
    chain: RepairingChain,
    max_states: Optional[int] = 10_000,
    strip_relation: Optional[str] = None,
) -> str:
    """Render the chain as an indented ASCII tree with probabilities."""
    exploration = explore_chain(chain, max_states=max_states, collect_edges=True)
    assert exploration.edges is not None
    children: Dict[str, List[Edge]] = {}
    for edge in exploration.edges:
        children.setdefault(edge.parent, []).append(edge)
    lines: List[str] = ["ε"]

    def walk(label: str, prefix: str) -> None:
        edges = children.get(label, [])
        for index, edge in enumerate(edges):
            last = index == len(edges) - 1
            connector = "└─" if last else "├─"
            op_text = _short_label(str(edge.op), strip_relation)
            lines.append(f"{prefix}{connector} [{edge.probability}] {op_text}")
            walk(edge.child, prefix + ("   " if last else "│  "))

    walk("ε", "")
    return "\n".join(lines)


def distribution_table(
    items: List[Tuple[object, Fraction]],
    header: Tuple[str, str] = ("repair", "probability"),
) -> str:
    """A small fixed-width table for repair/answer distributions."""
    rows = [(str(key), f"{value} ({float(value):.4f})") for key, value in items]
    width = max([len(header[0])] + [len(r[0]) for r in rows]) if rows else len(header[0])
    lines = [f"{header[0]:<{width}}  {header[1]}"]
    lines.append("-" * (width + 2 + len(header[1])))
    for left, right in rows:
        lines.append(f"{left:<{width}}  {right}")
    return "\n".join(lines)
