"""Sampling campaigns: warm chains, persistence, adaptive stopping.

A *campaign* is the unit of amortization for the Section 5 sampling
scheme.  PR 1 batched walks over one shared chain; PR 2 kept one chain
per conflict group alive for a whole ``run()``; this module unifies
those mechanisms — plus the Hoeffding budgeting — into one subsystem
shared by :func:`repro.core.sampling.approximate_cp` /
:func:`~repro.core.sampling.approximate_oca` and both SQL samplers
(:class:`repro.sql.sampler.KeyRepairSampler`,
:class:`repro.sql.generic.ConstraintRepairSampler`).

A :class:`SamplingCampaign`

- **owns the warm chains**: one repairing chain per conflict group /
  component, cached across draws *and* across ``run()`` calls;
- **owns per-group RNG streams**: each group draws from its own
  deterministic stream (seeded from the campaign seed and the group
  key), so draw sequences are independent of batch boundaries — the
  property that makes checkpoint/resume reproduce uninterrupted runs
  bit for bit;
- **owns draw-indexed substreams**: draw *i* of group *g* additionally
  has its own derived RNG (:meth:`SamplingCampaign.rng_at`), seeded from
  the campaign seed, the group key, and the draw index.  Because a
  substream draw depends on nothing but ``(seed, group, index)``, any
  draw range can be computed anywhere — a remote worker, a local pool
  process, or the parent — and produce byte-identical results; this is
  the determinism contract behind :mod:`repro.distributed` (and what
  lets a shard be re-leased from a dead worker without skewing a single
  draw).  The campaign's :attr:`~SamplingCampaign.draw_cursor` assigns
  the global draw indices and is checkpointed with the tallies;
- **checkpoints to disk** (pickle, atomic replace): chains, RNG states,
  and partial tallies, guarded by a schema/constraint *fingerprint* so
  stale or mismatched checkpoints are rejected loudly
  (:class:`CheckpointMismatchError`) instead of silently skewing CP
  estimates;
- **shards draws across workers** through :mod:`repro.distributed`: the
  samplers and estimators accept ``workers=N`` (a persistent local
  worker pool — the :class:`repro.distributed.LocalPoolTransport`
  replacement for the old per-batch fork fan-out) and
  ``worker_addresses`` (remote ``ocqa worker`` processes).  Because
  draws are substream-indexed, sharded campaigns are draw-for-draw
  identical to serial ones, whatever the worker count or failures;
  (:func:`repro.core.sampling.sample_many`'s fork fan-out remains for
  the standalone walk API);
- **supports adaptive stopping**: with ``adaptive=True`` the estimation
  loop draws in geometric batches and stops as soon as the
  empirical-Bernstein rule (:mod:`repro.analysis.bernstein`) certifies
  the additive ``(epsilon, delta)`` guarantee — never exceeding the
  fixed Hoeffding count.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import random
from dataclasses import dataclass

try:
    from collections import _count_elements  # type: ignore[attr-defined]
except ImportError:  # pragma: no cover - CPython always has the C helper

    def _count_elements(counts: Dict, iterable: Iterable) -> None:
        get = counts.get
        for element in iterable:
            counts[element] = get(element, 0) + 1

from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.analysis.bernstein import BernsteinStopper
from repro.analysis.hoeffding import sample_size
from repro.core.chain import RepairingChain
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.service.deadline import Deadline, DeadlineExpired

#: Bumped whenever the checkpoint payload layout changes.
CHECKPOINT_VERSION = 2

_DRAWS = obs_metrics.REGISTRY.counter(
    "ocqa_draws_total",
    "Campaign draws tallied, by requesting tenant.",
    ("tenant",),
)
_DRAW_BATCHES = obs_metrics.REGISTRY.counter(
    "ocqa_draw_batches_total", "Draw batches consumed by estimation loops."
)
_CHECKPOINT_SAVES = obs_metrics.REGISTRY.counter(
    "ocqa_checkpoint_saves_total", "Campaign checkpoints durably written."
)


def draw_rng(seed: Any, key: Any, index: int) -> random.Random:
    """The RNG substream of draw *index* for group *key* under *seed*.

    The module-level form of :meth:`SamplingCampaign.rng_at`: workers in
    :mod:`repro.distributed` reproduce a coordinator's draws from just
    ``(seed, key, index)``, without holding the campaign object.
    """
    return random.Random(f"{seed}:{_key_str(key)}#{index}")


class CheckpointMismatchError(RuntimeError):
    """A checkpoint does not belong to this campaign (wrong fingerprint,
    incompatible version, or corrupt payload)."""


class CheckpointCorruptError(CheckpointMismatchError):
    """A checkpoint file failed its digest or could not be decoded (torn
    write, bit rot, truncation).  By the time this is raised the file has
    been quarantined to ``<path>.corrupt`` — :meth:`SamplingCampaign.attach`
    then restarts cleanly instead of crashing on a pickle traceback."""


#: Suffix of the checkpoint's sidecar content digest (SHA-256 hex of the
#: exact bytes of the checkpoint file).
CHECKPOINT_DIGEST_SUFFIX = ".sha256"

#: Suffix a corrupt/torn checkpoint is renamed to (kept for forensics,
#: out of the resume path).
CHECKPOINT_QUARANTINE_SUFFIX = ".corrupt"


def _quarantine_checkpoint(path: str) -> Optional[str]:
    """Move a corrupt checkpoint (and its sidecar) out of the resume
    path; returns the quarantine location (best-effort: ``None`` if the
    rename itself failed)."""
    target = path + CHECKPOINT_QUARANTINE_SUFFIX
    try:
        os.replace(path, target)
    except OSError:
        return None
    for stale in (path + CHECKPOINT_DIGEST_SUFFIX,):
        try:
            os.remove(stale)
        except OSError:
            pass
    return target


def campaign_fingerprint(*parts: Any) -> str:
    """A stable digest identifying a campaign's semantic inputs.

    Samplers feed it the schema fingerprint, the constraint set, the
    policy/generator, and any trust assignment; resuming a checkpoint
    whose fingerprint differs raises :class:`CheckpointMismatchError`.
    """
    digest = hashlib.sha256()
    for part in parts:
        digest.update(repr(part).encode("utf-8"))
        digest.update(b"\x1f")
    return digest.hexdigest()


def generator_signature(generator: Any) -> Tuple:
    """Best-effort semantic identity of a chain generator.

    Covers the class plus the configuration the in-repo generators
    carry (constraint set, trust mapping, preference relation).  A
    generator with an opaque payload (e.g. ``FunctionGenerator``'s
    closure) additionally contributes its object identity, so two
    distinct opaque generators never alias each other's warm chains or
    checkpoints — at the cost of cross-process reuse for that class.
    """
    parts: List[Any] = [type(generator).__qualname__]
    constraints = getattr(generator, "constraints", None)
    if constraints is not None:
        parts.append(tuple(sorted(str(c) for c in constraints)))
    trust = getattr(generator, "trust", None)
    if trust is not None:
        try:
            parts.append(tuple(sorted((str(k), str(v)) for k, v in trust.items())))
        except AttributeError:
            parts.append(("trust", repr(trust)))
    for attr in ("default_trust", "relation"):
        value = getattr(generator, attr, None)
        if value is not None:
            parts.append((attr, str(value)))
    if hasattr(generator, "_fn"):
        parts.append(("identity", id(generator)))
    return tuple(parts)


def _key_str(key: Any) -> str:
    """A deterministic, process-independent string form of a group key.

    Collection parts are length-prefixed before joining, so the encoding
    is injective even when member strings contain the separator — two
    distinct conflict groups can never alias one warm chain / RNG
    stream.
    """
    if isinstance(key, str):
        return key
    if isinstance(key, (tuple, list, set, frozenset)):
        parts = sorted(str(item) for item in key)
        return "|".join(f"{len(part)}#{part}" for part in parts)
    return str(key)


def group_key(facts: Iterable[Any]) -> str:
    """The canonical identity of one conflict group/component.

    The same injective encoding :class:`SamplingCampaign` uses for warm
    chains and RNG substreams (:func:`_key_str` over the fact set), so
    the touched-group keys an :class:`UpdateReport` carries line up
    exactly with the chains the campaign pruned for the same delta.
    """
    return _key_str(frozenset(facts))


@dataclass(frozen=True)
class UpdateReport:
    """What one ``apply_update`` delta touched — the invalidation feed.

    Returned by the samplers' ``apply_update`` so downstream consumers
    (the service result cache, tests) can reason about which cached
    answers the base-table delta could have changed:

    - :attr:`touched_relations` — relations of the delta facts
      themselves (their clean rows changed);
    - :attr:`touched_groups` / :attr:`touched_group_relations` — the
      conflict groups whose fact sets changed (by :func:`group_key`
      symmetric difference, old vs new), and every relation appearing
      in those groups: a delta in one relation can merge or split a
      component that spans others, shifting the repair distribution of
      facts the delta never named.
    - :attr:`old_digest` / :attr:`new_digest` — the sampler's
      incremental instance digests before/after the delta, ``None``
      when the sampler never materialized one (consumers must then fall
      back to a conservative full flush).

    An answer whose relations avoid ``touched_relations |
    touched_group_relations`` is provably unaffected for conjunctive
    queries: its clean rows, its conflict groups, and the per-group RNG
    substreams (keyed by fact set) are all byte-identical.
    """

    added: Tuple[Any, ...]
    removed: Tuple[Any, ...]
    touched_relations: FrozenSet[str]
    touched_groups: Tuple[str, ...]
    touched_group_relations: FrozenSet[str]
    old_digest: Optional[str] = None
    new_digest: Optional[str] = None

    @property
    def unsafe_relations(self) -> FrozenSet[str]:
        """Relations a cached answer may not mention and survive."""
        return self.touched_relations | self.touched_group_relations

    @classmethod
    def from_groups(
        cls,
        added: Iterable[Any],
        removed: Iterable[Any],
        old_groups: Iterable[Iterable[Any]],
        new_groups: Iterable[Iterable[Any]],
        old_digest: Optional[str] = None,
        new_digest: Optional[str] = None,
    ) -> "UpdateReport":
        """Diff two group snapshots into the touched-group report."""
        added = tuple(added)
        removed = tuple(removed)
        old_by_key = {group_key(g): frozenset(g) for g in old_groups}
        new_by_key = {group_key(g): frozenset(g) for g in new_groups}
        touched = sorted(set(old_by_key) ^ set(new_by_key))
        group_relations = frozenset(
            fact.relation
            for key in touched
            for fact in old_by_key.get(key, new_by_key.get(key, frozenset()))
        )
        return cls(
            added=added,
            removed=removed,
            touched_relations=frozenset(
                fact.relation for fact in added + removed
            ),
            touched_groups=tuple(touched),
            touched_group_relations=group_relations,
            old_digest=old_digest,
            new_digest=new_digest,
        )


#: ``draw(batch)`` returns one outcome per draw: an iterable of observed
#: answer tuples, or ``None`` for a discarded draw (failing walk under
#: ``allow_failing``).
DrawFn = Callable[[int], Sequence[Optional[Iterable[Tuple]]]]


@dataclass
class CampaignResult:
    """The cumulative outcome of a campaign's estimation loop."""

    frequencies: Dict[Tuple, float]
    counts: Dict[Tuple, int]
    draws: int
    valid: int
    discarded: int
    target: int
    epsilon: Optional[float] = None
    delta: Optional[float] = None
    adaptive: bool = False
    stopped_early: bool = False
    #: False when the loop paused early (``max_draws``) before reaching
    #: the target or an adaptive stop — resume by calling again.
    complete: bool = True
    #: The estimation loop's wall-clock deadline expired before the
    #: target was reached: the result is *best-effort*, certifying
    #: :attr:`achieved_epsilon` (not the requested ``epsilon``) at the
    #: same ``delta``.
    deadline_expired: bool = False
    #: The additive accuracy actually certified by the draws taken (the
    #: Hoeffding inversion over ``valid`` draws; see
    #: :func:`repro.analysis.bernstein.widened_epsilon`).  Only set on a
    #: deadline-expired result.
    achieved_epsilon: Optional[float] = None


class SamplingCampaign:
    """Persistent state for one sampling campaign (see module docs)."""

    def __init__(
        self,
        fingerprint: str = "",
        seed: Optional[int] = None,
        rng: Optional[random.Random] = None,
        processes: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
        adaptive: bool = False,
    ) -> None:
        if seed is None:
            seed = (rng or random.Random()).getrandbits(64)
        self.fingerprint = fingerprint
        self.seed = seed
        self.processes = processes
        self.checkpoint_path = checkpoint_path
        self.adaptive = adaptive
        self._chains: Dict[str, RepairingChain] = {}
        self._rngs: Dict[str, random.Random] = {}
        #: Next global draw index to hand out (see :meth:`claim_draws`).
        #: Like the RNG streams, the cursor only ever advances — a fresh
        #: estimation on a warm campaign continues the substreams rather
        #: than replaying them.
        self.draw_cursor = 0
        self.counts: Dict[Tuple, int] = {}
        self.draws_done = 0
        self.valid_draws = 0
        self.discarded = 0
        #: Identity of the estimand the current tallies belong to (e.g. a
        #: digest of the compiled query).  Guards against resuming an
        #: in-progress estimation with a *different* query: merged
        #: tallies would estimate neither.
        self._estimation_key: Optional[str] = None
        #: Whether the last estimation finished (reached its target or an
        #: adaptive stop).  A finished campaign's next :meth:`estimate`
        #: starts fresh tallies — while keeping the warm chains and the
        #: advanced RNG streams, which is what "sharing warm chains
        #: across campaigns" means.  An unfinished one (interrupted via
        #: ``max_draws`` or restored mid-run from a checkpoint) resumes.
        self.estimation_complete = True

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    def bind_fingerprint(self, fingerprint: str) -> None:
        """Claim this campaign for a sampler's semantic inputs.

        A fresh campaign adopts the fingerprint; a campaign restored from
        a checkpoint (or previously bound) must match it exactly.
        """
        if not self.fingerprint:
            self.fingerprint = fingerprint
            return
        if fingerprint != self.fingerprint:
            raise CheckpointMismatchError(
                "campaign fingerprint mismatch: the campaign (or its "
                "checkpoint) was built for a different schema/constraint/"
                "policy configuration; its warm chains and tallies would "
                "silently skew the CP estimates"
            )

    # ------------------------------------------------------------------
    # Warm chains + per-group RNG streams
    # ------------------------------------------------------------------
    def rng_for(self, key: Any) -> random.Random:
        """The deterministic *sequential* RNG stream owned by group *key*.

        Kept for external callers with genuinely sequential needs; the
        samplers and estimators draw from :meth:`rng_at` substreams
        instead — drawing campaign randomness from this stream would
        reintroduce order-dependence and break the serial == distributed
        byte-identity contract.
        """
        ks = _key_str(key)
        rng = self._rngs.get(ks)
        if rng is None:
            rng = random.Random(f"{self.seed}:{ks}")
            self._rngs[ks] = rng
        return rng

    def rng_at(self, key: Any, index: int) -> random.Random:
        """The independent RNG substream of draw *index* for group *key*.

        Unlike :meth:`rng_for`'s sequential streams, a substream is a
        pure function of ``(seed, key, index)``: computing draw 40 does
        not require having computed draws 0–39 first.  The samplers draw
        every repair from substreams, which is what makes a draw range
        shippable to any worker (:mod:`repro.distributed`) — or
        re-shippable after a worker death — with byte-identical results.
        """
        return draw_rng(self.seed, key, index)

    def claim_draws(self, count: int) -> int:
        """Reserve *count* consecutive global draw indices.

        Returns the first reserved index and advances
        :attr:`draw_cursor`.  The cursor is checkpointed, so a resumed
        campaign continues exactly where the interrupted one stopped.
        """
        start = self.draw_cursor
        self.draw_cursor += count
        return start

    def chain(
        self, key: Any, factory: Callable[[], RepairingChain]
    ) -> RepairingChain:
        """The warm chain for group *key*, built on first use."""
        ks = _key_str(key)
        chain = self._chains.get(ks)
        if chain is None:
            chain = factory()
            self._chains[ks] = chain
        return chain

    def prune_chains(self, live_keys: Iterable[Any]) -> None:
        """Drop chains whose groups no longer exist (RNG streams are kept
        so a regenerated group resumes its stream deterministically)."""
        keep = {_key_str(key) for key in live_keys}
        for stale in [ks for ks in self._chains if ks not in keep]:
            del self._chains[stale]

    # ------------------------------------------------------------------
    # The estimation loop
    # ------------------------------------------------------------------
    def estimate(
        self,
        draw: DrawFn,
        runs: Optional[int] = None,
        epsilon: float = 0.1,
        delta: float = 0.1,
        adaptive: Optional[bool] = None,
        max_draws: Optional[int] = None,
        estimation_key: Optional[str] = None,
        stop_target: Optional[Tuple] = None,
        deadline: Optional[Deadline] = None,
    ) -> CampaignResult:
        """Accumulate draws until the target (or an adaptive stop).

        Continues from the campaign's current tallies, so calling again
        after an interruption (or after :meth:`resume`) finishes the
        remaining draws.  *max_draws* caps this call's consumption (the
        result then has ``complete=False``); with *adaptive*, draws
        arrive in geometric batches and stop early when the
        empirical-Bernstein rule allows.

        *estimation_key* names the estimand (e.g. a digest of the
        compiled query): resuming *unfinished* tallies under a different
        key raises :class:`CheckpointMismatchError` instead of silently
        merging two queries' counts; call :meth:`reset_tallies` first to
        abandon the in-progress estimation deliberately.

        *stop_target* restricts the adaptive rule to one answer tuple's
        stream (per-tuple early termination for targeted ``CP(t)``
        queries): the campaign stops as soon as *that* tuple's
        empirical-Bernstein interval is within epsilon, instead of
        waiting for the max over every observed tuple.  The early stop
        then certifies only the target's estimate.

        A *deadline* makes the loop best-effort: it stops drawing the
        moment the budget expires (including a
        :class:`~repro.service.deadline.DeadlineExpired` escaping the
        draw function mid-batch — the lost batch's claimed indices are
        harmless, substreams being index-pure) and returns the tallies
        accumulated so far with ``deadline_expired=True`` and the
        *achieved* accuracy under ``achieved_epsilon`` — the widened
        ``(eps, delta)`` the draws actually taken certify.  The
        estimation stays resumable: call again with a fresh budget to
        finish it.
        """
        adaptive = self.adaptive if adaptive is None else adaptive
        target = runs if runs is not None else sample_size(epsilon, delta)
        if self.estimation_complete and self.draws_done:
            self.reset_tallies()
        if self.draws_done and estimation_key != self._estimation_key:
            # A keyless in-progress estimation vs. a keyed caller (or
            # vice versa) is also a mismatch — None is an identity here,
            # not a wildcard.
            raise CheckpointMismatchError(
                "the campaign holds unfinished tallies for a different "
                "estimand (query); resuming would merge incompatible "
                "counts — reset_tallies() first to discard them"
            )
        self._estimation_key = estimation_key
        # In progress from here: per-batch checkpoints written inside the
        # loop must record an *unfinished* estimation, so a crash-resume
        # continues from the checkpointed draws instead of resetting.
        self.estimation_complete = False
        stopper = (
            BernsteinStopper(epsilon, delta, limit=target) if adaptive else None
        )
        consumed = 0
        stopped_early = False
        deadline_expired = False
        while True:
            if stopper is not None:
                batch = stopper.next_batch(self.draws_done)
            else:
                batch = target - self.draws_done
            if batch <= 0:
                break
            if max_draws is not None:
                batch = min(batch, max_draws - consumed)
                if batch <= 0:
                    break
            if deadline is not None and deadline.expired:
                deadline_expired = True
                break
            try:
                outcomes = draw(batch)
            except DeadlineExpired:
                # The batch expired mid-flight (a worker or the
                # coordinator abandoned it).  The claimed draw indices
                # are simply skipped: substreams are index-pure, so the
                # tallies already taken stay exact.
                deadline_expired = True
                break
            _DRAW_BATCHES.inc()
            _DRAWS.inc(len(outcomes), tenant=obs_metrics.current_tenant())
            obs_trace.span(
                "draw_batch",
                fingerprint=self.fingerprint[:12],
                tenant=obs_metrics.current_tenant(),
                batch=batch,
                drawn=len(outcomes),
                done=self.draws_done + len(outcomes),
            )
            # Tally batching: repeated outcome objects (interned answer
            # sets from workers, the columnar path's shared clean-answer
            # frozenset) normalize their tuples once, and the counting
            # itself runs in C (`collections._count_elements`).  The
            # memo is per-batch and `pinned` keeps its keys alive, so
            # the id() keys cannot be recycled mid-batch.
            prepared_memo: Dict[int, List[Tuple]] = {}
            pinned = []
            for outcome in outcomes:
                self.draws_done += 1
                consumed += 1
                if outcome is None:
                    self.discarded += 1
                    continue
                self.valid_draws += 1
                prepared = prepared_memo.get(id(outcome))
                if prepared is None:
                    prepared = [
                        answer if type(answer) is tuple else tuple(answer)
                        for answer in outcome
                    ]
                    prepared_memo[id(outcome)] = prepared
                    pinned.append(outcome)
                _count_elements(self.counts, prepared)
            del prepared_memo, pinned
            if self.checkpoint_path:
                self.save_checkpoint()
            if (
                stopper is not None
                and self.draws_done < target
                and stopper.due(self.draws_done)
                and self.valid_draws >= 2
                and stopper.should_stop(
                    self.valid_draws, self.counts, target=stop_target
                )
            ):
                stopped_early = True
                break
        self.estimation_complete = not deadline_expired and (
            stopped_early or self.draws_done >= target
        )
        if self.checkpoint_path:
            self.save_checkpoint()
        frequencies = (
            {t: c / self.valid_draws for t, c in self.counts.items()}
            if self.valid_draws
            else {}
        )
        achieved: Optional[float] = None
        if deadline_expired:
            from repro.analysis.bernstein import widened_epsilon

            achieved = widened_epsilon(self.valid_draws, delta)
        return CampaignResult(
            frequencies=frequencies,
            counts=dict(self.counts),
            draws=self.draws_done,
            valid=self.valid_draws,
            discarded=self.discarded,
            target=target,
            epsilon=epsilon,
            delta=delta,
            adaptive=adaptive,
            stopped_early=stopped_early,
            complete=self.estimation_complete,
            deadline_expired=deadline_expired,
            achieved_epsilon=achieved,
        )

    def reset_tallies(self) -> None:
        """Start a fresh estimation (warm chains and RNG streams kept)."""
        self.counts = {}
        self.draws_done = 0
        self.valid_draws = 0
        self.discarded = 0
        self._estimation_key = None
        self.estimation_complete = True

    # ------------------------------------------------------------------
    # Persistence
    # ------------------------------------------------------------------
    def save_checkpoint(self, path: Optional[str] = None) -> str:
        """Write the campaign state to disk, durably.

        Chains are included best-effort: a chain whose generator cannot
        pickle (e.g. closure-based) is dropped from the payload — the
        resumed campaign rebuilds it cold, with identical draw sequences
        (the RNG streams, not the chain caches, determine the draws).

        Durability ladder: the payload is written to a pid-tagged temp
        file, fsynced, and atomically renamed over *path* — so a crash
        at any point leaves either the previous checkpoint or the new
        one, never a torn file under the resume path (stale ``.tmp.*``
        files are ignored by :meth:`resume`).  A sidecar
        ``<path>.sha256`` then records the content digest, letting
        :meth:`resume` distinguish "written by us, intact" from silent
        corruption; a checkpoint that fails either check is quarantined
        to ``<path>.corrupt``, not resumed.
        """
        from repro.distributed.chaos import failpoint

        path = path or self.checkpoint_path
        if path is None:
            raise ValueError("no checkpoint path configured")
        payload = {
            "version": CHECKPOINT_VERSION,
            "fingerprint": self.fingerprint,
            "seed": self.seed,
            "rng_states": {ks: rng.getstate() for ks, rng in self._rngs.items()},
            "draw_cursor": self.draw_cursor,
            "counts": dict(self.counts),
            "draws_done": self.draws_done,
            "valid_draws": self.valid_draws,
            "discarded": self.discarded,
            "estimation_key": self._estimation_key,
            "estimation_complete": self.estimation_complete,
            "chains": self._chains,
        }
        try:
            blob = pickle.dumps(payload)
        except Exception:
            payload["chains"] = {}
            blob = pickle.dumps(payload)
        tmp = f"{path}.tmp.{os.getpid()}"
        with open(tmp, "wb") as fh:
            half = len(blob) // 2
            fh.write(blob[:half])
            # The torn-write injection point: a crash here leaves a
            # truncated temp file that must never be resumed.
            failpoint("campaign.save_checkpoint")
            fh.write(blob[half:])
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        self._write_checkpoint_digest(path, blob)
        self._fsync_directory(os.path.dirname(path) or ".")
        _CHECKPOINT_SAVES.inc()
        obs_trace.span(
            "checkpoint_save",
            fingerprint=self.fingerprint[:12],
            path=path,
            bytes=len(blob),
            draws=self.draws_done,
        )
        return path

    @staticmethod
    def _write_checkpoint_digest(path: str, blob: bytes) -> None:
        digest = hashlib.sha256(blob).hexdigest()
        sidecar = path + CHECKPOINT_DIGEST_SUFFIX
        tmp = f"{sidecar}.tmp.{os.getpid()}"
        with open(tmp, "w", encoding="ascii") as fh:
            fh.write(digest + "\n")
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, sidecar)

    @staticmethod
    def _fsync_directory(directory: str) -> None:
        # Make the renames themselves durable where the platform allows
        # opening a directory; best-effort elsewhere.
        try:
            fd = os.open(directory, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    @classmethod
    def resume(
        cls,
        path: str,
        fingerprint: Optional[str] = None,
        processes: Optional[int] = None,
        adaptive: bool = False,
        checkpoint_path: Optional[str] = None,
    ) -> "SamplingCampaign":
        """Restore a campaign from *path*, validating its fingerprint.

        A checkpoint written for a different schema/constraint
        configuration (or an incompatible format version) raises
        :class:`CheckpointMismatchError` — stale warm chains must never
        silently feed new estimates.

        A checkpoint that is *corrupt* — sidecar digest mismatch, or an
        undecodable payload (torn write, truncation, bit rot) — is
        quarantined to ``<path>.corrupt`` and raises
        :class:`CheckpointCorruptError` instead of a raw pickle
        traceback; :meth:`attach` catches exactly that and restarts the
        campaign cleanly.
        """
        try:
            with open(path, "rb") as fh:
                blob = fh.read()
        except OSError as exc:
            raise CheckpointMismatchError(
                f"unreadable campaign checkpoint {path!r}: {exc}"
            ) from exc
        sidecar = path + CHECKPOINT_DIGEST_SUFFIX
        expected_digest = None
        try:
            with open(sidecar, "r", encoding="ascii") as fh:
                expected_digest = fh.read().strip() or None
        except OSError:
            pass  # legacy checkpoint without a sidecar: decode-checked only
        if expected_digest is not None:
            actual = hashlib.sha256(blob).hexdigest()
            if actual != expected_digest:
                quarantined = _quarantine_checkpoint(path)
                raise CheckpointCorruptError(
                    f"campaign checkpoint {path!r} failed its content "
                    f"digest (sidecar {expected_digest[:12]}..., file "
                    f"{actual[:12]}...); quarantined to {quarantined!r}"
                )
        try:
            payload = pickle.loads(blob)
        except Exception as exc:
            quarantined = _quarantine_checkpoint(path)
            raise CheckpointCorruptError(
                f"campaign checkpoint {path!r} is corrupt ({exc}); "
                f"quarantined to {quarantined!r}"
            ) from exc
        if not isinstance(payload, dict) or payload.get("version") != CHECKPOINT_VERSION:
            raise CheckpointMismatchError(
                f"campaign checkpoint {path!r} has incompatible version "
                f"{payload.get('version') if isinstance(payload, dict) else '?'} "
                f"(expected {CHECKPOINT_VERSION})"
            )
        if fingerprint is not None and payload.get("fingerprint") != fingerprint:
            raise CheckpointMismatchError(
                f"campaign checkpoint {path!r} was written for a different "
                "schema/constraint/policy configuration; refusing to reuse "
                "its warm chains and tallies"
            )
        campaign = cls(
            fingerprint=payload.get("fingerprint", ""),
            seed=payload["seed"],
            processes=processes,
            checkpoint_path=checkpoint_path or path,
            adaptive=adaptive,
        )
        campaign.counts = dict(payload.get("counts", {}))
        campaign.draw_cursor = payload.get("draw_cursor", 0)
        campaign.draws_done = payload.get("draws_done", 0)
        campaign.valid_draws = payload.get("valid_draws", 0)
        campaign.discarded = payload.get("discarded", 0)
        campaign._estimation_key = payload.get("estimation_key")
        campaign.estimation_complete = payload.get("estimation_complete", True)
        campaign._chains = dict(payload.get("chains", {}))
        for ks, state in payload.get("rng_states", {}).items():
            rng = random.Random()
            rng.setstate(state)
            campaign._rngs[ks] = rng
        return campaign

    @classmethod
    def attach(
        cls,
        checkpoint_path: Optional[str],
        fingerprint: str,
        rng: Optional[random.Random] = None,
        processes: Optional[int] = None,
        adaptive: bool = False,
    ) -> "SamplingCampaign":
        """Resume from *checkpoint_path* if it exists, else start fresh
        (checkpointing there).  The samplers' standard entry point.

        A corrupt checkpoint (torn write, truncation, digest mismatch)
        has already been quarantined to ``*.corrupt`` by the time
        :meth:`resume` reports it, so attach falls through to a clean
        fresh start — progress is lost, correctness is not.  Fingerprint
        and version mismatches still raise: silently discarding a
        *valid* checkpoint for a different campaign would be data loss
        the operator did not opt into.
        """
        if checkpoint_path and os.path.exists(checkpoint_path):
            try:
                return cls.resume(
                    checkpoint_path,
                    fingerprint,
                    processes=processes,
                    adaptive=adaptive,
                )
            except CheckpointCorruptError:
                pass  # quarantined by resume(); start fresh below
        return cls(
            fingerprint=fingerprint,
            rng=rng,
            processes=processes,
            checkpoint_path=checkpoint_path,
            adaptive=adaptive,
        )
