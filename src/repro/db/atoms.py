"""Relational atoms, possibly containing variables.

An atom ``R(t1, ..., tn)`` pairs a relation name with a tuple of terms.
A ground atom (no variables) can be converted to a :class:`repro.db.Fact`.
Conjunctions of atoms (constraint bodies, CQ bodies) are represented as
tuples of atoms and manipulated through the helpers here.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Tuple

from repro.db.terms import Term, Var, is_var, term_str


@dataclass(frozen=True)
class Atom:
    """An atom ``relation(terms...)`` over constants and variables."""

    relation: str
    terms: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not self.relation:
            raise ValueError("relation name must be non-empty")
        if not isinstance(self.terms, tuple):
            object.__setattr__(self, "terms", tuple(self.terms))

    @property
    def arity(self) -> int:
        """Number of term positions of the atom."""
        return len(self.terms)

    @property
    def variables(self) -> frozenset:
        """The set of variables occurring in the atom."""
        return frozenset(t for t in self.terms if is_var(t))

    @property
    def constants(self) -> frozenset:
        """The set of constants occurring in the atom."""
        return frozenset(t for t in self.terms if not is_var(t))

    def is_ground(self) -> bool:
        """Return ``True`` iff the atom contains no variables."""
        return not any(is_var(t) for t in self.terms)

    def substitute(self, assignment: Mapping[Var, Term]) -> "Atom":
        """Apply *assignment* to the atom's variables.

        Variables missing from the assignment are left in place, so partial
        substitutions are allowed.
        """
        return Atom(
            self.relation,
            tuple(assignment.get(t, t) if is_var(t) else t for t in self.terms),
        )

    def to_fact(self) -> "Fact":
        """Convert a ground atom into a :class:`repro.db.Fact`.

        Raises :class:`ValueError` if the atom still contains variables.
        """
        from repro.db.facts import Fact

        if not self.is_ground():
            raise ValueError(f"atom {self} is not ground")
        return Fact(self.relation, self.terms)

    def __str__(self) -> str:
        inner = ", ".join(term_str(t) for t in self.terms)
        return f"{self.relation}({inner})"


def atoms_variables(atoms: Iterable[Atom]) -> frozenset:
    """All variables occurring in a collection of atoms."""
    out: set = set()
    for atom in atoms:
        out.update(atom.variables)
    return frozenset(out)


def atoms_constants(atoms: Iterable[Atom]) -> frozenset:
    """All constants occurring in a collection of atoms."""
    out: set = set()
    for atom in atoms:
        out.update(atom.constants)
    return frozenset(out)
