"""Terms: variables and constants.

A term is either a :class:`Var` or a constant.  Constants are plain,
hashable Python values (strings or integers in practice); anything that is
not a :class:`Var` is treated as a constant.  This mirrors the paper's
countably infinite, disjoint sets ``C`` (constants) and ``V`` (variables).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Union


@dataclass(frozen=True, order=True)
class Var:
    """A first-order variable, identified by its name.

    Two variables with the same name are the same variable.  Variables sort
    lexicographically by name, which gives deterministic iteration orders
    throughout the library.
    """

    name: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("variable name must be non-empty")

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Var({self.name!r})"

    def __str__(self) -> str:
        return self.name


#: A term is a variable or a constant.
Term = Union[Var, Hashable]


def is_var(term: Term) -> bool:
    """Return ``True`` iff *term* is a variable."""
    return isinstance(term, Var)


def is_constant(term: Term) -> bool:
    """Return ``True`` iff *term* is a constant (i.e. not a variable)."""
    return not isinstance(term, Var)


def term_str(term: Term) -> str:
    """Render a term the way the paper writes it: bare names for both
    variables and constants."""
    if isinstance(term, Var):
        return term.name
    return str(term)
