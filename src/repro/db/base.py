"""The base ``B(D, Sigma)`` of a database and constraint set.

Definition 1 of the paper restricts operations to facts over the *base*:
all facts ``R(c1, ..., cn)`` where ``R/n`` is a schema relation and each
``ci`` occurs in ``dom(D)`` or in ``Sigma``.  The base is exponentially
large in arity, so the library never materialises it except on demand
(:func:`enumerate_base`, used only by the brute-force ABC baseline and in
tests on tiny instances).
"""

from __future__ import annotations

from itertools import product
from typing import FrozenSet, Iterable, Iterator

from repro.db.facts import Database, Fact
from repro.db.schema import Schema
from repro.db.terms import Term


def base_constants(database: Database, constraints: Iterable = ()) -> FrozenSet[Term]:
    """Constants allowed in base facts: ``dom(D)`` plus constants of Sigma.

    *constraints* may be any iterable of objects exposing a ``constants``
    attribute (as :class:`repro.constraints.Constraint` does); other
    objects contribute nothing.
    """
    consts: set = set(database.dom)
    for constraint in constraints:
        consts.update(getattr(constraint, "constants", ()))
    return frozenset(consts)


def base_size(schema: Schema, constants: FrozenSet[Term]) -> int:
    """Number of facts in the base ``B(D, Sigma)`` (without materialising it)."""
    n = len(constants)
    return sum(n**rel.arity for rel in schema)


def enumerate_base(schema: Schema, constants: FrozenSet[Term]) -> Iterator[Fact]:
    """Yield every fact of the base, in a deterministic order.

    Only safe on small instances; the count is ``sum(|C|^arity)`` per
    :func:`base_size`.
    """
    ordered = sorted(constants, key=lambda c: (type(c).__name__, str(c)))
    for rel in schema:
        for values in product(ordered, repeat=rel.arity):
            yield Fact(rel.name, values)
