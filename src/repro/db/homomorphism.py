"""Homomorphism search.

A homomorphism from a set of atoms ``A`` to a database ``D`` is a mapping
``h`` from the terms of ``A`` to ``dom(D)`` that is the identity on
constants and sends every atom of ``A`` to a fact of ``D`` (Section 2).
Violation detection (Definition 2), TGD/EGD/DC satisfaction, and
conjunctive-query evaluation all reduce to this search.

The implementation is a backtracking join with a most-constrained-atom
ordering: at each step the atom with the fewest unbound variables is
matched next against the per-relation fact index of the database.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.db.atoms import Atom
from repro.db.facts import Database, Fact
from repro.db.terms import Term, Var, is_var

#: An assignment of variables to constants.
Assignment = Dict[Var, Term]


def apply_assignment(atoms: Sequence[Atom], assignment: Mapping[Var, Term]) -> Tuple[Atom, ...]:
    """Apply *assignment* to every atom in *atoms*."""
    return tuple(atom.substitute(assignment) for atom in atoms)


def _match_atom(
    atom: Atom, fact: Fact, assignment: Assignment
) -> Optional[Assignment]:
    """Try to extend *assignment* so that *atom* maps onto *fact*.

    Returns the extended assignment, or ``None`` if the match fails.  The
    input assignment is never mutated.
    """
    if atom.relation != fact.relation or atom.arity != fact.arity:
        return None
    extension: Assignment = {}
    for term, value in zip(atom.terms, fact.values):
        if is_var(term):
            bound = assignment.get(term, extension.get(term))
            if bound is None:
                extension[term] = value
            elif bound != value:
                return None
        elif term != value:
            return None
    if not extension:
        return dict(assignment)
    merged = dict(assignment)
    merged.update(extension)
    return merged


def _unbound_count(atom: Atom, assignment: Assignment) -> int:
    return sum(1 for t in atom.terms if is_var(t) and t not in assignment)


def _candidate_facts(
    atom: Atom, database: Database, assignment: Assignment
) -> Iterable[Fact]:
    """Facts that could match *atom* under *assignment*.

    When some position of the atom is already determined (a constant, or
    a variable bound by *assignment*), the database's
    :attr:`repro.db.facts.Database.position_index` narrows the candidates
    to one hash lookup — the smallest such entry is used.  Only fully
    unconstrained atoms fall back to the per-relation scan.
    """
    best: Optional[Tuple[Fact, ...]] = None
    for position, term in enumerate(atom.terms):
        if is_var(term):
            value = assignment.get(term)
            if value is None:
                continue
        else:
            value = term
        entry = database.facts_with(atom.relation, position, value)
        if not entry:
            return ()
        if best is None or len(entry) < len(best):
            best = entry
            if len(best) == 1:
                break
    if best is not None:
        return best
    return database.by_relation.get(atom.relation, ())


def find_homomorphisms(
    atoms: Sequence[Atom],
    database: Database,
    partial: Optional[Mapping[Var, Term]] = None,
) -> Iterator[Assignment]:
    """Yield every homomorphism from *atoms* into *database*.

    *partial* optionally pre-binds some variables (used to check TGD heads
    for a fixed body homomorphism).  Each yielded assignment binds every
    variable occurring in *atoms* plus the pre-bound ones.

    The iterator is lazy: callers that only need existence should use
    :func:`has_homomorphism`, which stops at the first match.
    """
    remaining: List[Atom] = list(atoms)
    base: Assignment = dict(partial) if partial else {}
    yield from _search(remaining, database, base)


def _search(
    remaining: List[Atom], database: Database, assignment: Assignment
) -> Iterator[Assignment]:
    if not remaining:
        yield dict(assignment)
        return
    # Most-constrained atom first: fewest unbound variables.
    index = min(
        range(len(remaining)), key=lambda i: _unbound_count(remaining[i], assignment)
    )
    atom = remaining[index]
    rest = remaining[:index] + remaining[index + 1 :]
    for fact in _candidate_facts(atom, database, assignment):
        extended = _match_atom(atom, fact, assignment)
        if extended is not None:
            yield from _search(rest, database, extended)


def find_homomorphisms_pinned(
    atoms: Sequence[Atom],
    database: Database,
    pin_index: int,
    fact: Fact,
    partial: Optional[Mapping[Var, Term]] = None,
) -> Iterator[Assignment]:
    """Homomorphisms from *atoms* into *database* with one atom pinned.

    The atom at *pin_index* is forced to map onto *fact* (which need not
    belong to *database*); the remaining atoms are searched normally.
    This is the seeded entry point of the incremental violation engine:
    after a single-fact update ``±F``, every new body homomorphism must
    use ``F`` at some body atom, so re-running the search once per
    (atom, fact) pin enumerates exactly the delta instead of the full
    join.  Yields nothing when the pinned atom cannot match *fact*.
    """
    atoms = list(atoms)
    base: Assignment = dict(partial) if partial else {}
    seeded = _match_atom(atoms[pin_index], fact, base)
    if seeded is None:
        return
    rest = atoms[:pin_index] + atoms[pin_index + 1 :]
    yield from _search(rest, database, seeded)


def find_one_homomorphism(
    atoms: Sequence[Atom],
    database: Database,
    partial: Optional[Mapping[Var, Term]] = None,
) -> Optional[Assignment]:
    """The first homomorphism from *atoms* into *database*, or ``None``."""
    for assignment in find_homomorphisms(atoms, database, partial):
        return assignment
    return None


def has_homomorphism(
    atoms: Sequence[Atom],
    database: Database,
    partial: Optional[Mapping[Var, Term]] = None,
) -> bool:
    """Whether some homomorphism from *atoms* into *database* exists."""
    return find_one_homomorphism(atoms, database, partial) is not None


def freeze_assignment(assignment: Mapping[Var, Term]) -> Tuple[Tuple[Var, Term], ...]:
    """A canonical, hashable form of an assignment (sorted by variable)."""
    return tuple(sorted(assignment.items(), key=lambda kv: kv[0].name))


def thaw_assignment(frozen: Iterable[Tuple[Var, Term]]) -> Assignment:
    """Inverse of :func:`freeze_assignment`."""
    return dict(frozen)
