"""Relational schemas.

A schema is a finite set of relation symbols with fixed arities (written
``R/n`` in the paper).  Schemas validate databases, atoms, and constraints,
and supply attribute names for the SQL backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, Optional, Tuple

from repro.db.atoms import Atom
from repro.db.facts import Database, Fact


class SchemaError(ValueError):
    """Raised when an atom, fact, or database does not fit a schema."""


@dataclass(frozen=True)
class Relation:
    """A relation symbol ``name/arity`` with optional attribute names."""

    name: str
    arity: int
    attributes: Tuple[str, ...] = field(default=())

    def __post_init__(self) -> None:
        if self.arity <= 0:
            raise SchemaError(f"relation {self.name} must have positive arity")
        if not self.attributes:
            object.__setattr__(
                self, "attributes", tuple(f"a{i}" for i in range(self.arity))
            )
        if len(self.attributes) != self.arity:
            raise SchemaError(
                f"relation {self.name}: {len(self.attributes)} attribute names "
                f"for arity {self.arity}"
            )

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class Schema:
    """A finite collection of :class:`Relation` symbols."""

    def __init__(self, relations: Iterable[Relation] = ()) -> None:
        self._relations: Dict[str, Relation] = {}
        for rel in relations:
            self._add(rel)

    def _add(self, rel: Relation) -> None:
        existing = self._relations.get(rel.name)
        if existing is not None and existing.arity != rel.arity:
            raise SchemaError(
                f"conflicting arities for {rel.name}: "
                f"{existing.arity} vs {rel.arity}"
            )
        self._relations[rel.name] = rel

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def of(**arities: int) -> "Schema":
        """``Schema.of(R=2, S=3)`` builds a schema with ``R/2`` and ``S/3``."""
        return Schema(Relation(name, arity) for name, arity in arities.items())

    @staticmethod
    def infer(database: Database, *extra_atoms: Atom) -> "Schema":
        """Infer a schema from the relations used by a database and atoms."""
        schema = Schema()
        for fact in database.facts:
            schema._add(Relation(fact.relation, fact.arity))
        for atom in extra_atoms:
            schema._add(Relation(atom.relation, atom.arity))
        return schema

    def extend(self, other: "Schema") -> "Schema":
        """Union of two schemas; arities must agree on shared names."""
        merged = Schema(self.relations)
        for rel in other.relations:
            merged._add(rel)
        return merged

    # ------------------------------------------------------------------
    # Lookup / validation
    # ------------------------------------------------------------------
    @property
    def relations(self) -> Tuple[Relation, ...]:
        """All relation symbols, sorted by name."""
        return tuple(self._relations[name] for name in sorted(self._relations))

    def __iter__(self) -> Iterator[Relation]:
        return iter(self.relations)

    def __len__(self) -> int:
        return len(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def get(self, name: str) -> Optional[Relation]:
        """The relation called *name*, or ``None``."""
        return self._relations.get(name)

    def __getitem__(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(f"unknown relation {name!r}") from None

    def arity(self, name: str) -> int:
        """Arity of relation *name* (raises :class:`SchemaError` if absent)."""
        return self[name].arity

    def fingerprint(self) -> str:
        """A stable textual identity for this schema.

        Relations sorted by name with arities and attribute names; used
        by :mod:`repro.campaign` to detect stale sampling checkpoints.
        """
        return ";".join(
            f"{rel.name}/{rel.arity}({','.join(rel.attributes)})"
            for rel in self.relations
        )

    def validate_fact(self, fact: Fact) -> None:
        """Check a fact against the schema."""
        rel = self.get(fact.relation)
        if rel is None:
            raise SchemaError(f"fact {fact} uses unknown relation {fact.relation!r}")
        if rel.arity != fact.arity:
            raise SchemaError(
                f"fact {fact} has arity {fact.arity}, schema says {rel.arity}"
            )

    def validate_database(self, database: Database) -> None:
        """Check every fact of a database against the schema."""
        for fact in database.facts:
            self.validate_fact(fact)

    def validate_atom(self, atom: Atom) -> None:
        """Check an atom (possibly with variables) against the schema."""
        rel = self.get(atom.relation)
        if rel is None:
            raise SchemaError(f"atom {atom} uses unknown relation {atom.relation!r}")
        if rel.arity != atom.arity:
            raise SchemaError(
                f"atom {atom} has arity {atom.arity}, schema says {rel.arity}"
            )

    def __repr__(self) -> str:
        return f"Schema({', '.join(str(r) for r in self.relations)})"
