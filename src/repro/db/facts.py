"""Facts and databases.

A :class:`Fact` is a ground atom ``R(c1, ..., cn)``.  A :class:`Database`
is an immutable finite set of facts (Section 2 of the paper).  Databases
are hashable and support set algebra, so they can be used directly as keys
when grouping repairing sequences by their result (Definition 6 sums the
probabilities of all absorbing sequences producing the same instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import AbstractSet, Dict, FrozenSet, Iterable, Iterator, List, Tuple

from repro.db.terms import Term, is_var, term_str


@dataclass(frozen=True, order=True)
class Fact:
    """A ground atom ``relation(values...)``."""

    relation: str
    values: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        if any(is_var(v) for v in self.values):
            raise ValueError(f"facts must be ground, got variables in {self.values!r}")

    @property
    def arity(self) -> int:
        """Number of attribute positions."""
        return len(self.values)

    def to_atom(self):
        """View this fact as a (ground) :class:`repro.db.Atom`."""
        from repro.db.atoms import Atom

        return Atom(self.relation, self.values)

    def __str__(self) -> str:
        inner = ", ".join(term_str(v) for v in self.values)
        return f"{self.relation}({inner})"


class Database:
    """An immutable set of facts with set algebra and cached indexes.

    The class deliberately has *value semantics*: two databases with the
    same facts are equal and hash alike.  All mutating operations return
    new instances.
    """

    __slots__ = ("_facts", "__dict__")

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        frozen = frozenset(facts)
        for f in frozen:
            if not isinstance(f, Fact):
                raise TypeError(f"Database holds Fact objects, got {type(f).__name__}")
        self._facts = frozen

    # ------------------------------------------------------------------
    # Set protocol
    # ------------------------------------------------------------------
    @property
    def facts(self) -> FrozenSet[Fact]:
        """The underlying frozenset of facts."""
        return self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.sorted_facts)

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Database):
            return self._facts == other._facts
        if isinstance(other, (set, frozenset)):
            return self._facts == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._facts)

    def __or__(self, other: "Database | AbstractSet[Fact]") -> "Database":
        return Database(self._facts | _as_factset(other))

    def __sub__(self, other: "Database | AbstractSet[Fact]") -> "Database":
        return Database(self._facts - _as_factset(other))

    def __and__(self, other: "Database | AbstractSet[Fact]") -> "Database":
        return Database(self._facts & _as_factset(other))

    def __le__(self, other: "Database | AbstractSet[Fact]") -> bool:
        return self._facts <= _as_factset(other)

    def __lt__(self, other: "Database | AbstractSet[Fact]") -> bool:
        return self._facts < _as_factset(other)

    def symmetric_difference(
        self, other: "Database | AbstractSet[Fact]"
    ) -> FrozenSet[Fact]:
        """The paper's distance measure ``Delta(D, D')``."""
        return self._facts ^ _as_factset(other)

    # ------------------------------------------------------------------
    # Cached derived data
    # ------------------------------------------------------------------
    @cached_property
    def sorted_facts(self) -> Tuple[Fact, ...]:
        """Facts in a deterministic (sorted) order."""
        return tuple(sorted(self._facts, key=_fact_sort_key))

    @cached_property
    def dom(self) -> FrozenSet[Term]:
        """The active domain ``dom(D)``: all constants in the database."""
        out: set = set()
        for fact in self._facts:
            out.update(fact.values)
        return frozenset(out)

    @cached_property
    def relations(self) -> FrozenSet[str]:
        """Names of relations with at least one fact."""
        return frozenset(f.relation for f in self._facts)

    @cached_property
    def by_relation(self) -> Dict[str, Tuple[Fact, ...]]:
        """Facts grouped by relation name, each group sorted."""
        groups: Dict[str, List[Fact]] = {}
        for fact in self._facts:
            groups.setdefault(fact.relation, []).append(fact)
        return {
            rel: tuple(sorted(fs, key=_fact_sort_key)) for rel, fs in groups.items()
        }

    def tuples(self, relation: str) -> Tuple[Tuple[Term, ...], ...]:
        """The value tuples of *relation* (empty if the relation is absent)."""
        return tuple(f.values for f in self.by_relation.get(relation, ()))

    # ------------------------------------------------------------------
    # Convenience constructors / rendering
    # ------------------------------------------------------------------
    @staticmethod
    def of(*facts: Fact) -> "Database":
        """Build a database from facts given positionally."""
        return Database(facts)

    @staticmethod
    def from_tuples(data: Dict[str, Iterable[Tuple[Term, ...]]]) -> "Database":
        """Build a database from ``{relation: [tuple, ...]}``."""
        facts = [
            Fact(rel, tuple(row)) for rel, rows in data.items() for row in rows
        ]
        return Database(facts)

    def add(self, *facts: Fact) -> "Database":
        """Return a new database with *facts* added."""
        return Database(self._facts | set(facts))

    def remove(self, *facts: Fact) -> "Database":
        """Return a new database with *facts* removed (missing ones ignored)."""
        return Database(self._facts - set(facts))

    def __repr__(self) -> str:
        inner = ", ".join(str(f) for f in self.sorted_facts)
        return f"Database({{{inner}}})"


def _fact_sort_key(fact: Fact) -> Tuple:
    return (fact.relation, tuple((type(v).__name__, str(v)) for v in fact.values))


def _as_factset(other: "Database | AbstractSet[Fact]") -> FrozenSet[Fact]:
    if isinstance(other, Database):
        return other.facts
    return frozenset(other)
