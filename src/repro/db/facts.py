"""Facts and databases.

A :class:`Fact` is a ground atom ``R(c1, ..., cn)``.  A :class:`Database`
is an immutable finite set of facts (Section 2 of the paper).  Databases
are hashable and support set algebra, so they can be used directly as keys
when grouping repairing sequences by their result (Definition 6 sums the
probabilities of all absorbing sequences producing the same instance).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache
from typing import AbstractSet, Dict, FrozenSet, Iterable, Iterator, List, Tuple

from repro.db.terms import Term, is_var, term_str

#: Per-relation position-value index: ``{(position, value) -> facts}``.
PositionIndex = Dict[Tuple[int, Term], Tuple["Fact", ...]]

#: Longest chain of unmaterialized position-index deltas a derived
#: database may keep (each pending delta holds its parent alive).
_POSITION_DELTA_DEPTH_LIMIT = 64


@dataclass(frozen=True, order=True)
class Fact:
    """A ground atom ``relation(values...)``."""

    relation: str
    values: Tuple[Term, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.values, tuple):
            object.__setattr__(self, "values", tuple(self.values))
        if any(is_var(v) for v in self.values):
            raise ValueError(f"facts must be ground, got variables in {self.values!r}")

    def __hash__(self) -> int:
        # Cached: facts flow through frozenset algebra on every engine
        # step, and the dataclass-generated hash re-tuples per call.
        cached = getattr(self, "_hash_cache", None)
        if cached is None:
            cached = hash((self.relation, self.values))
            object.__setattr__(self, "_hash_cache", cached)
        return cached

    def __getstate__(self):
        # The cached hash must not cross process boundaries: str hashing
        # is per-process randomized, and a pickled stale hash makes equal
        # facts hash differently after unpickling — silently breaking
        # every frozenset lookup (campaign checkpoints resume chains in
        # fresh processes).
        state = dict(self.__dict__)
        state.pop("_hash_cache", None)
        return state

    @property
    def arity(self) -> int:
        """Number of attribute positions."""
        return len(self.values)

    def to_atom(self):
        """View this fact as a (ground) :class:`repro.db.Atom`."""
        from repro.db.atoms import Atom

        return Atom(self.relation, self.values)

    def __str__(self) -> str:
        inner = ", ".join(term_str(v) for v in self.values)
        return f"{self.relation}({inner})"


class Database:
    """An immutable set of facts with set algebra and cached indexes.

    The class deliberately has *value semantics*: two databases with the
    same facts are equal and hash alike.  All mutating operations return
    new instances.
    """

    __slots__ = ("_facts", "__dict__")

    def __init__(self, facts: Iterable[Fact] = ()) -> None:
        frozen = frozenset(facts)
        for f in frozen:
            if not isinstance(f, Fact):
                raise TypeError(f"Database holds Fact objects, got {type(f).__name__}")
        self._facts = frozen

    # ------------------------------------------------------------------
    # Set protocol
    # ------------------------------------------------------------------
    @property
    def facts(self) -> FrozenSet[Fact]:
        """The underlying frozenset of facts."""
        return self._facts

    def __len__(self) -> int:
        return len(self._facts)

    def __iter__(self) -> Iterator[Fact]:
        return iter(self.sorted_facts)

    def __contains__(self, fact: object) -> bool:
        return fact in self._facts

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Database):
            return self._facts == other._facts
        if isinstance(other, (set, frozenset)):
            return self._facts == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self._facts)

    def __or__(self, other: "Database | AbstractSet[Fact]") -> "Database":
        return Database(self._facts | _as_factset(other))

    def __sub__(self, other: "Database | AbstractSet[Fact]") -> "Database":
        return Database(self._facts - _as_factset(other))

    def __and__(self, other: "Database | AbstractSet[Fact]") -> "Database":
        return Database(self._facts & _as_factset(other))

    def __le__(self, other: "Database | AbstractSet[Fact]") -> bool:
        return self._facts <= _as_factset(other)

    def __lt__(self, other: "Database | AbstractSet[Fact]") -> bool:
        return self._facts < _as_factset(other)

    def symmetric_difference(
        self, other: "Database | AbstractSet[Fact]"
    ) -> FrozenSet[Fact]:
        """The paper's distance measure ``Delta(D, D')``."""
        return self._facts ^ _as_factset(other)

    # ------------------------------------------------------------------
    # Cached derived data
    # ------------------------------------------------------------------
    @cached_property
    def sorted_facts(self) -> Tuple[Fact, ...]:
        """Facts in a deterministic (sorted) order."""
        return tuple(sorted(self._facts, key=_fact_sort_key))

    @cached_property
    def dom(self) -> FrozenSet[Term]:
        """The active domain ``dom(D)``: all constants in the database."""
        out: set = set()
        for fact in self._facts:
            out.update(fact.values)
        return frozenset(out)

    @cached_property
    def relations(self) -> FrozenSet[str]:
        """Names of relations with at least one fact."""
        return frozenset(f.relation for f in self._facts)

    @cached_property
    def by_relation(self) -> Dict[str, Tuple[Fact, ...]]:
        """Facts grouped by relation name, each group sorted."""
        groups: Dict[str, List[Fact]] = {}
        for fact in self._facts:
            groups.setdefault(fact.relation, []).append(fact)
        return {
            rel: tuple(sorted(fs, key=_fact_sort_key)) for rel, fs in groups.items()
        }

    @cached_property
    def position_index(self) -> Dict[str, PositionIndex]:
        """Hash index ``{relation: {(position, value) -> facts}}``.

        The backtracking homomorphism search uses it to turn "facts of
        ``R`` with value ``v`` at position ``i``" into one dict lookup
        instead of a scan over :attr:`by_relation`.  Entry tuples carry
        no ordering guarantee (callers needing determinism sort).

        Derived databases (:meth:`with_added` / :meth:`with_removed`)
        record only their delta; the index materializes *lazily* by
        replaying the delta chain from the nearest materialized
        ancestor.  Deletion-only repair walks never consult successor
        indexes (violations and justified operations are both
        delta-maintained), so they skip the maintenance entirely.
        """
        pending: List[Tuple["Database", FrozenSet[Fact], FrozenSet[Fact]]] = []
        node = self
        while "_position_delta" in node.__dict__:
            parent, added, removed, _ = node.__dict__["_position_delta"]
            pending.append((node, added, removed))
            node = parent
        if node is self:
            index: Dict[str, Dict[Tuple[int, Term], List[Fact]]] = {}
            for fact in self._facts:
                inner = index.setdefault(fact.relation, {})
                for position, value in enumerate(fact.values):
                    inner.setdefault((position, value), []).append(fact)
            return {
                rel: {key: tuple(fs) for key, fs in inner.items()}
                for rel, inner in index.items()
            }
        current = node.position_index  # cached, or a from-scratch build
        for child, added, removed in reversed(pending):
            current = _apply_position_delta(current, added, removed)
            del child.__dict__["_position_delta"]
            if child is not self:
                child.__dict__["position_index"] = current
        return current

    def facts_with(self, relation: str, position: int, value: Term) -> Tuple[Fact, ...]:
        """Facts of *relation* carrying *value* at *position* (indexed)."""
        inner = self.position_index.get(relation)
        if inner is None:
            return ()
        return inner.get((position, value), ())

    def tuples(self, relation: str) -> Tuple[Tuple[Term, ...], ...]:
        """The value tuples of *relation* (empty if the relation is absent)."""
        return tuple(f.values for f in self.by_relation.get(relation, ()))

    # ------------------------------------------------------------------
    # Convenience constructors / rendering
    # ------------------------------------------------------------------
    @staticmethod
    def of(*facts: Fact) -> "Database":
        """Build a database from facts given positionally."""
        return Database(facts)

    @staticmethod
    def from_tuples(data: Dict[str, Iterable[Tuple[Term, ...]]]) -> "Database":
        """Build a database from ``{relation: [tuple, ...]}``."""
        facts = [
            Fact(rel, tuple(row)) for rel, rows in data.items() for row in rows
        ]
        return Database(facts)

    def add(self, *facts: Fact) -> "Database":
        """Return a new database with *facts* added."""
        return self.with_added(facts)

    def remove(self, *facts: Fact) -> "Database":
        """Return a new database with *facts* removed (missing ones ignored)."""
        return self.with_removed(facts)

    # ------------------------------------------------------------------
    # Structural-sharing single-op updates (the repair-walk hot path)
    # ------------------------------------------------------------------
    def with_added(self, facts: Iterable[Fact]) -> "Database":
        """``D + F`` reusing this database's cached indexes.

        Instead of rebuilding :attr:`by_relation` and
        :attr:`position_index` from scratch, the relations untouched by
        *facts* share their index entries with the parent; only the
        affected relations are re-derived.  Returns ``self`` when every
        fact is already present.
        """
        added = frozenset(facts) - self._facts
        if not added:
            return self
        for f in added:
            if not isinstance(f, Fact):
                raise TypeError(f"Database holds Fact objects, got {type(f).__name__}")
        return self._derive(self._facts | added, added, frozenset())

    def with_removed(self, facts: Iterable[Fact]) -> "Database":
        """``D - F`` reusing this database's cached indexes (see
        :meth:`with_added`).  Returns ``self`` when no fact is present."""
        removed = frozenset(facts) & self._facts
        if not removed:
            return self
        return self._derive(self._facts - removed, frozenset(), removed)

    def _derive(
        self,
        new_facts: FrozenSet[Fact],
        added: FrozenSet[Fact],
        removed: FrozenSet[Fact],
    ) -> "Database":
        child = Database.__new__(Database)
        child._facts = new_facts
        touched = frozenset(f.relation for f in added | removed)
        caches = self.__dict__
        if "by_relation" in caches:
            groups = dict(caches["by_relation"])
            for rel in touched:
                group = [f for f in groups.get(rel, ()) if f not in removed]
                group.extend(f for f in added if f.relation == rel)
                if group:
                    groups[rel] = tuple(sorted(group, key=_fact_sort_key))
                else:
                    groups.pop(rel, None)
            child.__dict__["by_relation"] = groups
        if "position_index" in caches:
            # Record the delta only; the child's index materializes
            # lazily (see :attr:`position_index`) so walks that never
            # run a homomorphism search on the successor skip the work.
            child.__dict__["_position_delta"] = (self, added, removed, 1)
        elif "_position_delta" in caches:
            # The pending delta keeps the parent alive until (if ever)
            # materialized, so cap the lineage: past the bound the child
            # records nothing and would rebuild from scratch on demand,
            # instead of pinning an unbounded ancestor chain.
            depth = caches["_position_delta"][3] + 1
            if depth <= _POSITION_DELTA_DEPTH_LIMIT:
                child.__dict__["_position_delta"] = (self, added, removed, depth)
        return child

    def __repr__(self) -> str:
        inner = ", ".join(str(f) for f in self.sorted_facts)
        return f"Database({{{inner}}})"


def _apply_position_delta(
    parent_index: Dict[str, PositionIndex],
    added: FrozenSet[Fact],
    removed: FrozenSet[Fact],
) -> Dict[str, PositionIndex]:
    """A materialized :attr:`Database.position_index` after one delta.

    Relations untouched by the delta share their entries with the parent
    index; only the affected relations are re-derived.
    """
    touched = frozenset(f.relation for f in added | removed)
    index = dict(parent_index)
    for rel in touched:
        inner = dict(index.get(rel, {}))
        for fact in removed:
            if fact.relation != rel:
                continue
            for position, value in enumerate(fact.values):
                entry = tuple(f for f in inner[(position, value)] if f != fact)
                if entry:
                    inner[(position, value)] = entry
                else:
                    del inner[(position, value)]
        for fact in added:
            if fact.relation != rel:
                continue
            for position, value in enumerate(fact.values):
                inner[(position, value)] = inner.get((position, value), ()) + (fact,)
        if inner:
            index[rel] = inner
        else:
            index.pop(rel, None)
    return index


@lru_cache(maxsize=1 << 16)
def _fact_sort_key(fact: Fact) -> Tuple:
    """Deterministic sort key for facts.

    Cached across databases: the same facts flow through thousands of
    derived databases during chain exploration and sampling, and
    re-stringifying every term for each of those sorts dominates the
    sorting cost otherwise.
    """
    return (fact.relation, tuple((type(v).__name__, str(v)) for v in fact.values))


def _as_factset(other: "Database | AbstractSet[Fact]") -> FrozenSet[Fact]:
    if isinstance(other, Database):
        return other.facts
    return frozenset(other)
