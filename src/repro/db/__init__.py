"""Relational substrate: terms, atoms, facts, schemas, databases, homomorphisms.

This package implements the data model of Section 2 of the paper: databases
are finite sets of facts over a relational schema, the active domain
``dom(D)`` is the set of constants appearing in a database, and the base
``B(D, Sigma)`` is the set of all facts formable from the constants of
``D`` and a constraint set.  Constraint and query satisfaction are defined
through homomorphisms, implemented in :mod:`repro.db.homomorphism`.
"""

from repro.db.terms import Var, Term, is_var, is_constant, term_str
from repro.db.atoms import Atom
from repro.db.facts import Fact, Database
from repro.db.schema import Relation, Schema, SchemaError
from repro.db.homomorphism import (
    find_homomorphisms,
    find_one_homomorphism,
    has_homomorphism,
    apply_assignment,
)
from repro.db.base import base_constants, base_size, enumerate_base

__all__ = [
    "Var",
    "Term",
    "is_var",
    "is_constant",
    "term_str",
    "Atom",
    "Fact",
    "Database",
    "Relation",
    "Schema",
    "SchemaError",
    "find_homomorphisms",
    "find_one_homomorphism",
    "has_homomorphism",
    "apply_assignment",
    "base_constants",
    "base_size",
    "enumerate_base",
]
