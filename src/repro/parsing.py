"""A small shared lexer for the constraint and query parsers.

The surface syntax follows the paper's rule-based notation::

    R(x, y), R(x, z) -> y = z              # EGD (key)
    R(x, y) -> exists z S(z, x)            # TGD (inclusion dependency)
    Pref(x, y), Pref(y, x) -> false        # DC (denial)
    forall y (Pref(x, y) | x = y)          # FO query body

Tokens: identifiers, quoted string constants, integer constants, and the
punctuation/operators used by both parsers.  Bare identifiers in term
position denote variables; quoted strings and numbers denote constants.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Iterator, List, Optional, Tuple


class ParseError(ValueError):
    """Raised on any lexical or syntactic error, with position info."""

    def __init__(self, message: str, text: str = "", pos: int = -1) -> None:
        if pos >= 0:
            message = f"{message} (at position {pos}: ...{text[pos:pos + 20]!r})"
        super().__init__(message)


@dataclass(frozen=True)
class Token:
    """A lexical token: a kind tag, the matched text, and its offset."""

    kind: str
    value: str
    pos: int


_TOKEN_SPEC: Tuple[Tuple[str, str], ...] = (
    ("ARROW", r"->"),
    ("NEQ", r"!=|<>"),
    ("NOT", r"!|¬"),
    ("AND", r"&&|&|∧"),
    ("OR", r"\|\||\||∨"),
    ("LPAREN", r"\("),
    ("RPAREN", r"\)"),
    ("COMMA", r","),
    ("EQ", r"="),
    ("DOT", r"\."),
    ("DEFINE", r":-|:="),
    ("STRING", r"'[^']*'|\"[^\"]*\""),
    ("NUMBER", r"-?\d+"),
    ("IDENT", r"[A-Za-z_][A-Za-z_0-9]*"),
    ("BOTTOM", r"⊥"),
    ("WS", r"\s+"),
)

_MASTER_RE = re.compile("|".join(f"(?P<{kind}>{pattern})" for kind, pattern in _TOKEN_SPEC))

#: Keywords recognised among IDENT tokens (case-insensitive).
KEYWORDS = frozenset(
    {"exists", "forall", "not", "and", "or", "true", "false", "implies"}
)


def tokenize(text: str) -> List[Token]:
    """Split *text* into tokens, dropping whitespace.

    Raises :class:`ParseError` on unexpected characters.
    """
    tokens: List[Token] = []
    pos = 0
    while pos < len(text):
        match = _MASTER_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r}", text, pos)
        kind = match.lastgroup or ""
        value = match.group()
        if kind == "IDENT" and value.lower() in KEYWORDS:
            kind = value.upper() if value.lower() not in ("and", "or", "not") else {
                "and": "AND",
                "or": "OR",
                "not": "NOT",
            }[value.lower()]
            if value.lower() in ("exists", "forall", "true", "false", "implies"):
                kind = value.upper()
        if kind != "WS":
            tokens.append(Token(kind, value, pos))
        pos = match.end()
    return tokens


class TokenStream:
    """A peekable cursor over a token list, shared by both parsers."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0

    def peek(self) -> Optional[Token]:
        """The next token without consuming it, or ``None`` at end."""
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def next(self) -> Token:
        """Consume and return the next token."""
        token = self.peek()
        if token is None:
            raise ParseError("unexpected end of input", self.text, len(self.text))
        self.index += 1
        return token

    def accept(self, kind: str) -> Optional[Token]:
        """Consume the next token if it has the given kind."""
        token = self.peek()
        if token is not None and token.kind == kind:
            self.index += 1
            return token
        return None

    def expect(self, kind: str) -> Token:
        """Consume a token of the given kind or raise :class:`ParseError`."""
        token = self.peek()
        if token is None or token.kind != kind:
            found = token.kind if token else "end of input"
            pos = token.pos if token else len(self.text)
            raise ParseError(f"expected {kind}, found {found}", self.text, pos)
        self.index += 1
        return token

    def at_end(self) -> bool:
        """Whether all tokens have been consumed."""
        return self.index >= len(self.tokens)

    def expect_end(self) -> None:
        """Raise unless the stream is exhausted."""
        token = self.peek()
        if token is not None:
            raise ParseError(f"unexpected trailing input {token.value!r}", self.text, token.pos)


def parse_term_token(token: Token):
    """Interpret a STRING/NUMBER/IDENT token as a term.

    Quoted strings and numbers are constants; bare identifiers are
    variables (the paper's convention, where ``x, y, z`` range over
    variables and data values are explicit constants).
    """
    from repro.db.terms import Var

    if token.kind == "STRING":
        return token.value[1:-1]
    if token.kind == "NUMBER":
        return int(token.value)
    if token.kind == "IDENT":
        return Var(token.value)
    raise ParseError(f"expected a term, found {token.kind}", pos=token.pos)
