"""Empirical error measurement for approximation experiments.

Used by the E6 benchmark to verify that the additive-error guarantee of
Theorem 9 holds in practice: the measured error of the sampler must stay
within ``epsilon`` at least a ``1 - delta`` fraction of the time.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Callable, Dict, Iterable, List, Mapping, Sequence, Tuple, Union

Number = Union[int, float, Fraction]


def absolute_errors(
    exact: Mapping[object, Number], approximate: Mapping[object, Number]
) -> Dict[object, float]:
    """Per-key ``|exact - approximate|`` over the union of key sets.

    Missing keys count as probability 0 on the side they are missing
    from, matching Definition 7 (absent tuples have ``CP = 0``).
    """
    keys = set(exact) | set(approximate)
    return {
        key: abs(float(exact.get(key, 0)) - float(approximate.get(key, 0)))
        for key in keys
    }


def max_absolute_error(
    exact: Mapping[object, Number], approximate: Mapping[object, Number]
) -> float:
    """The largest per-key absolute error (0.0 when both are empty)."""
    errors = absolute_errors(exact, approximate)
    return max(errors.values(), default=0.0)


def total_variation_distance(
    first: Mapping[object, Number], second: Mapping[object, Number]
) -> float:
    """``TV = 0.5 * sum |p - q|`` between two (sub-)distributions."""
    keys = set(first) | set(second)
    return 0.5 * sum(
        abs(float(first.get(key, 0)) - float(second.get(key, 0))) for key in keys
    )


def empirical_coverage(
    trials: Sequence[float], target: float, epsilon: float
) -> float:
    """Fraction of trial estimates within ``epsilon`` of *target*.

    For Theorem 9's guarantee to hold, this must be at least
    ``1 - delta`` (up to the sampling noise of the trials themselves).
    """
    if not trials:
        raise ValueError("need at least one trial")
    hits = sum(1 for estimate in trials if abs(estimate - target) <= epsilon)
    return hits / len(trials)


def convergence_series(
    sampler: Callable[[int], float],
    sample_counts: Iterable[int],
) -> List[Tuple[int, float]]:
    """Evaluate an estimator at increasing sample counts.

    *sampler* maps a sample count ``n`` to an estimate; the result pairs
    each count with its estimate, for convergence plots/tables.
    """
    return [(n, sampler(n)) for n in sample_counts]
