"""Analysis toolkit: Hoeffding bounds and empirical error measurement."""

from repro.analysis.hoeffding import (
    sample_size,
    additive_error_bound,
    confidence_level,
    hoeffding_failure_probability,
)
from repro.analysis.stats import (
    absolute_errors,
    max_absolute_error,
    total_variation_distance,
    empirical_coverage,
    convergence_series,
)

__all__ = [
    "sample_size",
    "additive_error_bound",
    "confidence_level",
    "hoeffding_failure_probability",
    "absolute_errors",
    "max_absolute_error",
    "total_variation_distance",
    "empirical_coverage",
    "convergence_series",
]
