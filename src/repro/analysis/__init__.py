"""Analysis toolkit: Hoeffding/Bernstein bounds and error measurement."""

from repro.analysis.bernstein import (
    BernsteinStopper,
    adaptive_sample_size_bound,
    bernoulli_sample_variance,
    checkpoint_schedule,
    empirical_bernstein_radius,
)
from repro.analysis.hoeffding import (
    sample_size,
    additive_error_bound,
    confidence_level,
    hoeffding_failure_probability,
)
from repro.analysis.stats import (
    absolute_errors,
    max_absolute_error,
    total_variation_distance,
    empirical_coverage,
    convergence_series,
)

__all__ = [
    "BernsteinStopper",
    "adaptive_sample_size_bound",
    "bernoulli_sample_variance",
    "checkpoint_schedule",
    "empirical_bernstein_radius",
    "sample_size",
    "additive_error_bound",
    "confidence_level",
    "hoeffding_failure_probability",
    "absolute_errors",
    "max_absolute_error",
    "total_variation_distance",
    "empirical_coverage",
    "convergence_series",
]
