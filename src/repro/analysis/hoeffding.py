"""Hoeffding-bound arithmetic for the additive-error scheme (Section 5).

The paper's approximation runs ``n = ln(2/delta) / (2 * eps^2)`` Bernoulli
samples; Hoeffding's inequality then bounds the deviation of the sample
mean: ``Pr(|mean - CP| > eps) <= 2 exp(-2 n eps^2) <= delta``.  The paper
notes that for ``eps = delta = 0.1`` this gives ``n = 150`` — "not small
but not very large either".
"""

from __future__ import annotations

import math


def _validate(epsilon: float, delta: float) -> None:
    if not epsilon > 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")


def sample_size(epsilon: float, delta: float) -> int:
    """``n = ceil(ln(2/delta) / (2 eps^2))`` samples for an additive
    ``(epsilon, delta)`` guarantee.

    >>> sample_size(0.1, 0.1)
    150
    """
    _validate(epsilon, delta)
    return math.ceil(math.log(2.0 / delta) / (2.0 * epsilon * epsilon))


def hoeffding_failure_probability(n: int, epsilon: float) -> float:
    """``2 exp(-2 n eps^2)`` — the two-sided Hoeffding tail bound."""
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not epsilon > 0:
        raise ValueError(f"epsilon must be positive, got {epsilon}")
    return 2.0 * math.exp(-2.0 * n * epsilon * epsilon)


def additive_error_bound(n: int, delta: float) -> float:
    """The epsilon achievable with *n* samples at confidence ``1 - delta``.

    Inverse of :func:`sample_size`: ``eps = sqrt(ln(2/delta) / (2 n))``.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    return math.sqrt(math.log(2.0 / delta) / (2.0 * n))


def confidence_level(n: int, epsilon: float) -> float:
    """``1 - delta`` achieved by *n* samples at additive error *epsilon*.

    Clamped below at 0 (the bound is vacuous for tiny ``n``).
    """
    return max(0.0, 1.0 - hoeffding_failure_probability(n, epsilon))
