"""Empirical-Bernstein adaptive stopping for the sampling campaigns.

Hoeffding's bound (:mod:`repro.analysis.hoeffding`) fixes the run count
at ``n = ln(2/delta) / (2 eps^2)`` *before* seeing any data.  The
empirical-Bernstein bound of Maurer & Pontil (2009) replaces the
worst-case range with the *observed* sample variance: after ``n``
Bernoulli draws with sample variance ``v`` the estimate deviates from
the mean by at most

    eps_n = sqrt(2 v ln(2/delta') / n)  +  7 ln(2/delta') / (3 (n - 1))

with probability at least ``1 - delta'``.  For low-variance streams
(``CP`` near 0 or 1 — the common case for answers backed by clean data)
the first term vanishes and the bound shrinks like ``O(log / n)``
instead of ``O(1/sqrt(n))``, so sampling can stop long before the
Hoeffding count.  For high-variance streams the bound is *worse* than
Hoeffding's, which is why the stopper always caps at the Hoeffding
count: the adaptive rule never uses more samples, only fewer.

Because the rule is evaluated repeatedly as samples arrive, the
confidence budget is union-bounded across a *geometric* schedule of
checkpoints (evaluating at every draw would spend ``delta/n`` per test;
geometric spacing spends ``O(delta / log n)`` per test), in the spirit
of adaptive confidence-sequence procedures (cf. Mnih et al.'s EBStop
and, for the calibrated-confidence framing, Stutz et al. in PAPERS.md).

**Exact guarantee accounting.**  The delta budget is split: the EB
checkpoint family receives ``delta/2`` (``delta/(2K)`` per checkpoint),
and campaigns that reach the Hoeffding cap report the same estimator as
the fixed rule, which carries the standard ``(eps, delta)`` Hoeffding
bound.  An early-stopped estimate is therefore within ``eps`` with
probability at least ``1 - delta/2``; a capped campaign is exactly the
fixed-Hoeffding procedure; and the union over both failure modes is at
most ``3 delta / 2``.  Sharper joint accounting would require either
raising the cap above the Hoeffding count (forbidden here: the adaptive
rule must never draw more than the fixed one) or weakening the early
stops — this split keeps both modes individually honest.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, List, Mapping, Optional, Tuple

from repro.analysis.hoeffding import sample_size


def bernoulli_sample_variance(successes: int, n: int) -> float:
    """Unbiased sample variance of a 0/1 stream with *successes* ones.

    ``v = c (n - c) / (n (n - 1))`` — the usual ``1/(n-1)`` estimator
    specialised to indicator data.
    """
    if n < 2:
        raise ValueError(f"sample variance needs n >= 2, got {n}")
    if not 0 <= successes <= n:
        raise ValueError(f"successes {successes} out of range for n={n}")
    return successes * (n - successes) / (n * (n - 1))


def empirical_bernstein_radius(n: int, variance: float, delta: float) -> float:
    """The two-sided empirical-Bernstein deviation bound.

    ``sqrt(2 v ln(2/delta) / n) + 7 ln(2/delta) / (3 (n - 1))`` for
    ``[0, 1]``-bounded samples (Maurer & Pontil 2009, Theorem 4).
    """
    if n < 2:
        raise ValueError(f"the bound needs n >= 2, got {n}")
    if variance < 0:
        raise ValueError(f"variance must be non-negative, got {variance}")
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    log_term = math.log(2.0 / delta)
    return math.sqrt(2.0 * variance * log_term / n) + (
        7.0 * log_term / (3.0 * (n - 1))
    )


def widened_epsilon(draws: int, delta: float) -> float:
    """The additive accuracy *draws* draws actually certify at *delta*.

    The inversion of the fixed-run Hoeffding count
    ``n = ln(2/delta) / (2 eps^2)``: given the draws a deadline-expired
    campaign managed to take, ``eps = sqrt(ln(2/delta) / (2 n))`` is the
    (widened) half-width the usual two-sided Hoeffding bound still
    guarantees for them — the honest ``(eps, delta)`` accounting for a
    best-effort estimate.  Clamped to ``1.0``: frequencies live in
    ``[0, 1]``, so no bound wider than the whole range is informative
    (and zero draws certify exactly that).
    """
    if not 0 < delta < 1:
        raise ValueError(f"delta must be in (0, 1), got {delta}")
    if draws < 0:
        raise ValueError(f"draws must be non-negative, got {draws}")
    if draws == 0:
        return 1.0
    return min(1.0, math.sqrt(math.log(2.0 / delta) / (2.0 * draws)))


def checkpoint_schedule(limit: int, start: int = 8, growth: float = 1.5) -> Tuple[int, ...]:
    """Geometric evaluation checkpoints ``start, ~start*g, ..., limit``.

    Always ends exactly at *limit* so the cap coincides with the final
    evaluation.
    """
    if limit < 1:
        raise ValueError(f"limit must be positive, got {limit}")
    if growth <= 1.0:
        raise ValueError(f"growth must exceed 1, got {growth}")
    points: List[int] = []
    current = max(2, min(start, limit))
    while current < limit:
        points.append(current)
        current = max(current + 1, int(math.ceil(current * growth)))
    points.append(limit)
    return tuple(points)


@dataclass
class StopDecision:
    """The stopper's verdict at one checkpoint."""

    stop: bool
    n: int
    worst_radius: float


class BernsteinStopper:
    """Adaptive stopping for a family of Bernoulli estimate streams.

    Tracks the per-candidate success counts a sampling campaign
    accumulates and decides, on a geometric checkpoint schedule capped
    at the Hoeffding sample size, whether *every* tracked stream — plus
    the all-zeros stream standing in for never-observed tuples, which
    preserves the scheme's "unseen implies ``CP <= eps``" reading —
    already meets the additive ``epsilon`` radius.

    The EB family spends ``delta/2`` union-bounded over the ``K``
    checkpoints (``delta/(2K)`` each), so an early stop is within
    ``epsilon`` with probability at least ``1 - delta/2``; campaigns
    that run to the cap coincide with the fixed Hoeffding procedure and
    keep its ``(epsilon, delta)`` bound.  See the module docstring for
    the exact joint accounting.  The stopper never exceeds the Hoeffding
    count.
    """

    def __init__(
        self,
        epsilon: float,
        delta: float,
        limit: Optional[int] = None,
        start: int = 8,
        growth: float = 1.5,
    ) -> None:
        if not epsilon > 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        if not 0 < delta < 1:
            raise ValueError(f"delta must be in (0, 1), got {delta}")
        self.epsilon = epsilon
        self.delta = delta
        self.limit = limit if limit is not None else sample_size(epsilon, delta)
        self.checkpoints = checkpoint_schedule(self.limit, start, growth)
        #: Confidence spent per evaluation: the EB family's delta/2
        #: budget, union-bounded over the checkpoints.
        self.checkpoint_delta = delta / (2 * len(self.checkpoints))
        self._next_index = 0
        self._eval_index = 0

    def due(self, done: int) -> bool:
        """Whether a scheduled checkpoint has been reached since the last
        evaluation.

        The ``delta/(2K)`` union bound budgets exactly one test per
        checkpoint; callers driving the loop in smaller increments
        (``max_draws`` interruptions, discarded draws) must not evaluate
        between checkpoints.  A campaign resumed in a fresh process
        re-evaluates at most the last already-passed checkpoint once —
        a one-test overshoot the halved budget comfortably absorbs.
        """
        if self._eval_index >= len(self.checkpoints):
            return False
        if done < self.checkpoints[self._eval_index]:
            return False
        while (
            self._eval_index < len(self.checkpoints)
            and self.checkpoints[self._eval_index] <= done
        ):
            self._eval_index += 1
        return True

    def next_batch(self, done: int) -> int:
        """Draws to take before the next evaluation (0 when finished)."""
        while (
            self._next_index < len(self.checkpoints)
            and self.checkpoints[self._next_index] <= done
        ):
            self._next_index += 1
        if done >= self.limit or self._next_index >= len(self.checkpoints):
            return 0
        return self.checkpoints[self._next_index] - done

    def evaluate(self, n: int, success_counts: Iterable[int]) -> StopDecision:
        """Whether every stream's EB radius is within epsilon after *n*.

        *success_counts* are the per-candidate success totals; the
        all-zeros stream is always included implicitly.
        """
        if n < 2:
            return StopDecision(stop=False, n=n, worst_radius=float("inf"))
        distinct = set(success_counts)
        distinct.add(0)  # the unseen-tuple stream
        worst = max(
            empirical_bernstein_radius(
                n, bernoulli_sample_variance(count, n), self.checkpoint_delta
            )
            for count in distinct
        )
        return StopDecision(stop=worst <= self.epsilon, n=n, worst_radius=worst)

    def evaluate_target(self, n: int, successes: int) -> StopDecision:
        """Whether *one* stream's EB radius is within epsilon after *n*.

        The per-tuple rule for targeted ``CP(t)`` estimation: only the
        candidate's own stream is tested — neither the other observed
        tuples' streams nor the implicit all-zeros stream — so a
        low-variance candidate resolves as soon as *its* interval does,
        even while unrelated answers are still high-variance.  An early
        stop therefore certifies the target's estimate alone; the other
        tuples' frequencies are reported without the adaptive guarantee
        (they keep the plain Hoeffding reading only if the campaign runs
        to the cap).
        """
        if n < 2:
            return StopDecision(stop=False, n=n, worst_radius=float("inf"))
        radius = empirical_bernstein_radius(
            n, bernoulli_sample_variance(successes, n), self.checkpoint_delta
        )
        return StopDecision(stop=radius <= self.epsilon, n=n, worst_radius=radius)

    def should_stop(
        self,
        n: int,
        counts: Mapping[object, int],
        target: Optional[object] = None,
    ) -> bool:
        """Convenience wrapper over :meth:`evaluate` for count mappings.

        With *target*, only that answer tuple's stream is tested (see
        :meth:`evaluate_target`); a target absent from *counts* is the
        all-zeros stream.
        """
        if target is not None:
            return self.evaluate_target(n, counts.get(target, 0)).stop
        return self.evaluate(n, counts.values()).stop


def adaptive_sample_size_bound(
    epsilon: float, delta: float, variance: float, start: int = 8, growth: float = 1.5
) -> int:
    """The draw count at which the stopper would halt a stream whose
    sample variance stabilises at *variance* (diagnostic helper).

    Always at most the Hoeffding count for the same ``(epsilon, delta)``.
    """
    stopper = BernsteinStopper(epsilon, delta, start=start, growth=growth)
    for checkpoint in stopper.checkpoints:
        if checkpoint < 2:
            continue
        radius = empirical_bernstein_radius(
            checkpoint, variance, stopper.checkpoint_delta
        )
        if radius <= epsilon:
            return checkpoint
    return stopper.limit
