"""Preference-tournament workloads (the Section 3 running example).

Databases over a binary ``Pref`` relation with the non-symmetric denial
constraint ``Pref(x, y), Pref(y, x) -> false``; a tunable fraction of
product pairs are *conflicting* (preferred in both directions).
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.constraints.base import ConstraintSet
from repro.constraints.shortcuts import non_symmetric
from repro.db.facts import Database, Fact


def paper_preference_database() -> Tuple[Database, ConstraintSet]:
    """The exact database and constraint of the Section 3 figure.

    ``D = {Pref(a,b), Pref(a,c), Pref(a,d), Pref(b,a), Pref(b,d),
    Pref(c,a)}`` with the single DC stating preference is not symmetric.
    """
    database = Database.from_tuples(
        {
            "Pref": [
                ("a", "b"),
                ("a", "c"),
                ("a", "d"),
                ("b", "a"),
                ("b", "d"),
                ("c", "a"),
            ]
        }
    )
    return database, ConstraintSet([non_symmetric("Pref")])


def preference_workload(
    products: int,
    edges: int,
    conflicts: int,
    seed: Optional[int] = None,
    relation: str = "Pref",
) -> Tuple[Database, ConstraintSet]:
    """A random preference database with a controlled number of conflicts.

    Generates *edges* one-directional preferences plus *conflicts*
    symmetric pairs (each contributing two facts that jointly violate the
    DC).  Product names are ``p0, p1, ...``.
    """
    if products < 2:
        raise ValueError("need at least two products")
    rng = random.Random(seed)
    names = [f"p{i}" for i in range(products)]
    pairs = [
        (a, b) for i, a in enumerate(names) for b in names[i + 1 :]
    ]
    rng.shuffle(pairs)
    if conflicts > len(pairs):
        raise ValueError(
            f"asked for {conflicts} conflicts but only {len(pairs)} product pairs exist"
        )
    facts: List[Fact] = []
    conflict_pairs = pairs[:conflicts]
    for a, b in conflict_pairs:
        facts.append(Fact(relation, (a, b)))
        facts.append(Fact(relation, (b, a)))
    remaining = pairs[conflicts:]
    if edges > len(remaining):
        raise ValueError(
            f"asked for {edges} clean edges but only {len(remaining)} pairs remain"
        )
    for a, b in remaining[:edges]:
        if rng.random() < 0.5:
            a, b = b, a
        facts.append(Fact(relation, (a, b)))
    return Database(facts), ConstraintSet([non_symmetric(relation)])
