"""Synthetic inconsistent-database workloads.

The paper reports no datasets, so every experiment runs on synthetic
workloads that exercise the same constraint shapes its examples use:
preference tournaments with symmetric conflicts (Section 3), multi-source
integration with trust levels and key conflicts (Example 5 / the intro),
plain key-violation tables at scale (Section 5), and inclusion-dependency
workloads with missing targets (TGD repairs).
"""

from repro.workloads.preferences import preference_workload, paper_preference_database
from repro.workloads.integration import (
    IntegrationWorkload,
    integration_workload,
)
from repro.workloads.keyconflicts import key_conflict_workload, KeyConflictWorkload
from repro.workloads.inclusion import inclusion_workload, InclusionWorkload
from repro.workloads.retail import retail_workload, RetailWorkload

__all__ = [
    "retail_workload",
    "RetailWorkload",
    "preference_workload",
    "paper_preference_database",
    "IntegrationWorkload",
    "integration_workload",
    "key_conflict_workload",
    "KeyConflictWorkload",
    "inclusion_workload",
    "InclusionWorkload",
]
