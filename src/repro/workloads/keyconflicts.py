"""Plain key-violation workloads (Section 5 scale experiments).

A relation ``R(key, attr1, ..., attrk)`` with a primary key on the first
position and a tunable number/size of duplicate-key groups.  Used by the
SQL sampler and scaling benchmarks, where tables reach tens of thousands
of rows.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.constraints.base import ConstraintSet
from repro.constraints.shortcuts import key
from repro.db.facts import Database, Fact
from repro.db.schema import Relation, Schema
from repro.sql.sampler import KeySpec


@dataclass
class KeyConflictWorkload:
    """A key-violation workload plus everything needed to repair it."""

    database: Database
    constraints: ConstraintSet
    schema: Schema
    key_spec: KeySpec
    clean_rows: int
    conflict_groups: int
    group_size: int

    @property
    def total_rows(self) -> int:
        """Total number of facts in the generated database."""
        return len(self.database)

    def load_into(self, backend):
        """Load the workload into any :class:`repro.sql.SQLBackend`.

        Returns the backend, so call sites can chain:
        ``workload.load_into(create_backend("memory"))``.
        """
        backend.load(self.database, self.schema)
        return backend


def key_conflict_workload(
    clean_rows: int,
    conflict_groups: int,
    group_size: int = 2,
    arity: int = 3,
    seed: Optional[int] = None,
    relation: str = "R",
) -> KeyConflictWorkload:
    """Generate ``clean_rows`` unique-key rows plus conflicting groups.

    Each of the *conflict_groups* key values receives *group_size*
    distinct rows (so each group induces ``group_size choose 2`` key
    violations).  Values are strings; non-key attributes are random.
    """
    if arity < 2:
        raise ValueError("arity must be at least 2 (key plus one attribute)")
    if group_size < 2:
        raise ValueError("conflict groups need at least two rows")
    rng = random.Random(seed)
    facts: List[Fact] = []

    def row(key_value: str, tag: str) -> Fact:
        attrs = tuple(
            f"{tag}_{rng.randrange(10_000)}" for _ in range(arity - 1)
        )
        return Fact(relation, (key_value,) + attrs)

    for i in range(clean_rows):
        facts.append(row(f"c{i}", f"r{i}"))
    for g in range(conflict_groups):
        key_value = f"dup{g}"
        members = set()
        while len(members) < group_size:
            members.add(row(key_value, f"g{g}_{len(members)}"))
        facts.extend(sorted(members, key=str))
    schema = Schema([Relation(relation, arity)])
    return KeyConflictWorkload(
        database=Database(facts),
        constraints=ConstraintSet(key(relation, arity, [0])),
        schema=schema,
        key_spec=KeySpec(relation, arity, (0,)),
        clean_rows=clean_rows,
        conflict_groups=conflict_groups,
        group_size=group_size,
    )
