"""Multi-source data-integration workloads (Example 5 / the intro).

Simulates integrating facts from several sources of differing
reliability: each key receives candidate tuples from one or more
sources; keys claimed by several sources become key-constraint conflict
groups, and each fact's trust equals the reliability of its source —
exactly the setting Example 5's trust-based generator targets.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from repro.constraints.base import ConstraintSet
from repro.constraints.shortcuts import key
from repro.db.facts import Database, Fact


@dataclass
class IntegrationWorkload:
    """An integrated database with per-fact trust and its key constraints."""

    database: Database
    constraints: ConstraintSet
    trust: Dict[Fact, Fraction]
    relation: str
    source_of: Dict[Fact, str]

    @property
    def conflicting_keys(self) -> int:
        """Number of key values supplied by more than one source."""
        by_key: Dict[object, int] = {}
        for fact in self.database.facts:
            by_key[fact.values[0]] = by_key.get(fact.values[0], 0) + 1
        return sum(1 for count in by_key.values() if count > 1)


def integration_workload(
    keys: int,
    sources: Sequence[Tuple[str, float]],
    conflict_rate: float = 0.3,
    seed: Optional[int] = None,
    relation: str = "R",
) -> IntegrationWorkload:
    """Integrate *keys* key values from *sources* ``(name, reliability)``.

    Each key is supplied by one source; with probability *conflict_rate*
    a second source supplies a different value for the same key, creating
    a key violation.  Trust of each fact is its source's reliability.
    """
    if not sources:
        raise ValueError("need at least one source")
    if not 0 <= conflict_rate <= 1:
        raise ValueError(f"conflict_rate must be in [0, 1], got {conflict_rate}")
    rng = random.Random(seed)
    facts: List[Fact] = []
    trust: Dict[Fact, Fraction] = {}
    source_of: Dict[Fact, str] = {}

    def emit(key_value: str, value: str, source: Tuple[str, float]) -> None:
        fact = Fact(relation, (key_value, value))
        if fact in trust:
            return
        facts.append(fact)
        trust[fact] = Fraction(str(source[1]))
        source_of[fact] = source[0]

    for index in range(keys):
        key_value = f"k{index}"
        primary = rng.choice(list(sources))
        emit(key_value, f"v{index}_{primary[0]}", primary)
        if len(sources) > 1 and rng.random() < conflict_rate:
            other_sources = [s for s in sources if s[0] != primary[0]]
            secondary = rng.choice(other_sources)
            emit(key_value, f"v{index}_{secondary[0]}", secondary)
    constraints = ConstraintSet(key(relation, 2, [0]))
    return IntegrationWorkload(
        database=Database(facts),
        constraints=constraints,
        trust=trust,
        relation=relation,
        source_of=source_of,
    )
