"""Inclusion-dependency workloads (TGD repairs with insertions).

A pair of relations ``R/2`` and ``S/2`` with the paper's inclusion
dependency ``R(x, y) -> exists z S(z, x)``; a tunable number of ``R``
rows lack their ``S`` target, so repairing requires either inserting
witnesses (justified additions) or deleting the offending ``R`` rows —
the setting where failing sequences and the FPRAS impossibility show up.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.constraints.base import ConstraintSet
from repro.constraints.shortcuts import inclusion_dependency
from repro.db.facts import Database, Fact


@dataclass
class InclusionWorkload:
    """An inclusion-dependency workload."""

    database: Database
    constraints: ConstraintSet
    satisfied_rows: int
    dangling_rows: int


def inclusion_workload(
    satisfied_rows: int,
    dangling_rows: int,
    seed: Optional[int] = None,
    source: str = "R",
    target: str = "S",
) -> InclusionWorkload:
    """``satisfied_rows`` rows of ``R`` with an ``S`` witness plus
    ``dangling_rows`` without one."""
    rng = random.Random(seed)
    facts: List[Fact] = []
    for i in range(satisfied_rows):
        x, y = f"a{i}", f"b{i}"
        facts.append(Fact(source, (x, y)))
        facts.append(Fact(target, (f"w{rng.randrange(10_000)}", x)))
    for i in range(dangling_rows):
        facts.append(Fact(source, (f"d{i}", f"e{i}")))
    constraints = ConstraintSet(
        [inclusion_dependency(source, 2, [0], target, 2, [1])]
    )
    return InclusionWorkload(
        database=Database(facts),
        constraints=constraints,
        satisfied_rows=satisfied_rows,
        dangling_rows=dangling_rows,
    )
