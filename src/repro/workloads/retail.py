"""A multi-relation retail workload: keys plus a foreign key.

``Customer(cid, name)`` and ``Orders(oid, cid, amount)`` with

- a key on ``Customer.cid`` (conflicting customer records),
- a key on ``Orders.oid`` (conflicting order amounts),
- the foreign key ``Orders.cid ⊆ Customer.cid`` (dangling orders),

exercising EGDs and a TGD together — the setting where insertions,
failing sequences, and null witnesses all come into play.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional

from repro.constraints.base import ConstraintSet
from repro.constraints.shortcuts import inclusion_dependency, key
from repro.db.facts import Database, Fact
from repro.db.schema import Relation, Schema


@dataclass
class RetailWorkload:
    """The generated instance plus its constraints and statistics."""

    database: Database
    constraints: ConstraintSet
    schema: Schema
    customers: int
    duplicate_customers: int
    orders: int
    conflicting_orders: int
    dangling_orders: int


def retail_workload(
    customers: int = 4,
    duplicate_customers: int = 1,
    orders: int = 4,
    conflicting_orders: int = 1,
    dangling_orders: int = 1,
    seed: Optional[int] = None,
) -> RetailWorkload:
    """Generate a retail instance with the three inconsistency kinds.

    Amount values are integers so aggregate queries apply directly.
    Sized for exact chain exploration by default; scale the counts up
    for sampling-only experiments.
    """
    rng = random.Random(seed)
    facts: List[Fact] = []
    for c in range(customers):
        facts.append(Fact("Customer", (f"c{c}", f"name{c}")))
    for c in range(duplicate_customers):
        facts.append(Fact("Customer", (f"c{c}", f"alias{c}")))
    for o in range(orders):
        cid = f"c{rng.randrange(customers)}"
        facts.append(Fact("Orders", (f"o{o}", cid, 10 * (o + 1))))
    for o in range(conflicting_orders):
        existing = next(f for f in facts if f.relation == "Orders" and f.values[0] == f"o{o}")
        facts.append(Fact("Orders", (f"o{o}", existing.values[1], existing.values[2] + 5)))
    for d in range(dangling_orders):
        facts.append(Fact("Orders", (f"dangling{d}", f"ghost{d}", 99)))
    constraints = ConstraintSet(
        key("Customer", 2, [0])
        + key("Orders", 3, [0])
        + (inclusion_dependency("Orders", 3, [1], "Customer", 2, [0]),)
    )
    schema = Schema([Relation("Customer", 2), Relation("Orders", 3)])
    return RetailWorkload(
        database=Database(facts),
        constraints=constraints,
        schema=schema,
        customers=customers,
        duplicate_customers=duplicate_customers,
        orders=orders,
        conflicting_orders=conflicting_orders,
        dangling_orders=dangling_orders,
    )
