"""repro — operational consistent query answering.

A full reproduction of *"An Operational Approach to Consistent Query
Answering"* (Calautti, Libkin, Pieris; PODS 2018): databases, TGD/EGD/DC
constraints, first-order queries, repairing sequences, repairing Markov
chains, exact and approximate operational consistent answers, the
classical ABC-repair baseline, and the paper's Section 5 SQL sampling
scheme over SQLite.

Quickstart::

    from repro import (
        Database, Fact, parse_constraints, parse_query,
        ConstraintSet, UniformGenerator, exact_oca,
    )

    db = Database.of(Fact("R", ("a", "b")), Fact("R", ("a", "c")))
    sigma = ConstraintSet(parse_constraints("R(x, y), R(x, z) -> y = z"))
    q = parse_query("Q(y) :- R(x, y)")
    print(exact_oca(db, UniformGenerator(sigma), q).items())
"""

from repro.db import (
    Var,
    Atom,
    Fact,
    Database,
    Relation,
    Schema,
    SchemaError,
)
from repro.constraints import (
    Constraint,
    ConstraintSet,
    TGD,
    EGD,
    DC,
    parse_constraint,
    parse_constraints,
    key,
    functional_dependency,
    inclusion_dependency,
    non_symmetric,
)
from repro.queries import (
    Query,
    ConjunctiveQuery,
    parse_formula,
    parse_query,
    parse_cq,
)
from repro.core import (
    Operation,
    Violation,
    violations,
    RepairEngine,
    ChainGenerator,
    RepairingChain,
    UniformGenerator,
    DeletionOnlyUniformGenerator,
    SingleFactDeletionGenerator,
    PreferenceGenerator,
    TrustGenerator,
    FunctionGenerator,
    explore_chain,
    RepairDistribution,
    repair_distribution,
    operational_repairs,
    OCAResult,
    exact_cp,
    exact_oca,
    approximate_cp,
    approximate_oca,
    sample_walk,
    ReproError,
    InvalidGeneratorError,
    ExplorationBudgetError,
    FailingSequenceError,
)
from repro.analysis import sample_size
from repro.core.localization import (
    LocalizationError,
    conflict_components,
    localized_repair_distribution,
)
from repro.diagnostics import InconsistencyReport, diagnose

__version__ = "1.0.0"

__all__ = [
    "Var",
    "Atom",
    "Fact",
    "Database",
    "Relation",
    "Schema",
    "SchemaError",
    "Constraint",
    "ConstraintSet",
    "TGD",
    "EGD",
    "DC",
    "parse_constraint",
    "parse_constraints",
    "key",
    "functional_dependency",
    "inclusion_dependency",
    "non_symmetric",
    "Query",
    "ConjunctiveQuery",
    "parse_formula",
    "parse_query",
    "parse_cq",
    "Operation",
    "Violation",
    "violations",
    "RepairEngine",
    "ChainGenerator",
    "RepairingChain",
    "UniformGenerator",
    "DeletionOnlyUniformGenerator",
    "SingleFactDeletionGenerator",
    "PreferenceGenerator",
    "TrustGenerator",
    "FunctionGenerator",
    "explore_chain",
    "RepairDistribution",
    "repair_distribution",
    "operational_repairs",
    "OCAResult",
    "exact_cp",
    "exact_oca",
    "approximate_cp",
    "approximate_oca",
    "sample_walk",
    "sample_size",
    "ReproError",
    "InvalidGeneratorError",
    "ExplorationBudgetError",
    "FailingSequenceError",
    "LocalizationError",
    "conflict_components",
    "localized_repair_distribution",
    "InconsistencyReport",
    "diagnose",
    "__version__",
]
